"""Scalar SQL functions.

The key behavioural detail reproduced from the paper: the optimizer has no
statistics for predicates built over function calls, so it falls back to a
default selectivity (PostgreSQL's 1/3).  That is why ``absolute(...) > 0``
— whose true selectivity is 1 — drives the estimation errors in queries Q2
and Q4 (Section 5.3.1, point 3).  ``SqlFunction.estimatable`` marks whether
the optimizer may see through the call; every built-in here is opaque, as
in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import BindError
from repro.storage.types import DataType, FLOAT, INTEGER, StringType


@dataclass(frozen=True)
class SqlFunction:
    """A scalar function usable in expressions."""

    name: str
    arity: int
    evaluate: Callable
    #: Result type given argument types (None in the mapping = "same as arg 0").
    result_type: Optional[DataType]
    #: Whether the optimizer can estimate selectivities through this call.
    estimatable: bool = False

    def return_type(self, arg_types: Sequence[DataType]) -> DataType:
        """Result type of a call given its argument types."""
        if self.result_type is not None:
            return self.result_type
        return arg_types[0] if arg_types else INTEGER


def _null_safe(fn: Callable) -> Callable:
    """Wrap ``fn`` so any NULL argument yields NULL (SQL semantics)."""

    def wrapper(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


FUNCTIONS: dict[str, SqlFunction] = {}


def _register(name: str, arity: int, fn: Callable, result_type: Optional[DataType]) -> None:
    FUNCTIONS[name] = SqlFunction(name, arity, _null_safe(fn), result_type)


# The paper's queries use absolute(); abs() is a convenience alias.
_register("absolute", 1, abs, None)
_register("abs", 1, abs, None)
_register("upper", 1, str.upper, StringType(255))
_register("lower", 1, str.lower, StringType(255))
_register("length", 1, len, INTEGER)
_register("mod", 2, lambda a, b: a % b, None)
_register("power", 2, lambda a, b: a**b, FLOAT)
_register("sqrt", 1, math.sqrt, FLOAT)
_register("floor", 1, lambda a: int(math.floor(a)), INTEGER)
_register("ceil", 1, lambda a: int(math.ceil(a)), INTEGER)


def lookup_function(name: str, num_args: int) -> SqlFunction:
    """Resolve a function by name/arity; raises :class:`BindError`."""
    func = FUNCTIONS.get(name.lower())
    if func is None:
        raise BindError(f"unknown function {name!r}")
    if func.arity != num_args:
        raise BindError(
            f"function {name!r} expects {func.arity} argument(s), got {num_args}"
        )
    return func
