"""Lowering bound expressions to Python closures.

Each physical operator works over rows with a concrete *slot layout*: a
mapping from (table index, column index) coordinates to positions in the
operator's input tuple.  ``compile_expr`` turns a bound expression plus a
layout into a closure ``f(row) -> value`` built from nested closures — no
``eval``/code generation, just ordinary functions, which keeps the engine
debuggable while still being fast enough for per-tuple use.

Comparison semantics are SQL-ish three-valued logic collapsed at the
predicate boundary: a comparison involving NULL yields None, and
``compile_predicate`` maps None to False (rows with unknown predicate
values do not qualify).
"""

from __future__ import annotations

import operator
import re
from typing import Callable, Mapping

from repro.errors import ExecutionError
from repro.expr.bound import (
    ArithmeticExpr,
    BoundExpr,
    ColumnExpr,
    ComparisonExpr,
    FunctionExpr,
    InSubqueryExpr,
    LikeExpr,
    LiteralExpr,
    LogicalExpr,
    NegativeExpr,
    NotExpr,
)

Layout = Mapping[tuple[int, int], int]

_COMPARE = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ARITH = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}


def compile_expr(expr: BoundExpr, layout: Layout) -> Callable:
    """Compile ``expr`` into a closure evaluating one row."""
    if isinstance(expr, ColumnExpr):
        try:
            slot = layout[expr.coordinate]
        except KeyError:
            raise ExecutionError(
                f"column {expr.name!r} (coordinate {expr.coordinate}) "
                "is not available in this operator's input layout"
            ) from None
        return operator.itemgetter(slot)

    if isinstance(expr, LiteralExpr):
        value = expr.value
        return lambda row: value

    if isinstance(expr, FunctionExpr):
        fn = expr.func.evaluate
        arg_fns = [compile_expr(a, layout) for a in expr.args]
        if len(arg_fns) == 1:
            arg0 = arg_fns[0]
            return lambda row: fn(arg0(row))
        return lambda row: fn(*(g(row) for g in arg_fns))

    if isinstance(expr, ComparisonExpr):
        cmp = _COMPARE[expr.op]
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)

        def compare(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return cmp(a, b)

        return compare

    if isinstance(expr, LogicalExpr):
        arg_fns = [compile_expr(a, layout) for a in expr.args]
        if expr.op == "and":

            def conjunction(row):
                result = True
                for g in arg_fns:
                    v = g(row)
                    if v is False:
                        return False
                    if v is None:
                        result = None
                return result

            return conjunction

        def disjunction(row):
            result = False
            for g in arg_fns:
                v = g(row)
                if v is True:
                    return True
                if v is None:
                    result = None
            return result

        return disjunction

    if isinstance(expr, ArithmeticExpr):
        op = _ARITH[expr.op]
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)

        def arith(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return op(a, b)

        return arith

    if isinstance(expr, InSubqueryExpr):
        inner = compile_expr(expr.operand, layout)
        node = expr  # membership() consults the subplan's runtime result

        def in_subquery(row):
            return node.membership(inner(row))

        return in_subquery

    if isinstance(expr, LikeExpr):
        inner = compile_expr(expr.operand, layout)
        regex = re.compile(like_pattern_to_regex(expr.pattern), re.DOTALL)
        negated = expr.negated

        def like(row):
            v = inner(row)
            if v is None:
                return None
            matched = regex.match(v) is not None
            return (not matched) if negated else matched

        return like

    if isinstance(expr, NotExpr):
        inner = compile_expr(expr.operand, layout)

        def negate(row):
            v = inner(row)
            return None if v is None else not v

        return negate

    if isinstance(expr, NegativeExpr):
        inner = compile_expr(expr.operand, layout)

        def minus(row):
            v = inner(row)
            return None if v is None else -v

        return minus

    raise ExecutionError(f"cannot compile expression node {type(expr).__name__}")


def like_pattern_to_regex(pattern: str) -> str:
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "".join(out) + r"\Z"


def compile_predicate(expr: BoundExpr, layout: Layout) -> Callable:
    """Compile a boolean expression; NULL results count as False."""
    fn = compile_expr(expr, layout)
    return lambda row: fn(row) is True
