"""Bound (name-resolved, typed) expression trees."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import BindError
from repro.expr.functions import SqlFunction
from repro.storage.types import BOOLEAN, DataType, FLOAT, INTEGER

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: Flip a comparison when its operands are swapped (x < y  <=>  y > x).
MIRRORED_OP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class BoundExpr:
    """Base class: every node carries its result :class:`DataType`."""

    type: DataType

    def columns(self) -> Iterator["ColumnExpr"]:
        """Yield every column reference in this subtree."""
        raise NotImplementedError

    def display(self) -> str:
        """Human-readable rendering (used by EXPLAIN output)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {self.display()}>"


class ColumnExpr(BoundExpr):
    """A reference to column ``column_index`` of base table ``table_index``.

    ``table_index`` indexes the query's FROM list, so two uses of the same
    base table under different aliases (Q3's ``orders o1, orders o2``) are
    distinct coordinates.
    """

    __slots__ = ("table_index", "column_index", "name", "type")

    def __init__(self, table_index: int, column_index: int, name: str, type_: DataType):
        self.table_index = table_index
        self.column_index = column_index
        self.name = name
        self.type = type_

    @property
    def coordinate(self) -> tuple[int, int]:
        return (self.table_index, self.column_index)

    def columns(self) -> Iterator["ColumnExpr"]:
        yield self

    def display(self) -> str:
        return self.name


class LiteralExpr(BoundExpr):
    __slots__ = ("value", "type")

    def __init__(self, value, type_: DataType):
        self.value = value
        self.type = type_

    def columns(self) -> Iterator[ColumnExpr]:
        return iter(())

    def display(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return "null" if self.value is None else str(self.value)


class FunctionExpr(BoundExpr):
    __slots__ = ("func", "args", "type")

    def __init__(self, func: SqlFunction, args: list[BoundExpr]):
        self.func = func
        self.args = list(args)
        self.type = func.return_type([a.type for a in args])

    def columns(self) -> Iterator[ColumnExpr]:
        for arg in self.args:
            yield from arg.columns()

    def display(self) -> str:
        return f"{self.func.name}({', '.join(a.display() for a in self.args)})"


class ComparisonExpr(BoundExpr):
    __slots__ = ("op", "left", "right", "type")

    def __init__(self, op: str, left: BoundExpr, right: BoundExpr):
        if op not in COMPARISON_OPS:
            raise BindError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self.type = BOOLEAN

    def columns(self) -> Iterator[ColumnExpr]:
        yield from self.left.columns()
        yield from self.right.columns()

    def display(self) -> str:
        return f"({self.left.display()} {self.op} {self.right.display()})"


class LogicalExpr(BoundExpr):
    """``and``/``or`` over boolean children."""

    __slots__ = ("op", "args", "type")

    def __init__(self, op: str, args: list[BoundExpr]):
        if op not in ("and", "or"):
            raise BindError(f"unsupported logical operator {op!r}")
        self.op = op
        self.args = list(args)
        self.type = BOOLEAN

    def columns(self) -> Iterator[ColumnExpr]:
        for arg in self.args:
            yield from arg.columns()

    def display(self) -> str:
        joiner = f" {self.op} "
        return "(" + joiner.join(a.display() for a in self.args) + ")"


class ArithmeticExpr(BoundExpr):
    __slots__ = ("op", "left", "right", "type")

    def __init__(self, op: str, left: BoundExpr, right: BoundExpr):
        if op not in ("+", "-", "*", "/"):
            raise BindError(f"unsupported arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        if op == "/" or FLOAT in (left.type, right.type):
            self.type = FLOAT
        else:
            self.type = left.type

    def columns(self) -> Iterator[ColumnExpr]:
        yield from self.left.columns()
        yield from self.right.columns()

    def display(self) -> str:
        return f"({self.left.display()} {self.op} {self.right.display()})"


class InSubqueryExpr(BoundExpr):
    """``operand [NOT] IN (subquery)`` over an *uncorrelated* subquery.

    The binder stores the independently-bound inner query; the optimizer
    plans it (attaching the plan here) and the executor pre-runs it at
    query start, depositing the value set via :meth:`set_result` — a
    PostgreSQL-style hashed InitPlan.  SQL three-valued semantics apply:
    NULL operand, or a miss against a set containing NULL, yields NULL.
    """

    __slots__ = ("operand", "subquery", "negated", "type", "plan", "_values", "_has_null")

    def __init__(self, operand: BoundExpr, subquery, negated: bool = False):
        self.operand = operand
        self.subquery = subquery  # a BoundQuery
        self.negated = negated
        self.type = BOOLEAN
        #: Filled by the optimizer: the inner PlannedQuery.
        self.plan = None
        self._values: Optional[frozenset] = None
        self._has_null = False

    def columns(self) -> Iterator["ColumnExpr"]:
        # Only the outer operand's columns: the subquery's coordinates
        # belong to a different query and must not leak into this one.
        yield from self.operand.columns()

    def display(self) -> str:
        op = "not in" if self.negated else "in"
        return f"({self.operand.display()} {op} (subquery))"

    # -- runtime result (set by the driver before the outer plan runs) --

    def set_result(self, values: Iterator) -> None:
        concrete = list(values)
        self._has_null = any(v is None for v in concrete)
        self._values = frozenset(v for v in concrete if v is not None)

    def membership(self, value):
        """Three-valued IN test (None = unknown)."""
        if self._values is None:
            raise BindError("IN-subquery evaluated before its subplan ran")
        if value is None:
            return None
        if value in self._values:
            result = True
        elif self._has_null:
            result = None
        else:
            result = False
        if result is None:
            return None
        return (not result) if self.negated else result


class LikeExpr(BoundExpr):
    """``operand [NOT] LIKE pattern`` (% = any run, _ = any character)."""

    __slots__ = ("operand", "pattern", "negated", "type")

    def __init__(self, operand: BoundExpr, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self.type = BOOLEAN

    def columns(self) -> Iterator["ColumnExpr"]:
        yield from self.operand.columns()

    def display(self) -> str:
        op = "not like" if self.negated else "like"
        quoted = self.pattern.replace("'", "''")
        return f"({self.operand.display()} {op} '{quoted}')"

    def literal_prefix(self) -> str:
        """The leading wildcard-free part of the pattern (selectivity aid)."""
        prefix = []
        for ch in self.pattern:
            if ch in ("%", "_"):
                break
            prefix.append(ch)
        return "".join(prefix)


#: Supported aggregate functions and whether they require an argument.
AGGREGATE_KINDS = ("count", "sum", "avg", "min", "max")


class AggregateExpr(BoundExpr):
    """An aggregate call: ``count(*)``, ``sum(x)``, ``avg(x)``, ...

    ``arg`` is None only for ``count(*)``.  Aggregates appear in SELECT
    lists and HAVING clauses of grouped queries; the planner compiles them
    into a hash-aggregate operator and rewires references positionally.
    """

    __slots__ = ("kind", "arg", "type")

    def __init__(self, kind: str, arg: Optional[BoundExpr]):
        if kind not in AGGREGATE_KINDS:
            raise BindError(f"unknown aggregate function {kind!r}")
        self.kind = kind
        self.arg = arg
        if kind == "count":
            self.type = INTEGER
        elif kind == "avg":
            self.type = FLOAT
        else:
            self.type = arg.type if arg is not None else INTEGER

    def columns(self) -> Iterator["ColumnExpr"]:
        if self.arg is not None:
            yield from self.arg.columns()

    def display(self) -> str:
        inner = "*" if self.arg is None else self.arg.display()
        return f"{self.kind}({inner})"


def contains_aggregate(expr: BoundExpr) -> bool:
    """Whether any :class:`AggregateExpr` appears in the subtree."""
    if isinstance(expr, AggregateExpr):
        return True
    for attr in ("args", "left", "right", "operand", "arg"):
        child = getattr(expr, attr, None)
        if child is None:
            continue
        if isinstance(child, BoundExpr):
            if contains_aggregate(child):
                return True
        elif isinstance(child, list):
            if any(contains_aggregate(c) for c in child):
                return True
    return False


class NotExpr(BoundExpr):
    __slots__ = ("operand", "type")

    def __init__(self, operand: BoundExpr):
        self.operand = operand
        self.type = BOOLEAN

    def columns(self) -> Iterator[ColumnExpr]:
        yield from self.operand.columns()

    def display(self) -> str:
        return f"(not {self.operand.display()})"


class NegativeExpr(BoundExpr):
    __slots__ = ("operand", "type")

    def __init__(self, operand: BoundExpr):
        self.operand = operand
        self.type = operand.type

    def columns(self) -> Iterator[ColumnExpr]:
        yield from self.operand.columns()

    def display(self) -> str:
        return f"(-{self.operand.display()})"


# ----------------------------------------------------------------------
# structural helpers used by the planner


def as_conjuncts(expr: Optional[BoundExpr]) -> list[BoundExpr]:
    """Flatten a WHERE expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, LogicalExpr) and expr.op == "and":
        out: list[BoundExpr] = []
        for arg in expr.args:
            out.extend(as_conjuncts(arg))
        return out
    return [expr]


def referenced_tables(expr: BoundExpr) -> frozenset[int]:
    """Set of FROM-list table indexes referenced by ``expr``."""
    return frozenset(c.table_index for c in expr.columns())


def equijoin_sides(expr: BoundExpr) -> Optional[tuple[ColumnExpr, ColumnExpr]]:
    """If ``expr`` is ``colA = colB`` across two different tables, return
    the two column references; otherwise None.

    Equi-join detection drives hash-join and sort-merge-join eligibility;
    anything else (like Q5's ``c1.custkey <> c2.custkey``) can only be
    evaluated by nested loops over a cross product.
    """
    if not isinstance(expr, ComparisonExpr) or expr.op != "=":
        return None
    left, right = expr.left, expr.right
    if not isinstance(left, ColumnExpr) or not isinstance(right, ColumnExpr):
        return None
    if left.table_index == right.table_index:
        return None
    return (left, right)
