"""Typed bound expressions and their closure compiler.

The binder turns AST expressions into *bound* expressions whose column
references carry (table index, column index) coordinates.  At plan time the
compiler lowers a bound expression against a concrete slot layout into a
plain Python closure ``f(row) -> value`` — the fast path the executor calls
per tuple.
"""

from repro.expr.bound import (
    ArithmeticExpr,
    BoundExpr,
    ColumnExpr,
    ComparisonExpr,
    FunctionExpr,
    LiteralExpr,
    LogicalExpr,
    NegativeExpr,
    NotExpr,
    as_conjuncts,
    equijoin_sides,
    referenced_tables,
)
from repro.expr.compiler import compile_expr, compile_predicate
from repro.expr.functions import FUNCTIONS, SqlFunction, lookup_function

__all__ = [
    "BoundExpr",
    "ColumnExpr",
    "LiteralExpr",
    "FunctionExpr",
    "ComparisonExpr",
    "LogicalExpr",
    "ArithmeticExpr",
    "NotExpr",
    "NegativeExpr",
    "as_conjuncts",
    "referenced_tables",
    "equijoin_sides",
    "compile_expr",
    "compile_predicate",
    "SqlFunction",
    "FUNCTIONS",
    "lookup_function",
]
