"""The virtual clock that drives every experiment.

Operators charge *costs* (simulated seconds of work in a resource class);
the clock converts cost into elapsed virtual wall time by integrating the
active :class:`~repro.sim.load.LoadProfile` piecewise.  Registered
:class:`Ticker` callbacks fire at exact periodic instants, even when those
instants fall inside a single large ``advance`` — that is how the progress
indicator samples its state every 10 simulated seconds regardless of what
the executor happens to be doing.

``advance`` is the hottest function in the engine (one call per page I/O
and per tuple batch), so it keeps a precomputed fast path: when the step
stays strictly before the next "event" (ticker firing or load-profile
boundary) it is a couple of float operations.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.load import CPU, IO, LoadProfile

_EPSILON = 1e-12


class Ticker:
    """A periodic callback registered on a :class:`VirtualClock`."""

    __slots__ = ("interval", "callback", "next_fire", "active")

    def __init__(self, interval: float, callback: Callable[[float], None], first: float):
        if interval <= 0:
            raise ValueError("ticker interval must be positive")
        self.interval = interval
        self.callback = callback
        self.next_fire = first
        self.active = True

    def cancel(self) -> None:
        """Stop this ticker from firing again."""
        self.active = False


class VirtualClock:
    """Simulated wall clock with load-aware cost accounting.

    Parameters
    ----------
    load:
        The system-load profile.  ``None`` means an unloaded system.
    """

    def __init__(self, load: Optional[LoadProfile] = None):
        self.now = 0.0
        self._load = load or LoadProfile.unloaded()
        self._tickers: list[Ticker] = []
        #: Cumulative raw cost charged per resource class (load-independent).
        self.cost_charged = {IO: 0.0, CPU: 0.0}
        #: Optional arbiter consulted before every charge (concurrent
        #: workloads install one; see repro.core.concurrent).
        self.gate = None
        #: Re-entrancy guard: a ticker callback that observes the clock
        #: (sampling another query's indicator, emitting trace events)
        #: must not recursively re-fire tickers mid-dispatch.
        self._firing = False
        self._refresh_factors()

    # ------------------------------------------------------------------
    # configuration

    @property
    def load(self) -> LoadProfile:
        return self._load

    def set_load(self, load: LoadProfile) -> None:
        """Replace the load profile (takes effect immediately)."""
        self._load = load
        self._refresh_factors()

    def set_gate(self, gate):
        """Install (or clear) the charge arbiter; returns the prior gate.

        The mediating API for the ``gate`` attribute (concurrent
        workloads install a :class:`repro.core.concurrent._ClockGate`).
        """
        previous = self.gate
        self.gate = gate
        return previous

    def add_ticker(
        self,
        interval: float,
        callback: Callable[[float], None],
        first: Optional[float] = None,
    ) -> Ticker:
        """Register ``callback(now)`` to fire every ``interval`` seconds.

        ``first`` sets the first firing instant; it defaults to
        ``now + interval``.
        """
        ticker = Ticker(interval, callback, self.now + interval if first is None else first)
        self._tickers.append(ticker)
        self._refresh_factors()
        return ticker

    # ------------------------------------------------------------------
    # advancing time

    def advance(self, cost: float, resource: str = CPU) -> None:
        """Charge ``cost`` simulated seconds of ``resource`` work.

        Elapsed virtual wall time is ``cost`` scaled by the load factor(s)
        active along the way; ticker callbacks fire at their exact instants.
        """
        if cost < 0:
            raise ValueError("cannot charge negative cost")
        if cost == 0:
            return
        if self.gate is not None:
            self.gate.before_charge(cost)
        self.cost_charged[resource] += cost
        # Fast path: the whole step fits before the next event.
        factor = self._factors[resource]
        end = self.now + cost * factor
        if end < self._next_event:
            self.now = end
            return
        self._advance_slow(cost, resource)

    def advance_wall(self, seconds: float) -> None:
        """Advance pure wall time (idle waiting); fires tickers on the way."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        target = self.now + seconds
        while True:
            event = self._next_event
            if event >= target:
                self.now = target
                return
            self.now = event
            self._fire_due()
            self._refresh_factors()

    def _advance_slow(self, cost: float, resource: str) -> None:
        remaining = cost
        while remaining > _EPSILON:
            factor = self._factors[resource]
            event = self._next_event
            wall_needed = remaining * factor
            if self.now + wall_needed < event:
                self.now += wall_needed
                return
            # Consume work up to the event boundary, then handle the event.
            wall_step = event - self.now
            remaining -= wall_step / factor
            self.now = event
            self._fire_due()
            self._refresh_factors()

    # ------------------------------------------------------------------
    # internals

    def _fire_due(self) -> None:
        """Fire all active tickers whose next_fire time has arrived.

        Iterates a snapshot so callbacks may register new tickers, and
        refuses to recurse: a callback that advances the clock (directly
        or through code it calls) defers newly-due tickers to the
        in-flight dispatch loop rather than nesting a second one.
        """
        if self._firing:
            return
        self._firing = True
        try:
            for ticker in list(self._tickers):
                while ticker.active and ticker.next_fire <= self.now + _EPSILON:
                    fire_at = ticker.next_fire
                    ticker.next_fire += ticker.interval
                    ticker.callback(fire_at)
            self._tickers = [t for t in self._tickers if t.active]
        finally:
            self._firing = False

    def _refresh_factors(self) -> None:
        """Recompute cached per-resource factors and the next event time."""
        self._factors = {
            IO: self._load.factor(self.now, IO),
            CPU: self._load.factor(self.now, CPU),
        }
        next_event = self._load.next_change_after(self.now)
        for ticker in self._tickers:
            if ticker.active and ticker.next_fire < next_event:
                next_event = ticker.next_fire
        self._next_event = next_event

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now:.3f})"
