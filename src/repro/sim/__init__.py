"""Virtual-time simulation substrate.

The engine never consults the real clock: every action that would take time
on a real system (page I/O, per-tuple CPU work) advances a
:class:`~repro.sim.clock.VirtualClock` by an amount given by the cost model,
stretched by the active :class:`~repro.sim.load.LoadProfile`.  This is the
substitution for the paper's physical testbed: interference experiments
(Figures 13-16 and 20) become deterministic load windows instead of an
actual concurrent file copy or CPU hog.
"""

from repro.sim.clock import Ticker, VirtualClock
from repro.sim.load import CPU, IO, InterferenceWindow, LoadProfile

__all__ = [
    "VirtualClock",
    "Ticker",
    "LoadProfile",
    "InterferenceWindow",
    "IO",
    "CPU",
]
