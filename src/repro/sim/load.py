"""Run-time system-load profiles.

The paper evaluates its indicator under three regimes (Section 5.1):

* an unloaded system,
* an *I/O interference* test where a large concurrent file copy runs during
  part of the query, and
* a *CPU interference* test where a CPU-intensive program runs.

We model each concurrent job as an :class:`InterferenceWindow` that scales
the virtual time charged for one resource class by a slowdown factor while
the window is active.  The progress indicator never sees these windows
directly; it only observes their effect on the query-execution speed, which
is exactly the information a real indicator would get.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

#: Resource class for disk work (page reads/writes).
IO = "io"
#: Resource class for processor work (tuple handling, hashing, comparing).
CPU = "cpu"

_RESOURCES = (IO, CPU)


@dataclass(frozen=True)
class InterferenceWindow:
    """A concurrent job active during ``[start, end)`` virtual seconds.

    ``io_factor``/``cpu_factor`` multiply the virtual time charged for the
    corresponding resource while the window is active.  A large file copy is
    expressed as ``io_factor > 1``; a CPU hog as ``cpu_factor > 1``.  An
    ``end`` of ``math.inf`` means "runs until the query finishes", as in the
    paper's CPU interference test for Q5.
    """

    start: float
    end: float
    io_factor: float = 1.0
    cpu_factor: float = 1.0

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("interference window must have end > start")
        if self.io_factor <= 0 or self.cpu_factor <= 0:
            raise ValueError("slowdown factors must be positive")

    def factor(self, resource: str) -> float:
        """Return this window's slowdown factor for ``resource``."""
        if resource == IO:
            return self.io_factor
        if resource == CPU:
            return self.cpu_factor
        raise ValueError(f"unknown resource class: {resource!r}")

    def active_at(self, t: float) -> bool:
        """Return whether the window covers virtual instant ``t``."""
        return self.start <= t < self.end


class LoadProfile:
    """A piecewise-constant system-load profile.

    The profile maps a virtual instant and a resource class to a slowdown
    factor (the product of all active windows' factors, so overlapping jobs
    compound).  ``next_change_after(t)`` exposes the next instant at which
    any factor changes, which lets the clock advance in large steps between
    boundaries.
    """

    def __init__(self, windows: Iterable[InterferenceWindow] = ()):
        self._windows = tuple(windows)
        boundaries = set()
        for w in self._windows:
            boundaries.add(w.start)
            if math.isfinite(w.end):
                boundaries.add(w.end)
        self._boundaries = sorted(boundaries)

    @classmethod
    def unloaded(cls) -> "LoadProfile":
        """An idle system: factor 1.0 everywhere."""
        return cls(())

    @classmethod
    def file_copy(cls, start: float, end: float, slowdown: float = 3.0) -> "LoadProfile":
        """The paper's I/O interference test: a file copy in [start, end)."""
        return cls([InterferenceWindow(start, end, io_factor=slowdown)])

    @classmethod
    def cpu_hog(cls, start: float, end: float = math.inf, slowdown: float = 2.5) -> "LoadProfile":
        """The paper's CPU interference test: a compute job from ``start``."""
        return cls([InterferenceWindow(start, end, cpu_factor=slowdown)])

    @property
    def windows(self) -> tuple[InterferenceWindow, ...]:
        return self._windows

    def factor(self, t: float, resource: str) -> float:
        """Slowdown factor for ``resource`` at virtual instant ``t``."""
        if resource not in _RESOURCES:
            raise ValueError(f"unknown resource class: {resource!r}")
        f = 1.0
        for w in self._windows:
            if w.active_at(t):
                f *= w.factor(resource)
        return f

    def next_change_after(self, t: float) -> float:
        """First instant strictly after ``t`` where any factor changes."""
        for b in self._boundaries:
            if b > t:
                return b
        return math.inf

    def __repr__(self) -> str:
        return f"LoadProfile({list(self._windows)!r})"
