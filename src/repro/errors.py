"""Exception hierarchy for the ``repro`` engine.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one type at the boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class StorageError(ReproError):
    """Raised for storage-layer failures (bad page ids, full pages, ...)."""


class BufferPoolError(StorageError):
    """Raised when the buffer pool cannot satisfy a request (e.g. all pinned)."""


class CatalogError(ReproError):
    """Raised for catalog lookups that fail or conflicting definitions."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """Raised when the SQL lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the SQL parser cannot derive a statement."""


class BindError(SqlError):
    """Raised when name resolution fails (unknown table/column, ambiguity)."""


class PlanError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class ExecutionError(ReproError):
    """Raised for run-time executor failures."""


class ProgressError(ReproError):
    """Raised for invalid progress-indicator configuration or use."""


class TraceError(ReproError):
    """Raised for observability failures (non-monotonic events, bad traces)."""
