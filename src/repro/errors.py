"""Exception hierarchy for the ``repro`` engine.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one type at the boundary.

The hierarchy is also a **taxonomy**: every concrete error is either

* **transient** — retrying the failed operation may succeed.  Transient
  errors additionally derive from :class:`TransientError`; the storage
  layer retries them with exponential virtual-clock backoff (see
  :mod:`repro.fault.retry`) before letting them propagate.
* **fatal** — retrying cannot help (bad plan, exhausted spill space,
  violated invariant).  Fatal errors propagate immediately and terminate
  exactly one query, never the whole workload: the scheduler contains
  them into the failing task's terminal state.

Handlers inside ``repro.core`` and ``repro.executor`` must catch taxonomy
types, never bare ``Exception`` (lint rule REPRO007) — a blanket handler
there would swallow injected faults and corrupt the recovery paths the
chaos harness (:mod:`repro.fault.chaos`) exercises.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class TransientError(ReproError):
    """Marker base: the failed operation may succeed if retried.

    The storage layer retries transient I/O with bounded exponential
    backoff on the virtual clock; an operation that keeps failing past
    the retry budget propagates its transient error, which the scheduler
    then treats as the query's fatal outcome.
    """


class FatalError(ReproError):
    """Marker base: retrying the failed operation cannot succeed."""


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is retryable under the engine's taxonomy."""
    return isinstance(error, TransientError)


class StorageError(ReproError):
    """Raised for storage-layer failures (bad page ids, full pages, ...)."""


class BufferPoolError(StorageError, FatalError):
    """Raised when the buffer pool cannot satisfy a request (e.g. all pinned)."""


class TransientIOError(StorageError, TransientError):
    """A simulated transient disk failure (device timeout, bus reset).

    Injected by :mod:`repro.fault`; the disk retries the page transfer
    with backoff before giving up.
    """


class PageCorruptionError(StorageError, TransientError):
    """A page failed its checksum on read.

    Transient in this engine's model: the stored copy is good (faults are
    simulated), so a re-read returns clean bytes — mirroring a torn read
    or a bad DMA transfer rather than persistent media corruption.
    """


class SpillSpaceError(StorageError, FatalError):
    """Temp/spill disk space is exhausted (external sort runs, hash
    partitions).  Fatal: retrying the write cannot free space."""


class CatalogError(ReproError):
    """Raised for catalog lookups that fail or conflicting definitions."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """Raised when the SQL lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the SQL parser cannot derive a statement."""


class BindError(SqlError):
    """Raised when name resolution fails (unknown table/column, ambiguity)."""


class PlanError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class ExecutionError(ReproError):
    """Raised for run-time executor failures."""


class QueryTimeoutError(ReproError):
    """A query exceeded its statement timeout or deadline.

    Raised to the *caller* (``QueryHandle.result()``) after the scheduler
    watchdog moved the task to its ``timed_out`` terminal state; the
    query itself was unwound cooperatively (pins released, temp files
    dropped) rather than killed abruptly.
    """


class QueryShedError(ReproError):
    """The service's load-shedding policy evicted a query.

    Raised to the caller (``QueryHandle.result()``) after the shedding
    loop decided — from the query's own remaining-time estimate — that it
    could not meet its deadline under the current load and unwound it
    cooperatively to the ``shed`` terminal state to free capacity for
    queries that still can (paper §6, automated).
    """


class AdmissionRejectedError(ReproError):
    """The admission controller refused a submission outright.

    Only raised when the bounded admission queue is full (or the caller
    asked for a hard rejection instead of queueing); a rejected query
    never became a scheduler task, so there is nothing to unwind.
    """


class ProgressError(ReproError):
    """Raised for invalid progress-indicator configuration or use."""


class TraceError(ReproError):
    """Raised for observability failures (non-monotonic events, bad traces)."""


class FaultConfigError(ReproError):
    """Raised for invalid fault-injection plans (bad rates, windows)."""
