"""A B-tree-style secondary index over a heap file.

The index stores sorted ``(key, page_no, slot)`` entries.  Structure is a
sorted array with binary search; *costs* are charged as a B-tree would
charge them — a root-to-leaf descent of ``height`` random page reads plus
sequential leaf reads proportional to the number of matching entries.
Heap-tuple fetches are the caller's business (the index-scan operator
fetches pages through the buffer pool).
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterator, Optional

from repro.errors import StorageError
from repro.storage.heap import HeapFile

#: Approximate bytes of one (key, rid) leaf entry, used to derive fanout.
_ENTRY_BYTES = 16


class BTreeIndex:
    """Ordered index mapping key values to row identifiers."""

    def __init__(self, name: str, heap: HeapFile, key_column: str, page_size: int = 8192):
        self.name = name
        self.heap = heap
        self.key_column = key_column
        self.key_index = heap.schema.index_of(key_column)
        self.fanout = max(2, page_size // _ENTRY_BYTES)
        self._keys: list[Any] = []
        self._rids: list[tuple[int, int]] = []
        self._build()

    def _build(self) -> None:
        entries = []
        for page_no, page in enumerate(self.heap.iter_pages()):
            for slot, row in enumerate(page.rows):
                key = row[self.key_index]
                if key is None:
                    continue
                entries.append((key, page_no, slot))
        entries.sort(key=lambda e: e[0])
        self._keys = [e[0] for e in entries]
        self._rids = [(e[1], e[2]) for e in entries]

    # ------------------------------------------------------------------
    # geometry

    @property
    def num_entries(self) -> int:
        return len(self._keys)

    @property
    def height(self) -> int:
        """Number of levels from root to leaf (>= 1)."""
        n = max(1, len(self._keys))
        return max(1, math.ceil(math.log(n, self.fanout)) or 1)

    @property
    def num_leaf_pages(self) -> int:
        return max(1, math.ceil(len(self._keys) / self.fanout))

    def leaf_pages_for(self, num_matches: int) -> int:
        """Leaf pages touched to read ``num_matches`` consecutive entries."""
        return max(1, math.ceil(num_matches / self.fanout)) if num_matches else 0

    # ------------------------------------------------------------------
    # lookups (cost-free; the index-scan operator charges time)

    def search_eq(self, key: Any) -> list[tuple[int, int]]:
        """Row ids of tuples whose key equals ``key``."""
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._rids[lo:hi]

    def search_range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Any, tuple[int, int]]]:
        """Yield (key, rid) for keys in the given range, in key order."""
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif high_inclusive:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        for i in range(lo, hi):
            yield self._keys[i], self._rids[i]

    def count_range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> int:
        """Number of entries in the given key range (for cost estimation)."""
        return sum(1 for _ in self.search_range(low, high, low_inclusive, high_inclusive))

    def fetch(self, rid: tuple[int, int]) -> tuple:
        """Return the heap row addressed by ``rid`` (no cost charged)."""
        page_no, slot = rid
        try:
            return self.heap.handle.pages[page_no].rows[slot]
        except IndexError:
            raise StorageError(f"dangling rid {rid} in index {self.name!r}") from None

    def __repr__(self) -> str:
        return (
            f"BTreeIndex({self.name!r} on {self.heap.name}.{self.key_column}, "
            f"entries={self.num_entries}, height={self.height})"
        )
