"""Heap files: the on-disk representation of tables and spill streams."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.storage.disk import FileHandle, SimulatedDisk
from repro.storage.page import Page
from repro.storage.schema import Schema


class HeapFile:
    """An unordered collection of rows in pages.

    Used both for base tables (bulk-loaded cost-free before an experiment
    starts) and for temp spill files (written with I/O charged).  Reads are
    performed by the executor through the buffer pool (base tables) or the
    disk directly (temp files); this class only owns layout and append.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        disk: SimulatedDisk,
        page_size: int,
        temp: bool = False,
    ):
        self.name = name
        self.schema = schema
        self._disk = disk
        self._page_size = page_size
        self.handle: FileHandle = disk.allocate(name, temp=temp)
        self._open_page: Page | None = None
        self.num_tuples = 0
        self.total_bytes = 0
        #: Whether appends charge I/O time (False while bulk loading).
        self.charge_io = temp

    # ------------------------------------------------------------------
    # writing

    def append(self, row: Sequence[Any]) -> None:
        """Append one row, flushing the open page when it fills."""
        width = self.schema.row_width(row)
        page = self._open_page
        if page is None:
            page = Page(self._page_size)
            self._open_page = page
        elif not page.fits(width):
            self._disk.append_page(self.handle, page, charge_io=self.charge_io)
            page = Page(self._page_size)
            self._open_page = page
        page.append(row, width)
        self.num_tuples += 1
        self.total_bytes += width

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    def flush(self) -> None:
        """Force the open page to disk (call after the last append)."""
        if self._open_page is not None and len(self._open_page):
            self._disk.append_page(self.handle, self._open_page, charge_io=self.charge_io)
        self._open_page = None

    def bulk_load(self, rows: Iterable[Sequence[Any]]) -> None:
        """Load rows without charging I/O (experiment setup path)."""
        previous = self.charge_io
        self.charge_io = False
        try:
            self.extend(rows)
            self.flush()
        finally:
            self.charge_io = previous

    # ------------------------------------------------------------------
    # geometry

    @property
    def num_pages(self) -> int:
        return self.handle.num_pages

    def avg_tuple_width(self) -> float:
        """Mean stored row width in bytes (header included)."""
        return self.total_bytes / self.num_tuples if self.num_tuples else 0.0

    # ------------------------------------------------------------------
    # raw iteration (cost-free; the executor charges through buffer/disk)

    def iter_pages(self) -> Iterator[Page]:
        """Yield pages without charging any I/O (catalog/ANALYZE use)."""
        yield from self.handle.pages

    def iter_rows(self) -> Iterator[tuple]:
        """Yield rows without charging any I/O."""
        for page in self.handle.pages:
            yield from page.rows

    def drop(self) -> None:
        """Release the underlying file (temp cleanup)."""
        self._disk.deallocate(self.handle)
        self._open_page = None

    def __repr__(self) -> str:
        return (
            f"HeapFile({self.name!r}, tuples={self.num_tuples}, "
            f"pages={self.num_pages}, bytes={self.total_bytes})"
        )
