"""Storage substrate: typed schemas, pages, simulated disk, buffer pool.

This package plays the role of PostgreSQL's storage manager for the
reproduction.  Tables are heap files of 8 KB pages; base-table reads go
through an LRU buffer pool; spill files (hash-join partitions, sort runs)
are temp files that bypass the pool, so re-reading spilled bytes always
pays simulated I/O — which is what makes multi-stage operators visible to
the progress indicator exactly as in the paper (Section 4.5, "multi-stage
operator" special case).
"""

from repro.storage.buffer import BufferPool
from repro.storage.disk import FileHandle, SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.index import BTreeIndex
from repro.storage.page import Page
from repro.storage.schema import Column, Schema
from repro.storage.types import (
    DataType,
    DateType,
    FloatType,
    IntegerType,
    StringType,
    DATE,
    FLOAT,
    INTEGER,
    string,
)

__all__ = [
    "BufferPool",
    "SimulatedDisk",
    "FileHandle",
    "HeapFile",
    "BTreeIndex",
    "Page",
    "Column",
    "Schema",
    "DataType",
    "IntegerType",
    "FloatType",
    "StringType",
    "DateType",
    "INTEGER",
    "FLOAT",
    "DATE",
    "string",
]
