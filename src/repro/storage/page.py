"""Heap pages: fixed-byte-budget containers of rows."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import StorageError


class Page:
    """A page holding whole rows up to a byte budget.

    Rows are stored as Python tuples; ``bytes_used`` tracks the sum of the
    rows' schema widths so scans can account for work in bytes without
    re-measuring every tuple.
    """

    __slots__ = ("capacity", "rows", "bytes_used")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.rows: list[tuple] = []
        self.bytes_used = 0

    def fits(self, width: int) -> bool:
        """Whether a row of ``width`` bytes fits (a page never stays empty)."""
        return not self.rows or self.bytes_used + width <= self.capacity

    def append(self, row: Sequence[Any], width: int) -> None:
        """Append ``row`` of precomputed ``width`` bytes."""
        if not self.fits(width):
            raise StorageError("row does not fit in page")
        self.rows.append(tuple(row))
        self.bytes_used += width

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Page(rows={len(self.rows)}, bytes={self.bytes_used}/{self.capacity})"
