"""Schemas: ordered, named, typed columns.

Rows are plain Python tuples positionally aligned with a :class:`Schema`.
The schema computes per-row byte widths, which feed both page layout and
the byte-based unit of work U used by the progress indicator.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import StorageError
from repro.storage.types import DataType, StringType

#: Fixed per-tuple header overhead in bytes (slot pointer + header),
#: loosely modelled on PostgreSQL's ~23-byte tuple header + item pointer.
TUPLE_HEADER_BYTES = 24


class Column:
    """A named, typed column."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type_: DataType):
        self.name = name
        self.type = type_

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.type!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Column)
            and other.name == self.name
            and other.type == self.type
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type))


class Schema:
    """An ordered collection of columns.

    Column names within one schema must be unique.  Joined schemas are
    produced with :meth:`concat`, which qualifies duplicate names away at
    the binder level (the storage layer never sees duplicates).
    """

    def __init__(self, columns: Iterable[Column]):
        self.columns: tuple[Column, ...] = tuple(columns)
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate column names in schema: {names}")
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        # Precompute fixed widths; None marks varying-width columns.
        self._fixed: list[int | None] = []
        fixed_total = TUPLE_HEADER_BYTES
        for col in self.columns:
            if isinstance(col.type, StringType):
                self._fixed.append(None)
            else:
                w = col.type.width(None)
                self._fixed.append(w)
                fixed_total += w
        self._fixed_total = fixed_total
        self._varying = [i for i, w in enumerate(self._fixed) if w is None]

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def names(self) -> list[str]:
        """Column names in schema order."""
        return [c.name for c in self.columns]

    def index_of(self, name: str) -> int:
        """Position of column ``name``; raises StorageError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise StorageError(f"no column named {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Whether a column with this name exists."""
        return name in self._index

    def column(self, name: str) -> Column:
        """The Column object for ``name``; raises StorageError when absent."""
        return self.columns[self.index_of(name)]

    # ------------------------------------------------------------------
    # byte accounting

    def row_width(self, row: Sequence[Any]) -> int:
        """Byte width of ``row`` under this schema (incl. header)."""
        width = self._fixed_total
        for i in self._varying:
            value = row[i]
            width += 1 if value is None else 1 + len(value)
        return width

    def min_width(self) -> int:
        """Smallest possible row width (all strings empty/null)."""
        return self._fixed_total + len(self._varying)

    # ------------------------------------------------------------------
    # derivation

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation of a row of self with a row of other."""
        return Schema(self.columns + other.columns)

    def project(self, indexes: Sequence[int]) -> "Schema":
        """Schema containing only the columns at ``indexes`` (in order)."""
        return Schema(self.columns[i] for i in indexes)

    def validate_row(self, row: Sequence[Any]) -> None:
        """Raise StorageError unless ``row`` fits this schema."""
        if len(row) != len(self.columns):
            raise StorageError(
                f"row arity {len(row)} does not match schema arity {len(self.columns)}"
            )
        for value, col in zip(row, self.columns):
            if not col.type.validate(value):
                raise StorageError(
                    f"value {value!r} is not valid for column "
                    f"{col.name!r} of type {col.type!r}"
                )

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name} {c.type!r}" for c in self.columns)
        return f"Schema({inner})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and other.columns == self.columns

    def __hash__(self) -> int:
        return hash(self.columns)
