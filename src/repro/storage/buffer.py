"""An LRU buffer pool in front of the simulated disk.

Base-table page reads go through the pool: a hit costs only a token CPU
charge, a miss pays the disk's I/O time.  This is what lets a query's
observed speed differ between "disk-bound" and "completely cached" — the
paper's Section 4.1 explicitly ranges the time-per-U between those poles.

Temp files (spill partitions, sort runs) intentionally bypass the pool so
multi-stage passes always pay I/O.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - obs is imported lazily at emit time
    from repro.obs.bus import TraceBus

from repro.config import CostModelConfig
from repro.sim.load import CPU
from repro.storage.disk import FileHandle, SimulatedDisk
from repro.storage.page import Page


class BufferPool:
    """Fixed-capacity LRU cache of (file_id, page_no) -> Page."""

    def __init__(self, disk: SimulatedDisk, capacity_pages: int, cost: CostModelConfig):
        if capacity_pages <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self._disk = disk
        self._capacity = capacity_pages
        self._cost = cost
        self._frames: OrderedDict[tuple[int, int], Page] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Optional repro.obs.TraceBus emitting BufferAccess events.
        #: None (default) is the zero-cost disabled path.
        self.trace: Optional["TraceBus"] = None

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def num_cached(self) -> int:
        return len(self._frames)

    def get_page(self, handle: FileHandle, page_no: int, sequential: bool = True) -> Page:
        """Fetch a page, charging I/O on a miss and a token CPU hit cost."""
        key = (handle.file_id, page_no)
        page = self._frames.get(key)
        if page is not None:
            self.hits += 1
            self._frames.move_to_end(key)
            self._disk.clock.advance(self._cost.cpu_operator, CPU)
            if self.trace is not None:
                self._emit_access(handle, page_no, hit=True)
            return page
        self.misses += 1
        page = self._disk.read_page(handle, page_no, sequential=sequential)
        self._frames[key] = page
        if len(self._frames) > self._capacity:
            self._frames.popitem(last=False)
        if self.trace is not None:
            self._emit_access(handle, page_no, hit=False)
        return page

    def _emit_access(self, handle: FileHandle, page_no: int, hit: bool) -> None:
        from repro.obs.events import BufferAccess

        assert self.trace is not None
        self.trace.emit(BufferAccess(
            t=self._disk.clock.now, file_id=handle.file_id,
            page_no=page_no, hit=hit,
        ))

    def invalidate_file(self, handle: FileHandle) -> None:
        """Drop all cached pages of a file (after truncation/drop)."""
        stale = [key for key in self._frames if key[0] == handle.file_id]
        for key in stale:
            del self._frames[key]

    def clear(self) -> None:
        """Empty the pool (the paper restarts with a cold buffer pool)."""
        self._frames.clear()

    def hit_rate(self) -> float:
        """Fraction of requests served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
