"""An LRU buffer pool in front of the simulated disk.

Base-table page reads go through the pool: a hit costs only a token CPU
charge, a miss pays the disk's I/O time.  This is what lets a query's
observed speed differ between "disk-bound" and "completely cached" — the
paper's Section 4.1 explicitly ranges the time-per-U between those poles.
With several in-flight queries (see :mod:`repro.sched`) the pool is the
shared resource they fight over: one query's pages evict another's, and
the loser's observed speed drops — contention the paper modeled with a
synthetic interference window now emerges from the workload itself.

Pages can be *pinned* while a query is actively consuming them: pinned
frames are exempt from eviction, so a scan suspended mid-page by the
scheduler finds its page still resident when resumed, and a cancelled
query releases its pins on the way out (the operator's cleanup path).

Temp files (spill partitions, sort runs) intentionally bypass the pool so
multi-stage passes always pay I/O.

A :class:`~repro.fault.FaultInjector` with buffer-pressure windows can
temporarily reserve frames (as if a co-tenant pinned them): the pool's
effective capacity drops while the window is active and recovers
afterwards.  No pages are lost — extra evictions just raise miss rates.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - fault/obs are imported lazily
    from repro.fault.injector import FaultInjector
    from repro.obs.bus import TraceBus

from repro.config import CostModelConfig
from repro.errors import BufferPoolError
from repro.sim.load import CPU
from repro.storage.disk import FileHandle, SimulatedDisk
from repro.storage.page import Page


class BufferPool:
    """Fixed-capacity LRU cache of (file_id, page_no) -> Page."""

    def __init__(self, disk: SimulatedDisk, capacity_pages: int, cost: CostModelConfig):
        if capacity_pages <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self._disk = disk
        self._capacity = capacity_pages
        self._cost = cost
        self._frames: OrderedDict[tuple[int, int], Page] = OrderedDict()
        #: Pin refcounts per (file_id, page_no); pinned frames never evict.
        self._pins: dict[tuple[int, int], int] = {}
        self.hits = 0
        self.misses = 0
        #: Optional repro.obs.TraceBus emitting BufferAccess events.
        #: None (default) is the zero-cost disabled path.
        self.trace: Optional["TraceBus"] = None
        #: Optional repro.fault.FaultInjector whose pressure windows shrink
        #: the effective capacity.  None (default) is the zero-cost path.
        self.faults: Optional["FaultInjector"] = None

    def set_trace(self, trace: Optional["TraceBus"]) -> Optional["TraceBus"]:
        """Install (or clear) the trace bus; returns the prior bus so
        callers can restore it (the scheduler brackets each slice)."""
        previous = self.trace
        self.trace = trace
        return previous

    def set_faults(
        self, faults: Optional["FaultInjector"]
    ) -> Optional["FaultInjector"]:
        """Install (or clear) the fault injector; returns the prior one."""
        previous = self.faults
        self.faults = faults
        return previous

    @property
    def capacity(self) -> int:
        return self._capacity

    def effective_capacity(self) -> int:
        """Capacity minus any frames reserved by an active pressure window.

        Never below one frame — the pool stays functional, just badly
        squeezed (degrade, don't die).
        """
        if self.faults is None:
            return self._capacity
        reserved = self.faults.reserved_frames()
        if not reserved:
            return self._capacity
        return max(1, self._capacity - reserved)

    @property
    def num_cached(self) -> int:
        return len(self._frames)

    @property
    def pinned_count(self) -> int:
        """Number of distinct pages currently holding at least one pin."""
        return len(self._pins)

    def get_page(self, handle: FileHandle, page_no: int, sequential: bool = True) -> Page:
        """Fetch a page, charging I/O on a miss and a token CPU hit cost."""
        key = (handle.file_id, page_no)
        page = self._frames.get(key)
        if page is not None:
            self.hits += 1
            self._frames.move_to_end(key)
            self._disk.clock.advance(self._cost.cpu_operator, CPU)
            if self.trace is not None:
                self._emit_access(handle, page_no, hit=True)
            return page
        self.misses += 1
        page = self._disk.read_page(handle, page_no, sequential=sequential)
        self._frames[key] = page
        limit = self._capacity if self.faults is None else self.effective_capacity()
        while len(self._frames) > limit:
            self._evict_one()
        if self.trace is not None:
            self._emit_access(handle, page_no, hit=False)
        return page

    def _evict_one(self) -> None:
        """Drop the least-recently-used unpinned frame."""
        pins = self._pins
        for key in self._frames:
            if key not in pins:
                del self._frames[key]
                return
        raise BufferPoolError(
            f"cannot evict: all {len(self._frames)} resident pages are pinned"
        )

    # ------------------------------------------------------------------
    # pinning

    def pin(self, handle: FileHandle, page_no: int) -> None:
        """Exempt a page from eviction while a query is consuming it.

        Pins are refcounted; every ``pin`` must be paired with an
        :meth:`unpin` (operators do this in ``finally`` blocks, so
        cancellation mid-segment releases them on the way out).
        """
        key = (handle.file_id, page_no)
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, handle: FileHandle, page_no: int) -> None:
        """Release one pin on a page.

        Tolerates pins already dropped wholesale by :meth:`clear` (a
        restart while abandoned generators are still pending collection),
        so operator cleanup paths can always unpin unconditionally.
        """
        key = (handle.file_id, page_no)
        count = self._pins.get(key)
        if count is None:
            return
        if count <= 1:
            del self._pins[key]
        else:
            self._pins[key] = count - 1

    def _emit_access(self, handle: FileHandle, page_no: int, hit: bool) -> None:
        from repro.obs.events import BufferAccess

        assert self.trace is not None
        self.trace.emit(BufferAccess(
            t=self._disk.clock.now, file_id=handle.file_id,
            page_no=page_no, hit=hit,
        ))

    def invalidate_file(self, handle: FileHandle) -> None:
        """Drop all cached pages of a file (after truncation/drop)."""
        stale = [key for key in self._frames if key[0] == handle.file_id]
        for key in stale:
            del self._frames[key]

    def clear(self) -> None:
        """Empty the pool (the paper restarts with a cold buffer pool)."""
        self._frames.clear()
        self._pins.clear()

    def hit_rate(self) -> float:
        """Fraction of requests served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
