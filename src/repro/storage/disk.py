"""The simulated disk.

Every page read or write charges the virtual clock with I/O cost from the
cost model.  Sequential reads are cheap, random reads expensive, writes in
between — the ratio is what makes table scans, index probes and spill
passes occupy realistic proportions of a query's life, which in turn shapes
the speed curves in the paper's Figures 5, 10 and 14.

With a :class:`~repro.fault.FaultInjector` installed (``self.faults``),
charged transfers may fail: transient faults (device timeouts, checksum
mismatches) are retried here with bounded exponential backoff on the
virtual clock — emitting ``fault_injected`` / ``io_retry`` /
``io_gave_up`` trace events — while fatal faults (spill-space
exhaustion) propagate immediately.  Slow-disk windows multiply the I/O
cost instead of raising.  ``self.faults is None`` (the default) keeps
every hook a single identity test, the same near-zero pattern as tracing.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - fault/obs are imported lazily
    from repro.fault.injector import FaultInjector, InjectedFault
    from repro.obs.bus import TraceBus

from repro.config import CostModelConfig
from repro.errors import StorageError
from repro.sim.clock import VirtualClock
from repro.sim.load import IO
from repro.storage.page import Page


class FileHandle:
    """A file on the simulated disk: an ordered sequence of pages."""

    __slots__ = ("file_id", "name", "pages", "temp")

    def __init__(self, file_id: int, name: str, temp: bool):
        self.file_id = file_id
        self.name = name
        self.pages: list[Page] = []
        self.temp = temp

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    def __repr__(self) -> str:
        kind = "temp" if self.temp else "perm"
        return f"FileHandle({self.file_id}, {self.name!r}, {kind}, pages={len(self.pages)})"


class SimulatedDisk:
    """Allocates files and charges I/O time for page transfers.

    ``charge_io=False`` reads/writes are used only for cost-free setup
    (bulk-loading the test data set before the experiment clock starts).
    """

    def __init__(self, clock: VirtualClock, cost: CostModelConfig):
        self._clock = clock
        self._cost = cost
        self._files: dict[int, FileHandle] = {}
        self._ids = itertools.count(1)
        # Observability counters.
        self.seq_reads = 0
        self.random_reads = 0
        self.writes = 0
        #: Optional repro.obs.TraceBus emitting PageRead/PageWritten events
        #: for charged I/O.  None (default) is the zero-cost disabled path.
        self.trace: Optional["TraceBus"] = None
        #: Optional repro.fault.FaultInjector consulted on every charged
        #: transfer.  None (default) is the zero-cost disabled path.
        self.faults: Optional["FaultInjector"] = None
        #: Current I/O owner label (set per scheduler slice); None disables
        #: per-owner attribution entirely (single-query fast path).
        self._owner: Optional[str] = None
        #: Per-owner I/O counters: owner -> {seq_reads, random_reads, writes}.
        self._owner_counters: dict[str, dict[str, int]] = {}

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    # ------------------------------------------------------------------
    # per-owner I/O attribution (scheduler slices)

    def set_owner(self, owner: Optional[str]) -> Optional[str]:
        """Attribute subsequent charged I/O to ``owner``; returns the prior
        owner so callers can restore it (the scheduler brackets each slice
        with ``set_owner``/restore)."""
        previous = self._owner
        self._owner = owner
        return previous

    def set_trace(self, trace: Optional["TraceBus"]) -> Optional["TraceBus"]:
        """Install (or clear) the trace bus; returns the prior bus so
        callers can restore it.  The mediating API for a shared-state
        attribute (see the ownership registry in repro.analysis.flow):
        the scheduler brackets each slice with ``set_trace``/restore."""
        previous = self.trace
        self.trace = trace
        return previous

    def set_faults(
        self, faults: Optional["FaultInjector"]
    ) -> Optional["FaultInjector"]:
        """Install (or clear) the fault injector; returns the prior one."""
        previous = self.faults
        self.faults = faults
        return previous

    def owner_counters(self, owner: str) -> dict[str, int]:
        """Copy of one owner's I/O counters (zeros if it never did I/O)."""
        counters = self._owner_counters.get(owner)
        if counters is None:
            return {"seq_reads": 0, "random_reads": 0, "writes": 0}
        return dict(counters)

    def _charge_owner(self, kind: str) -> None:
        counters = self._owner_counters.get(self._owner)  # type: ignore[arg-type]
        if counters is None:
            counters = {"seq_reads": 0, "random_reads": 0, "writes": 0}
            self._owner_counters[self._owner] = counters  # type: ignore[index]
        counters[kind] += 1

    # ------------------------------------------------------------------
    # file lifecycle

    def allocate(self, name: str, temp: bool = False) -> FileHandle:
        """Create a new empty file."""
        handle = FileHandle(next(self._ids), name, temp)
        self._files[handle.file_id] = handle
        return handle

    def deallocate(self, handle: FileHandle) -> None:
        """Drop a file (used to reclaim temp partitions and sort runs)."""
        self._files.pop(handle.file_id, None)
        handle.pages.clear()

    def file(self, file_id: int) -> FileHandle:
        """Look up a file handle by id; raises StorageError when absent."""
        try:
            return self._files[file_id]
        except KeyError:
            raise StorageError(f"no such file id: {file_id}") from None

    def temp_file_count(self) -> int:
        """Live temp files (spill partitions, sort runs) on the disk.

        Zero once every query reached a terminal state — the chaos
        harness asserts this on every path (finish, fail, cancel,
        timeout).
        """
        return sum(1 for f in self._files.values() if f.temp)

    # ------------------------------------------------------------------
    # charging

    def _charge_read(self, sequential: bool) -> None:
        """Charge one page read: counters, owner attribution, I/O time."""
        if sequential:
            self.seq_reads += 1
            if self._owner is not None:
                self._charge_owner("seq_reads")
            cost = self._cost.seq_page_read
        else:
            self.random_reads += 1
            if self._owner is not None:
                self._charge_owner("random_reads")
            cost = self._cost.random_page_read
        if self.faults is not None:
            cost *= self.faults.io_factor()
        self._clock.advance(cost, IO)

    def _charge_write(self) -> None:
        """Charge one page write: counters, owner attribution, I/O time."""
        self.writes += 1
        if self._owner is not None:
            self._charge_owner("writes")
        cost = self._cost.page_write
        if self.faults is not None:
            cost *= self.faults.io_factor()
        self._clock.advance(cost, IO)

    # ------------------------------------------------------------------
    # fault recovery (transient I/O retry with backoff)

    def _recover(
        self,
        fault: "InjectedFault",
        handle: FileHandle,
        page_no: int,
        is_read: bool,
        sequential: bool = True,
    ) -> None:
        """Retry a faulted transfer with bounded exponential backoff.

        The original attempt already charged its I/O time and then
        failed; each retry waits its backoff (pure virtual wall time —
        visible to the speed monitor exactly like a stalled disk), pays
        the transfer cost again, and either clears the fault or, once the
        budget is spent, lets the transient error propagate.
        """
        injector = self.faults
        assert injector is not None
        policy = injector.plan.retry
        clock = self._clock
        if self.trace is not None:
            from repro.obs.events import FaultInjected

            self.trace.emit(FaultInjected(
                t=clock.now, fault=fault.fault,
                file_id=handle.file_id, page_no=page_no,
            ))
        failures_left = fault.failures - 1  # the original attempt failed once
        attempts = 1
        while attempts < policy.max_attempts:
            backoff = policy.backoff(attempts)
            clock.advance_wall(backoff)
            if is_read:
                self._charge_read(sequential)
            else:
                self._charge_write()
            attempts += 1
            injector.retries += 1
            if self.trace is not None:
                from repro.obs.events import IoRetried

                self.trace.emit(IoRetried(
                    t=clock.now, fault=fault.fault,
                    file_id=handle.file_id, page_no=page_no,
                    attempt=attempts, backoff=backoff,
                ))
            if failures_left == 0:
                return  # the retry went through clean
            failures_left -= 1
        injector.gave_up += 1
        if self.trace is not None:
            from repro.obs.events import IoGaveUp

            self.trace.emit(IoGaveUp(
                t=clock.now, fault=fault.fault,
                file_id=handle.file_id, page_no=page_no,
                attempts=attempts, error=repr(fault.error),
            ))
        raise fault.error

    def _inject_read(self, handle: FileHandle, page_no: int, sequential: bool) -> None:
        assert self.faults is not None
        fault = self.faults.on_read(handle.file_id, page_no)
        if fault is not None:
            self._recover(fault, handle, page_no, is_read=True, sequential=sequential)

    def _inject_write(self, handle: FileHandle, page_no: int) -> None:
        assert self.faults is not None
        fault = self.faults.on_write(handle.file_id, page_no)
        if fault is not None:
            self._recover(fault, handle, page_no, is_read=False)

    # ------------------------------------------------------------------
    # page transfer

    def read_page(
        self, handle: FileHandle, page_no: int, sequential: bool = True, charge_io: bool = True
    ) -> Page:
        """Read one page, charging sequential or random I/O time."""
        try:
            page = handle.pages[page_no]
        except IndexError:
            raise StorageError(
                f"page {page_no} out of range for file {handle.name!r} "
                f"({handle.num_pages} pages)"
            ) from None
        if charge_io:
            self._charge_read(sequential)
            if self.trace is not None:
                from repro.obs.events import PageRead

                self.trace.emit(PageRead(
                    t=self._clock.now, file_id=handle.file_id,
                    page_no=page_no, sequential=sequential,
                ))
            if self.faults is not None:
                self._inject_read(handle, page_no, sequential)
        return page

    def append_page(self, handle: FileHandle, page: Page, charge_io: bool = True) -> int:
        """Append a full page to a file, charging one page write."""
        page_no = len(handle.pages)
        if charge_io and self.faults is not None and handle.temp:
            # Fatal path first: an exhausted spill budget fails the write
            # before any time is charged (the device rejected it).
            self.faults.check_spill(handle.file_id, page_no)
        handle.pages.append(page)
        if charge_io:
            self._charge_write()
            if self.trace is not None:
                self._emit_write(handle, page_no)
            if self.faults is not None:
                self._inject_write(handle, page_no)
        return page_no

    def write_page(self, handle: FileHandle, page_no: int, page: Page, charge_io: bool = True) -> None:
        """Overwrite an existing page in place (buffer-pool eviction path)."""
        if not 0 <= page_no < handle.num_pages:
            raise StorageError(f"page {page_no} out of range for file {handle.name!r}")
        handle.pages[page_no] = page
        if charge_io:
            self._charge_write()
            if self.trace is not None:
                self._emit_write(handle, page_no)
            if self.faults is not None:
                self._inject_write(handle, page_no)

    def _emit_write(self, handle: FileHandle, page_no: int) -> None:
        from repro.obs.events import PageWritten

        assert self.trace is not None
        self.trace.emit(
            PageWritten(t=self._clock.now, file_id=handle.file_id, page_no=page_no)
        )

    def io_counters(self) -> dict[str, int]:
        """Snapshot of read/write counters (for tests and overhead benches)."""
        return {
            "seq_reads": self.seq_reads,
            "random_reads": self.random_reads,
            "writes": self.writes,
        }
