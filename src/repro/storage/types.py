"""Column data types.

Types carry just enough behaviour for this engine: a byte width (used for
page layout and for the byte-based work unit U), value validation, and
parsing from SQL literals.  Widths follow common fixed-width conventions;
strings are varying-width with a one-byte length header, so tuple widths —
and therefore U — respond to actual data, as they do in the paper's
"average tuple size" statistics (Section 4.3).
"""

from __future__ import annotations

from typing import Any


class DataType:
    """Abstract column type."""

    name: str = "unknown"

    def width(self, value: Any) -> int:
        """Byte width of ``value`` when stored in a tuple."""
        raise NotImplementedError

    def validate(self, value: Any) -> bool:
        """Whether ``value`` is storable under this type (None is a NULL)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class IntegerType(DataType):
    """32-bit signed integer."""

    name = "integer"
    _WIDTH = 4

    def width(self, value: Any) -> int:
        return self._WIDTH

    def validate(self, value: Any) -> bool:
        return value is None or isinstance(value, int)


class FloatType(DataType):
    """64-bit float (SQL ``double precision``)."""

    name = "float"
    _WIDTH = 8

    def width(self, value: Any) -> int:
        return self._WIDTH

    def validate(self, value: Any) -> bool:
        return value is None or isinstance(value, (int, float))


class DateType(DataType):
    """A date stored as an integer day number."""

    name = "date"
    _WIDTH = 4

    def width(self, value: Any) -> int:
        return self._WIDTH

    def validate(self, value: Any) -> bool:
        return value is None or isinstance(value, int)


class StringType(DataType):
    """Varying-width character string with a declared maximum length."""

    name = "string"

    def __init__(self, max_length: int = 255):
        if max_length <= 0:
            raise ValueError("max_length must be positive")
        self.max_length = max_length

    def width(self, value: Any) -> int:
        if value is None:
            return 1
        return 1 + len(value)

    def validate(self, value: Any) -> bool:
        return value is None or (isinstance(value, str) and len(value) <= self.max_length)

    def __repr__(self) -> str:
        return f"string({self.max_length})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringType) and other.max_length == self.max_length

    def __hash__(self) -> int:
        return hash(("string", self.max_length))


class BooleanType(DataType):
    """Boolean (predicate results; not storable in base tables here)."""

    name = "boolean"
    _WIDTH = 1

    def width(self, value: Any) -> int:
        return self._WIDTH

    def validate(self, value: Any) -> bool:
        return value is None or isinstance(value, bool)


#: Shared singleton instances for fixed types.
INTEGER = IntegerType()
FLOAT = FloatType()
DATE = DateType()
BOOLEAN = BooleanType()


def string(max_length: int = 255) -> StringType:
    """Convenience constructor mirroring ``INTEGER``/``FLOAT`` style."""
    return StringType(max_length)
