"""Pluggable progress estimators and their registry.

The estimation layer behind :class:`repro.core.indicator.ProgressIndicator`
is a registry of named :class:`~repro.estimators.base.Estimator`
strategies.  Pick one per query (``Session.submit(estimator=...)``), per
system (``ProgressConfig.estimator``), or let the online selector race
them all (``estimator="ensemble"``).

Built-in estimators (see ``docs/estimators.md``):

===========  ==========================================================
name         strategy
===========  ==========================================================
``paper``    the paper's §4.5 blend ``E = p*E2 + (1-p)*E1`` (default;
             bit-identical to the pre-redesign ``core.refine`` path)
``dne``      driver-node extrapolation ``E = y/p`` (König et al. spirit)
``tgn``      optimizer-anchored ``E = max(E1, y)`` (never extrapolate)
``history``  paper blend with per-plan-signature correction factors
             learned from prior executions (Ivanov & Bartunov spirit)
``ensemble`` online selector over every registered candidate above
===========  ==========================================================

Registering your own::

    from repro.estimators import register_estimator
    from repro.estimators.refinement import RefinementEstimator

    class Pessimist(RefinementEstimator):
        name = "pessimist"
        def _blend(self, y, p, e1):
            return max(y / p if p > 0 else e1, 2.0 * e1)

    register_estimator("pessimist", lambda specs, tracker, ctx: Pessimist(specs, tracker))

A registered estimator automatically joins the ensemble's candidate set
and gets its own column in the accuracy leaderboard (the observatory
scores every candidate's trace stream).  Registration order is the
ensemble's tie-break order, so built-ins keep priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.segments import SegmentSpec
from repro.estimators.base import (
    INPUT_SOURCES,
    CandidateEstimate,
    EstimateSnapshot,
    Estimator,
    InputEstimate,
    SegmentEstimate,
)
from repro.estimators.ensemble import EnsembleEstimator
from repro.estimators.history import HistoryEstimator, HistoryStore
from repro.estimators.refinement import (
    REFINE_MODES,
    DriverNodeEstimator,
    PaperEstimator,
    RefinementEstimator,
    TotalGetNextEstimator,
    estimator_for_refine_mode,
)
from repro.executor.work import WorkTracker

#: The default estimator name (``ProgressConfig.estimator``'s default).
DEFAULT_ESTIMATOR = "paper"

#: The selector's registry name (not itself an ensemble candidate).
ENSEMBLE = "ensemble"


@dataclass(frozen=True)
class EstimatorContext:
    """Cross-query resources a factory may bind (all optional)."""

    #: The owning database's history store (None: fresh, nothing learned).
    history: Optional[HistoryStore] = None


EstimatorFactory = Callable[
    [list[SegmentSpec], WorkTracker, EstimatorContext], Estimator
]

#: name -> factory, in registration order (= ensemble candidate order).
_FACTORIES: dict[str, EstimatorFactory] = {}


def register_estimator(name: str, factory: EstimatorFactory) -> None:
    """Add (or replace) a named estimator; it joins the ensemble too."""
    if name == ENSEMBLE:
        raise ValueError(f"{ENSEMBLE!r} is reserved for the selector")
    _FACTORIES[name] = factory


def estimator_names(include_ensemble: bool = True) -> tuple[str, ...]:
    """Registered estimator names, in registration order."""
    names = tuple(_FACTORIES)
    return names + (ENSEMBLE,) if include_ensemble else names


def make_estimator(
    name: str,
    specs: list[SegmentSpec],
    tracker: WorkTracker,
    context: Optional[EstimatorContext] = None,
) -> Estimator:
    """Instantiate a registered estimator (or the ensemble) by name."""
    ctx = context if context is not None else EstimatorContext()
    if name == ENSEMBLE:
        candidates = [
            factory(specs, tracker, ctx) for factory in _FACTORIES.values()
        ]
        return EnsembleEstimator(specs, tracker, candidates)
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(estimator_names())
        raise ValueError(
            f"unknown estimator {name!r} (registered: {known})"
        ) from None
    return factory(specs, tracker, ctx)


def _make_history(
    specs: list[SegmentSpec], tracker: WorkTracker, ctx: EstimatorContext
) -> Estimator:
    store = ctx.history if ctx.history is not None else HistoryStore()
    return HistoryEstimator(specs, tracker, store)


register_estimator("paper", lambda specs, tracker, ctx: PaperEstimator(specs, tracker))
register_estimator("dne", lambda specs, tracker, ctx: DriverNodeEstimator(specs, tracker))
register_estimator("tgn", lambda specs, tracker, ctx: TotalGetNextEstimator(specs, tracker))
register_estimator("history", _make_history)


__all__ = [
    "INPUT_SOURCES",
    "REFINE_MODES",
    "DEFAULT_ESTIMATOR",
    "ENSEMBLE",
    "CandidateEstimate",
    "EstimateSnapshot",
    "Estimator",
    "EstimatorContext",
    "EstimatorFactory",
    "InputEstimate",
    "SegmentEstimate",
    "RefinementEstimator",
    "PaperEstimator",
    "DriverNodeEstimator",
    "TotalGetNextEstimator",
    "HistoryEstimator",
    "HistoryStore",
    "EnsembleEstimator",
    "register_estimator",
    "estimator_names",
    "make_estimator",
    "estimator_for_refine_mode",
]
