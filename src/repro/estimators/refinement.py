"""The §4.3/§4.5 refinement core and its three blend-rule estimators.

For every segment the refinement pass combines:

* **Base-input refinement** (Section 4.3): keep the optimizer's Ne until
  the scan finishes (then the exact Np is known) or until the actual
  number of tuples read exceeds Ne (then use the running count).
* **Output-cardinality refinement** (Section 4.5): with dominant-input
  fraction ``p``, observed outputs ``y``, and the optimizer's (re-invoked)
  estimate ``E1``, blend them into the segment's estimate E.  *Which*
  blend is the one thing the concrete subclasses disagree about:

  ===============  =====================================================
  estimator        blend rule
  ===============  =====================================================
  ``paper``        ``E = p*E2 + (1-p)*E1`` with ``E2 = y/p`` — i.e.
                   ``E = y + (1-p)*E1`` (the paper's Section 4.5)
  ``dne``          ``E = y/p`` — pure driver-node extrapolation, the
                   DNE spirit of König et al.'s robust-estimation
                   portfolio (PAPERS.md); jumpy early, sharp late
  ``tgn``          ``E = max(E1, y)`` — optimizer-anchored: never
                   extrapolate from observed outputs (TGN spirit);
                   smooth, but blind to wrong selectivities
  ===============  =====================================================

* **Upward propagation**: a future segment's E1 is recomputed from its
  inputs' *current* refined estimates via the multiplicative factor the
  optimizer recorded at plan time (its cost-estimation module,
  re-invoked).  The :meth:`RefinementEstimator._correct_e1` hook lets
  :class:`~repro.estimators.history.HistoryEstimator` scale this E1 by a
  learned per-plan-signature correction factor.
* **Exact accounting** for finished segments.

Everything is recomputed from the tracker's counters on demand — the
estimator itself is stateless between snapshots, which keeps it trivially
consistent with whatever the executor has done so far.  The ``paper``
subclass is bit-identical to the pre-redesign ``core.refine`` path (the
property suite pins this across the tier-1 grid on both engines).
"""

from __future__ import annotations

from typing import Optional

from repro.core.segments import SegmentSpec
from repro.estimators.base import (
    Estimator,
    EstimateSnapshot,
    InputEstimate,
    SegmentEstimate,
)
from repro.executor.work import SegmentCounters

#: Output-cardinality refinement modes (the A2 ablation knob of
#: ``ProgressConfig.refine_mode``), mapped onto estimators by
#: :data:`_REFINE_MODE_ESTIMATORS` below: "paper" is the blended rule,
#: "optimizer" never extrapolates (the "tgn" estimator), "extrapolate"
#: uses raw y/p (the "dne" estimator).
REFINE_MODES = ("paper", "optimizer", "extrapolate")


class RefinementEstimator(Estimator):
    """Shared refinement machinery; subclasses choose the blend rule."""

    def snapshot(self) -> EstimateSnapshot:
        """Run one refinement pass (Section 4.5's refining procedure)."""
        estimates: list[SegmentEstimate] = []
        # Producers close before consumers, so ids are topologically ordered
        # and each child's estimate exists before its consumers need it.
        for spec in self._specs:
            estimates.append(self._estimate_segment(spec, estimates))
        total = sum(e.est_cost_bytes for e in estimates)
        return EstimateSnapshot(
            segments=estimates,
            est_total_bytes=total,
            done_bytes=self._tracker.total_done_bytes,
            current_segment=self._tracker.current_segment(),
        )

    # ------------------------------------------------------------------
    # the two strategy hooks

    def _blend(self, y: float, p: float, e1: float) -> float:
        """Blend observed outputs ``y`` at progress ``p`` with E1."""
        raise NotImplementedError

    def _correct_e1(self, spec: SegmentSpec, e1: float) -> float:
        """Optionally rescale the re-invoked optimizer estimate."""
        return e1

    # ------------------------------------------------------------------

    def _estimate_segment(
        self, spec: SegmentSpec, done: list[SegmentEstimate]
    ) -> SegmentEstimate:
        counters = self._tracker.segments[spec.id]
        inputs = [
            self._estimate_input(spec, i, counters, done)
            for i in range(len(spec.inputs))
        ]

        if counters.finished:
            width = counters.avg_output_width()
            if width is None:
                width = spec.est_output_width
            exact = float(counters.output_rows)
            return SegmentEstimate(
                spec=spec,
                status="finished",
                inputs=inputs,
                p=1.0,
                est_output_rows=exact,
                est_output_width=width,
                est_cost_bytes=counters.done_bytes,
                done_bytes=counters.done_bytes,
                e1=exact,
                e2=exact,
                dominant_input=None,
            )

        # E1: the optimizer's estimate, re-invoked with refined input
        # cardinalities (upward propagation of Section 4.5).
        e1 = spec.card_factor
        for inp in inputs:
            e1 *= max(inp.est_rows, 1e-9)
        e1 = self._correct_e1(spec, e1)

        status = "running" if counters.started else "pending"
        dominants = [inp for inp in inputs if inp.dominant]
        dominant_input: Optional[int] = None
        if counters.started and dominants:
            # Two dominant inputs (sort-merge): the faster-consumed side
            # decides p (Section 4.5, citing the LEO-style rule).
            deciding = max(dominants, key=lambda inp: inp.progress)
            p = deciding.progress
            if p > 0:
                dominant_input = deciding.index
        else:
            p = 0.0

        y = float(counters.output_rows)
        estimate = self._blend(y, p, e1)
        width = counters.avg_output_width()
        if width is None:
            width = spec.est_output_width

        cost = sum(inp.est_bytes for inp in inputs) + spec.est_extra_bytes
        if not spec.final:
            cost += estimate * width
        # A running segment can never cost less than what it already did.
        cost = max(cost, counters.done_bytes)

        return SegmentEstimate(
            spec=spec,
            status=status,
            inputs=inputs,
            p=p,
            est_output_rows=estimate,
            est_output_width=width,
            est_cost_bytes=cost,
            done_bytes=counters.done_bytes,
            e1=e1,
            e2=(y / p) if p > 0 else None,
            dominant_input=dominant_input,
        )

    def _estimate_input(
        self,
        spec: SegmentSpec,
        index: int,
        counters: SegmentCounters,
        done: list[SegmentEstimate],
    ) -> InputEstimate:
        meta = spec.inputs[index]
        rows_read = counters.input_rows[index]
        bytes_read = counters.input_bytes[index]

        if meta.kind == "base":
            # Section 4.3: Ne until the scan finishes or overruns it.
            if counters.finished:
                est_rows = float(rows_read)
                source = "exact"
            elif float(rows_read) > float(meta.est_rows):
                est_rows = float(rows_read)
                source = "overrun"
            else:
                est_rows = float(meta.est_rows)
                source = "ne"
            if rows_read > 0:
                est_width = bytes_read / rows_read
            else:
                est_width = meta.est_width
        else:
            assert meta.child_segment is not None
            child = done[meta.child_segment]
            source = "child_final" if child.status == "finished" else "child"
            # Propagated (possibly still-moving) child estimate.
            est_rows = child.est_output_rows
            est_width = child.est_output_width
            est_rows = max(est_rows, float(rows_read))
            if rows_read > 0 and child.status == "finished":
                # Trust observed input width once we are actually reading.
                est_width = bytes_read / rows_read if rows_read else est_width

        return InputEstimate(
            index=index,
            label=meta.label,
            rows_read=rows_read,
            bytes_read=bytes_read,
            est_rows=est_rows,
            est_width=est_width,
            dominant=meta.dominant,
            source=source,
        )


class PaperEstimator(RefinementEstimator):
    """The paper's Section 4.5 blend: ``E = p*E2 + (1-p)*E1``."""

    name = "paper"

    def _blend(self, y: float, p: float, e1: float) -> float:
        return y + (1.0 - p) * e1  # == p*E2 + (1-p)*E1 with E2 = y/p


class DriverNodeEstimator(RefinementEstimator):
    """Pure driver-node extrapolation (DNE): ``E = y/p``, no smoothing."""

    name = "dne"

    def _blend(self, y: float, p: float, e1: float) -> float:
        return y / p if p > 0 else e1


class TotalGetNextEstimator(RefinementEstimator):
    """Optimizer-anchored (TGN): never extrapolate from observed outputs."""

    name = "tgn"

    def _blend(self, y: float, p: float, e1: float) -> float:
        return max(e1, y)


#: ``ProgressConfig.refine_mode`` ablation value -> estimator name.  The
#: legacy modes are exactly the non-paper blend rules, so the old knob
#: keeps working bit-identically on top of the new interface.
_REFINE_MODE_ESTIMATORS = {
    "paper": "paper",
    "optimizer": "tgn",
    "extrapolate": "dne",
}


def estimator_for_refine_mode(refine_mode: str) -> str:
    """Map the legacy ``refine_mode`` ablation knob to an estimator name."""
    try:
        return _REFINE_MODE_ESTIMATORS[refine_mode]
    except KeyError:
        raise ValueError(f"unknown refine mode {refine_mode!r}") from None
