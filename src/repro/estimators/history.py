"""History-learned cardinality corrections (Ivanov & Bartunov spirit).

The optimizer's initial estimate E1 is wrong in systematic, *repeatable*
ways — the paper's Figures 9/13/17/18 all hinge on a default selectivity
guess that every execution of the query disproves again.  "Adaptive
Cardinality Estimation" (PAPERS.md) closes that loop: remember, per plan
fragment, the ratio between the actual output cardinality and the
optimizer's estimate, and scale the next execution's estimate by the
learned ratio.

:class:`HistoryStore` is that memory.  Keys are structural *plan
signatures* — the segment's label plus its inputs' (kind, label) pairs —
so a correction learned for ``hash_join(lineitem, orders)`` applies to
the same fragment in later queries but never leaks to unrelated shapes.
Values are running products of log-ratios; :meth:`HistoryStore.correction`
returns their geometric mean, clamped to ``[MIN_CORRECTION,
MAX_CORRECTION]`` so one pathological run cannot poison the estimate.

:class:`HistoryEstimator` is the paper blend plus the learned E1 scaling
(the :meth:`~repro.estimators.refinement.RefinementEstimator._correct_e1`
hook).  With an empty store it is exactly the paper estimator; the store
fills in via :meth:`HistoryEstimator.on_finish`, which the indicator
invokes once per *successfully finished* monitored query.

The store is plain in-process state, deliberately not module-global:
each :class:`repro.database.Database` owns one (surviving ``restart()``,
like a real system's query store), so runs are deterministic per
database lifetime and independent across databases — the leaderboard's
byte-identical-rerun property depends on that scoping.
"""

from __future__ import annotations

import math

from repro.core.segments import SegmentSpec
from repro.estimators.refinement import PaperEstimator

#: Clamp bounds for the learned multiplicative correction.
MIN_CORRECTION = 0.1
MAX_CORRECTION = 10.0

#: Ignore near-degenerate observations (an actual or estimated
#: cardinality this small carries no usable selectivity signal).
_MIN_OBSERVED_ROWS = 1.0

#: A structural plan-fragment signature: the segment's label plus its
#: inputs' (kind, label) pairs.
Signature = tuple[str, tuple[tuple[str, str], ...]]


def signature_of(spec: SegmentSpec) -> Signature:
    """The history key of one segment (stable across executions)."""
    return (spec.label, tuple((i.kind, i.label) for i in spec.inputs))


class HistoryStore:
    """Per-signature actual/estimated cardinality ratios, geometric mean."""

    def __init__(self) -> None:
        #: signature -> (sum of log-ratios, observation count).
        self._log_ratios: dict[Signature, tuple[float, int]] = {}

    def observe(self, signature: Signature, estimated: float, actual: float) -> None:
        """Record one finished fragment's estimated vs. actual cardinality."""
        if estimated < _MIN_OBSERVED_ROWS or actual < _MIN_OBSERVED_ROWS:
            return
        log_sum, count = self._log_ratios.get(signature, (0.0, 0))
        self._log_ratios[signature] = (
            log_sum + math.log(actual / estimated),
            count + 1,
        )

    def correction(self, signature: Signature) -> float:
        """The learned multiplicative correction (1.0 when unseen)."""
        entry = self._log_ratios.get(signature)
        if entry is None:
            return 1.0
        log_sum, count = entry
        factor = math.exp(log_sum / count)
        return min(MAX_CORRECTION, max(MIN_CORRECTION, factor))

    def observations(self, signature: Signature) -> int:
        """How many finished fragments fed this signature."""
        entry = self._log_ratios.get(signature)
        return 0 if entry is None else entry[1]

    def __len__(self) -> int:
        return len(self._log_ratios)


class HistoryEstimator(PaperEstimator):
    """Paper blend with history-learned E1 correction factors."""

    name = "history"

    def __init__(self, specs, tracker, store: HistoryStore) -> None:  # type: ignore[no-untyped-def]
        super().__init__(specs, tracker)
        self._store = store
        #: Corrections are resolved once per query from the store's state
        #: at bind time: a mid-flight store update (another query in the
        #: same session finishing) must not make this query's estimate
        #: jump for reasons its own counters cannot explain.
        self._corrections = {
            spec.id: store.correction(signature_of(spec)) for spec in specs
        }

    @property
    def store(self) -> HistoryStore:
        return self._store

    def _correct_e1(self, spec: SegmentSpec, e1: float) -> float:
        return e1 * self._corrections[spec.id]

    def on_finish(self) -> None:
        """Feed the finished run's exact cardinalities back to the store.

        Uses the *optimizer's plan-time* estimate as the denominator (not
        this run's corrected one), so the stored ratio stays an unbiased
        measurement of the optimizer's error and repeated executions
        converge instead of compounding their own corrections.
        """
        for spec in self._specs:
            counters = self._tracker.segments[spec.id]
            if not counters.finished:
                continue
            self._store.observe(
                signature_of(spec),
                estimated=float(spec.est_output_rows),
                actual=float(counters.output_rows),
            )
