"""The online selector: back-test every candidate, report the best one.

König et al., "A Statistical Approach Towards Robust Progress
Estimation" (PAPERS.md), make the case that no single estimator wins
everywhere — a portfolio with per-query selection beats each member.
:class:`EnsembleEstimator` is that portfolio over this repo's registered
candidates (paper, dne, tgn, history, plus anything user-registered).

**Scoring rule** (documented contract — ``docs/estimators.md``): the
selector back-tests candidates against *observed* progress, the only
ground truth available mid-flight.  At every refinement tick it records
each candidate's current output-cardinality prediction for every
unfinished segment.  When a segment finishes, its exact cardinality is
known, and each candidate is charged the absolute log-error of its last
pre-finish prediction::

    penalty += | ln( max(predicted, 1) / max(actual, 1) ) |

Accumulated penalties order the candidates; the selector reports the
snapshot of the lowest-penalty candidate, breaking ties by registration
order (the paper baseline first, so an evidence-free selector *is* the
paper estimator).  To avoid flapping on noise, switching away from the
current choice requires a cumulative advantage of at least
:data:`SWITCH_MARGIN` (ln 2 — the challenger's surviving predictions
must be a factor-two better overall).

**Monotonicity**: switching estimators mid-run can lower the displayed
completed fraction (the new choice may carry a larger total estimate).
The selector therefore clamps its reported total so ``fraction_done``
never decreases: the fraction floor is the maximum fraction it has ever
reported, and the reported total is capped at ``done / floor``.  Only
the *selected, reported* totals are clamped — the per-candidate streams
traced as ``candidate_estimated`` events stay raw, so the observatory
scores each candidate on its own merits.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional

from repro.estimators.base import CandidateEstimate, Estimator, EstimateSnapshot

#: Cumulative back-test advantage (in |log-ratio| units) a challenger
#: needs before the selector abandons the incumbent: ln 2.
SWITCH_MARGIN = 0.6931471805599453

#: Floor applied to both operands of the back-test log-ratio.
_PENALTY_FLOOR_ROWS = 1.0


class EnsembleEstimator(Estimator):
    """Score all registered candidates online; report the best one."""

    name = "ensemble"

    def __init__(self, specs, tracker, candidates: list[Estimator]) -> None:  # type: ignore[no-untyped-def]
        super().__init__(specs, tracker)
        if not candidates:
            raise ValueError("ensemble needs at least one candidate estimator")
        self._candidates = candidates
        self._selected = candidates[0]
        #: Accumulated back-test penalty per candidate name.
        self.scores: dict[str, float] = {c.name: 0.0 for c in candidates}
        #: seg id -> candidate name -> last pre-finish prediction.
        self._pending: dict[int, dict[str, float]] = {}
        self._scored_segments: set[int] = set()
        #: Monotone display floor for the reported fraction.
        self._fraction_floor = 0.0
        self._last_candidates: tuple[CandidateEstimate, ...] = ()

    # ------------------------------------------------------------------

    @property
    def candidates(self) -> list[Estimator]:
        return self._candidates

    @property
    def selected_name(self) -> str:
        return self._selected.name

    @property
    def provenance(self) -> str:
        return f"{self.name}:{self._selected.name}"

    def candidate_estimates(self) -> tuple[CandidateEstimate, ...]:
        return self._last_candidates

    # ------------------------------------------------------------------

    def snapshot(self) -> EstimateSnapshot:
        """One selector tick: snapshot all, back-test, pick, clamp."""
        snapshots = [(c, c.snapshot()) for c in self._candidates]
        self._backtest(snapshots)
        self._select()
        chosen = next(s for c, s in snapshots if c is self._selected)
        reported = self._clamp_monotone(chosen)
        self._last_candidates = tuple(
            CandidateEstimate(
                name=c.name,
                est_total_bytes=s.est_total_bytes,
                done_bytes=s.done_bytes,
                fraction_done=s.fraction_done,
                score=self.scores[c.name],
                selected=c is self._selected,
            )
            for c, s in snapshots
        )
        return reported

    def on_finish(self) -> None:
        for candidate in self._candidates:
            candidate.on_finish()

    # ------------------------------------------------------------------

    def _backtest(
        self, snapshots: list[tuple[Estimator, EstimateSnapshot]]
    ) -> None:
        """Settle finished segments, then record fresh predictions."""
        _, reference = snapshots[0]
        for index, est in enumerate(reference.segments):
            seg_id = est.spec.id
            if est.status == "finished":
                if seg_id in self._scored_segments:
                    continue
                self._scored_segments.add(seg_id)
                predictions = self._pending.pop(seg_id, None)
                if predictions is None:
                    continue  # finished between ticks: nobody predicted it
                actual = max(est.est_output_rows, _PENALTY_FLOOR_ROWS)
                for candidate, _snap in snapshots:
                    predicted = predictions.get(candidate.name)
                    if predicted is None:
                        continue
                    predicted = max(predicted, _PENALTY_FLOOR_ROWS)
                    self.scores[candidate.name] += abs(
                        math.log(predicted / actual)
                    )
            else:
                self._pending[seg_id] = {
                    candidate.name: snap.segments[index].est_output_rows
                    for candidate, snap in snapshots
                }

    def _select(self) -> None:
        """Lowest accumulated penalty wins; incumbents keep ties."""
        best = min(
            self._candidates, key=lambda c: self.scores[c.name]
        )  # ties -> earliest registered (the paper baseline)
        if best is self._selected:
            return
        if self.scores[self._selected.name] - self.scores[best.name] > SWITCH_MARGIN:
            self._selected = best

    def _clamp_monotone(self, snapshot: EstimateSnapshot) -> EstimateSnapshot:
        """Cap the reported total so fraction_done never decreases."""
        done = snapshot.done_bytes
        total = snapshot.est_total_bytes
        floor = self._fraction_floor
        clamped: Optional[float] = None
        if done > 0 and floor > 0 and total > 0 and done / total < floor:
            clamped = max(done, done / floor)
        if clamped is not None:
            snapshot = replace(snapshot, est_total_bytes=clamped)
        self._fraction_floor = max(self._fraction_floor, snapshot.fraction_done)
        return snapshot
