"""The pluggable estimation surface: snapshot dataclasses + the protocol.

An :class:`Estimator` observes one query's execution *passively*: it is
bound to the plan's segment specs and the executor's
:class:`~repro.executor.work.WorkTracker`, and on demand (each
refinement tick, and any on-demand ``report()``) recomputes an
:class:`EstimateSnapshot` of the whole query from the counters.  It never
touches executor state and charges no virtual time — estimation must not
change what it measures (the paper's Section 3 "minimal overhead" goal,
and the precondition for the bit-identity contracts the property tests
pin: swapping estimators never changes results, U totals, or timing).

The snapshot dataclasses (:class:`InputEstimate`,
:class:`SegmentEstimate`, :class:`EstimateSnapshot`) moved here from
``repro.core.refine``; that module remains as a deprecated re-exporting
shim (lint rule REPRO010 bans new imports of it).

Concrete estimators live next door:

* :mod:`repro.estimators.refinement` — the shared §4.3/§4.5 refinement
  core and the "paper" / "dne" / "tgn" blend rules;
* :mod:`repro.estimators.history` — history-learned correction factors;
* :mod:`repro.estimators.ensemble` — the online selector over all of the
  registered candidates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.core.segments import SegmentSpec
from repro.executor.work import WorkTracker

#: Provenance values for :attr:`InputEstimate.source` (§4.3 / §4.5):
#: base inputs move "ne" -> "overrun" -> "exact"; child inputs are
#: "child" (propagated moving estimate) or "child_final" (producer done).
INPUT_SOURCES = ("ne", "overrun", "exact", "child", "child_final")


@dataclass
class InputEstimate:
    """Refined view of one segment input."""

    index: int
    label: str
    rows_read: int
    bytes_read: float
    est_rows: float
    est_width: float
    dominant: bool
    #: Where ``est_rows`` comes from right now (one of INPUT_SOURCES).
    source: str = "ne"

    @property
    def est_bytes(self) -> float:
        return self.est_rows * self.est_width

    @property
    def progress(self) -> float:
        """Fraction of this input processed so far (q of Section 4.5)."""
        if self.est_rows <= 0:
            return 1.0
        return min(1.0, self.rows_read / self.est_rows)


@dataclass
class SegmentEstimate:
    """Refined view of one segment."""

    spec: SegmentSpec
    status: str  # "pending" | "running" | "finished"
    inputs: list[InputEstimate]
    #: Dominant-input fraction p (0 for pending, 1 for finished).
    p: float
    #: Current output-cardinality estimate E (exact when finished).
    est_output_rows: float
    est_output_width: float
    #: Current total cost estimate of this segment, in bytes.
    est_cost_bytes: float
    done_bytes: float
    #: The optimizer's re-invoked estimate E1 (upward propagation).
    e1: float = 0.0
    #: The pure extrapolation E2 = y/p; None while p == 0.
    e2: Optional[float] = None
    #: Index of the input currently deciding p (the arg-max progress
    #: among dominant inputs), or None before any progress / when done.
    dominant_input: Optional[int] = None

    @property
    def remaining_bytes(self) -> float:
        return max(0.0, self.est_cost_bytes - self.done_bytes)


@dataclass
class EstimateSnapshot:
    """A full refinement pass at one instant."""

    segments: list[SegmentEstimate]
    est_total_bytes: float
    done_bytes: float
    current_segment: Optional[int]

    @property
    def remaining_bytes(self) -> float:
        return max(0.0, self.est_total_bytes - self.done_bytes)

    @property
    def fraction_done(self) -> float:
        if self.est_total_bytes <= 0:
            return 1.0
        return min(1.0, self.done_bytes / self.est_total_bytes)

    def pages(self, page_size: int) -> tuple[float, float, float]:
        """(done, total, remaining) in U (pages)."""
        return (
            self.done_bytes / page_size,
            self.est_total_bytes / page_size,
            self.remaining_bytes / page_size,
        )

    def remaining_seconds(
        self, page_size: int, speed_pages_per_sec: Optional[float]
    ) -> Optional[float]:
        """Remaining-time surface: estimated seconds of work left.

        The one conversion every consumer of an estimate shares — the
        indicator's reports and the service's admission/shedding control
        loop both divide remaining U by the observed speed.  ``None``
        when no usable speed exists yet (warmup, or a stalled query):
        control layers must treat "no estimate" as "take no action", not
        as zero.
        """
        if speed_pages_per_sec is None or speed_pages_per_sec <= 0:
            return None
        return (self.remaining_bytes / page_size) / speed_pages_per_sec


@dataclass(frozen=True)
class CandidateEstimate:
    """One registered candidate's totals at a selector tick.

    Only ensemble estimators produce these (plain estimators report an
    empty tuple from :meth:`Estimator.candidate_estimates`); the
    indicator forwards them onto the TraceBus as ``candidate_estimated``
    events so the observatory can replay and score *every* candidate
    from one sealed trace, not just the stream the selector displayed.
    """

    name: str
    est_total_bytes: float
    done_bytes: float
    fraction_done: float
    #: The selector's accumulated backtest penalty (lower is better).
    score: float
    #: Whether this candidate's snapshot is the one being reported.
    selected: bool


class Estimator(abc.ABC):
    """One progress-estimation strategy bound to a running query.

    Subclasses set the class attribute :attr:`name` (the registry key and
    the provenance string on reports/trace events) and implement
    :meth:`snapshot`.  The constructor signature is part of the registry
    contract: ``(specs, tracker)`` plus whatever keyword-only knobs the
    factory in :mod:`repro.estimators` threads through.
    """

    #: Registry key; overridden per subclass.
    name = "abstract"

    def __init__(self, specs: list[SegmentSpec], tracker: WorkTracker) -> None:
        self._specs = specs
        self._tracker = tracker

    @property
    def specs(self) -> list[SegmentSpec]:
        return self._specs

    @property
    def tracker(self) -> WorkTracker:
        return self._tracker

    @abc.abstractmethod
    def snapshot(self) -> EstimateSnapshot:
        """Recompute the full query estimate from the current counters."""

    @property
    def provenance(self) -> str:
        """What to stamp on reports (selectors append their choice)."""
        return self.name

    def candidate_estimates(self) -> tuple[CandidateEstimate, ...]:
        """Per-candidate totals of the last snapshot (selectors only)."""
        return ()

    def on_finish(self) -> None:
        """Hook called once when the monitored query completes normally.

        History-learning estimators override this to feed the finished
        run's exact cardinalities back into their store.  Called behind
        the indicator's degrade boundary — a failure here cannot hurt the
        query — and *not* called for cancelled/timed-out/failed runs
        (their counters are not ground truth).
        """
