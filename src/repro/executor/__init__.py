"""Volcano-style iterator executor over the simulated storage engine.

Operators charge the virtual clock for every page I/O and per-tuple CPU
action, and — when a progress indicator is attached — report tuple/byte
counts at segment boundaries through a :class:`~repro.executor.work.WorkTracker`.
Statistics collection is embedded in the operator code behind the tracker
reference (the per-plan flag of the paper's Section 4.4): executing with
``tracker=None`` is the unmonitored fast path used to measure indicator
overhead.
"""

from repro.executor.base import ExecContext, Operator, build_operator
from repro.executor.runtime import QueryResult, execute, run_query
from repro.executor.work import SegmentCounters, WorkTracker

__all__ = [
    "ExecContext",
    "Operator",
    "build_operator",
    "WorkTracker",
    "SegmentCounters",
    "execute",
    "run_query",
    "QueryResult",
]
