"""Executor plumbing: execution context and the operator factory."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover - obs is imported lazily at emit time
    from repro.obs.bus import TraceBus

from repro.config import SystemConfig
from repro.errors import ExecutionError
from repro.executor.work import WorkTracker
from repro.planner.physical import (
    DistinctNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    MergeJoinNode,
    NestLoopNode,
    PhysicalNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
)
from repro.sim.clock import VirtualClock
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


class _WorkPulse:
    """The cooperative-scheduling marker operators interleave with rows.

    Operators yield :data:`PULSE` at bounded-work boundaries (a heap page
    scanned, a sort chunk compared, a spill partition page re-read) in
    addition to their output rows.  A pulse carries no data and charges no
    virtual time; it only returns control to whoever drives the iteration,
    which is what lets :mod:`repro.sched` slice many in-flight queries on
    one clock.  Single-query drivers simply skip pulses.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PULSE"


#: The singleton work pulse.  Compare with ``is``: ``item is PULSE``.
PULSE = _WorkPulse()


def pull(source: Iterator):
    """Advance ``source`` to its next *row*, forwarding pulses upstream.

    A ``yield from``-able helper for operators that drive a child with
    explicit ``next()`` calls (merge join)::

        row = yield from pull(child_rows)

    Returns the next non-pulse item, or ``None`` when the child is
    exhausted (rows are tuples, never ``None``).
    """
    for item in source:
        if item is PULSE:
            yield PULSE
        else:
            return item
    return None


class PulseProbe(Protocol):
    """Observer of operator construction and pulse propagation.

    Implemented by :mod:`repro.analysis.flow.crosscheck`; the executor
    only duck-types against it (no analysis import on the hot path).
    """

    def on_build(self, op: "Operator") -> None:
        """One operator was built (called innermost-first)."""

    def on_pulse(self, op: "Operator") -> None:
        """A PULSE emerged from ``op``'s row stream."""


class ExecContext:
    """Everything an operator needs at run time."""

    def __init__(
        self,
        clock: VirtualClock,
        disk: SimulatedDisk,
        buffer_pool: BufferPool,
        config: SystemConfig,
        tracker: Optional[WorkTracker] = None,
        count_rows: bool = False,
        trace: Optional["TraceBus"] = None,
        pulse_probe: Optional[PulseProbe] = None,
    ):
        self.clock = clock
        self.disk = disk
        self.buffer_pool = buffer_pool
        self.config = config
        #: None disables all progress accounting (the unmonitored fast path).
        self.tracker = tracker
        #: Optional repro.obs.TraceBus; None is the zero-cost disabled path.
        self.trace = trace
        self.work_mem_bytes = config.work_mem_pages * config.page_size
        #: EXPLAIN ANALYZE support: when True, every operator's emitted-row
        #: count is recorded in ``actual_rows`` keyed by plan-node identity.
        self.count_rows = count_rows
        self.actual_rows: dict[int, int] = {}
        #: Optional pulse-propagation observer (the static/dynamic
        #: cross-check); None is the zero-cost disabled path.
        self.pulse_probe = pulse_probe


class Operator:
    """Base class: an operator is an iterable of output rows.

    ``rows()`` returns a generator; iterating it *is* execution.  The
    stream interleaves output rows with :data:`PULSE` markers (yielded at
    bounded-work boundaries and forwarded transparently by parents) so a
    driver can suspend execution mid-plan.  Operators own their children
    and any temp files they spill; ``close()`` releases resources (the
    driver calls it once iteration ends or is abandoned).
    """

    def __init__(self, node: PhysicalNode, ctx: ExecContext):
        self.node = node
        self.ctx = ctx

    def rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    def close(self) -> None:
        """Release temp resources; default is a no-op."""


class _PulseProbeOperator(Operator):
    """Cross-check wrapper: reports pulse sightings to the probe.

    Wrapped innermost (directly around each real operator, inside any
    counting wrapper), so for one pulse propagating to the driver the
    originating operator's wrapper reports first and every enclosing
    wrapper after it — the ordering the probe's origin attribution
    relies on.
    """

    def __init__(self, inner: Operator, ctx: ExecContext):
        super().__init__(inner.node, ctx)
        self._inner = inner
        assert ctx.pulse_probe is not None
        ctx.pulse_probe.on_build(inner)

    def rows(self) -> Iterator[tuple]:
        probe = self.ctx.pulse_probe
        assert probe is not None
        for item in self._inner.rows():
            if item is PULSE:
                probe.on_pulse(self._inner)
            yield item

    def close(self) -> None:
        self._inner.close()


class _CountingOperator(Operator):
    """EXPLAIN ANALYZE wrapper: counts rows an operator emits."""

    def __init__(self, inner: Operator, ctx: ExecContext):
        super().__init__(inner.node, ctx)
        self._inner = inner
        ctx.actual_rows.setdefault(id(inner.node), 0)

    def rows(self) -> Iterator[tuple]:
        counters = self.ctx.actual_rows
        key = id(self._inner.node)
        for row in self._inner.rows():
            if row is PULSE:
                yield row
                continue
            counters[key] += 1
            yield row

    def close(self) -> None:
        self._inner.close()


def build_operator(node: PhysicalNode, ctx: ExecContext) -> Operator:
    """Instantiate the operator tree for a physical plan subtree."""
    # Imports here avoid a circular dependency between operator modules
    # and this factory.
    from repro.executor.aggregate import FilterOp, HashAggregateOp
    from repro.executor.filter_project import DistinctOp, LimitOp, ProjectOp
    from repro.executor.hash_join import HashJoinOp
    from repro.executor.merge_join import MergeJoinOp
    from repro.executor.nl_join import NestLoopOp
    from repro.executor.scans import IndexScanOp, SeqScanOp
    from repro.executor.sort import SortOp

    op = None
    if isinstance(node, HashAggregateNode):
        op = HashAggregateOp(node, ctx)
    elif isinstance(node, DistinctNode):
        op = DistinctOp(node, ctx)
    elif isinstance(node, FilterNode):
        op = FilterOp(node, ctx)
    elif isinstance(node, SeqScanNode):
        op = SeqScanOp(node, ctx)
    elif isinstance(node, IndexScanNode):
        op = IndexScanOp(node, ctx)
    elif isinstance(node, HashJoinNode):
        op = HashJoinOp(node, ctx)
    elif isinstance(node, NestLoopNode):
        op = NestLoopOp(node, ctx)
    elif isinstance(node, MergeJoinNode):
        op = MergeJoinOp(node, ctx)
    elif isinstance(node, SortNode):
        op = SortOp(node, ctx)
    elif isinstance(node, ProjectNode):
        op = ProjectOp(node, ctx)
    if op is None and isinstance(node, LimitNode):
        op = LimitOp(node, ctx)
    if op is None:
        raise ExecutionError(f"no operator for plan node {type(node).__name__}")
    if ctx.pulse_probe is not None:
        op = _PulseProbeOperator(op, ctx)
    return _CountingOperator(op, ctx) if ctx.count_rows else op
