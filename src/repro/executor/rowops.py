"""Row-level helpers shared by join/sort operators: combining child rows,
computing actual stored widths, and building slot layouts."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.planner.physical import PlanColumn
from repro.storage.schema import TUPLE_HEADER_BYTES
from repro.storage.types import StringType


def layout_of(columns: Sequence[PlanColumn]) -> dict[tuple[int, int], int]:
    """Coordinate -> slot mapping for rows shaped like ``columns``."""
    return {col.coordinate: i for i, col in enumerate(columns)}


def row_width_fn(columns: Sequence[PlanColumn]) -> Callable[[tuple], float]:
    """Return a fast ``row -> stored width in bytes`` function.

    Width is exact per row: fixed-type widths are folded into a constant
    and only string slots are inspected, so the per-tuple cost stays low.
    """
    fixed = float(TUPLE_HEADER_BYTES)
    var_slots: list[int] = []
    for i, col in enumerate(columns):
        if isinstance(col.type, StringType):
            var_slots.append(i)
        else:
            fixed += col.type.width(None)

    if not var_slots:
        return lambda row: fixed

    def width(row: tuple) -> float:
        w = fixed
        for i in var_slots:
            v = row[i]
            w += 1.0 if v is None else 1.0 + len(v)
        return w

    return width


def combiner(
    left_columns: Sequence[PlanColumn],
    right_columns: Sequence[PlanColumn],
    out_columns: Sequence[PlanColumn],
) -> Callable[[tuple, tuple], tuple]:
    """Build ``(left_row, right_row) -> output_row`` for a join.

    The output picks each column from whichever side produced it, in
    ``out_columns`` order (the optimizer prunes columns nobody needs).
    """
    left_slots = layout_of(left_columns)
    right_slots = layout_of(right_columns)
    plan: list[tuple[bool, int]] = []
    for col in out_columns:
        if col.coordinate in left_slots:
            plan.append((True, left_slots[col.coordinate]))
        else:
            plan.append((False, right_slots[col.coordinate]))

    def combine(left_row: tuple, right_row: tuple) -> tuple:
        return tuple(
            left_row[i] if from_left else right_row[i] for from_left, i in plan
        )

    return combine


def concat_layout(
    left_columns: Sequence[PlanColumn], right_columns: Sequence[PlanColumn]
) -> dict[tuple[int, int], int]:
    """Layout of ``left_row + right_row`` concatenations (for join filters)."""
    layout = layout_of(left_columns)
    offset = len(left_columns)
    for i, col in enumerate(right_columns):
        layout[col.coordinate] = offset + i
    return layout
