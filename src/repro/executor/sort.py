"""External sort: blocking run generation, streaming merge.

Matches the paper's segment model (Figure 3): run formation ends a segment
(segments S3/S4 "sort the results into multiple sorted runs"), while the
merge is performed by the *consuming* segment, which reads the runs as its
inputs (segment S5 "computes a sort-merge join using RAB and RC").

The tracker wiring mirrors that: rows absorbed into runs count as this
sort's segment output; rows read back during the merge count as input of
the consumer segment (``pi_merge_input_ref``).
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from repro.executor.base import PULSE, ExecContext, Operator, build_operator
from repro.executor.rowops import row_width_fn
from repro.planner.physical import SortNode
from repro.sim.load import CPU
from repro.storage.heap import HeapFile
from repro.storage.schema import Column, Schema

#: Charge sort-comparison CPU in slices of this many comparisons so the
#: clock's tickers can fire during large sorts.
_CPU_CHUNK = 50_000

#: Yield a scheduling PULSE every this many merged/streamed rows (the
#: merge phase reads spilled pages inside ``heapq.merge``, which cannot
#: forward pulses itself).
_MERGE_PULSE_ROWS = 256


class _KeyPart:
    """One sort-key component with NULLS LAST and optional descending order."""

    __slots__ = ("is_null", "value", "descending")

    def __init__(self, value, descending: bool):
        self.is_null = value is None
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_KeyPart") -> bool:
        if self.is_null != other.is_null:
            return other.is_null  # non-null sorts before null
        if self.is_null:
            return False
        if self.descending:
            return other.value < self.value
        return self.value < other.value

    def __eq__(self, other) -> bool:
        return self.is_null == other.is_null and self.value == other.value


def make_sort_key(node: SortNode):
    """Build a ``row -> sortable key`` function from the node's keys."""
    layout = {c.coordinate: i for i, c in enumerate(node.columns)}
    parts = [(layout[coord], asc) for coord, asc in node.keys]
    if len(parts) == 1 and parts[0][1]:
        slot = parts[0][0]
        return lambda row: _KeyPart(row[slot], False)
    return lambda row: tuple(
        _KeyPart(row[slot], not asc) for slot, asc in parts
    )


class SortOp(Operator):
    def __init__(self, node: SortNode, ctx: ExecContext):
        super().__init__(node, ctx)
        self._child = build_operator(node.child, ctx)
        self._key = make_sort_key(node)
        self._width = row_width_fn(node.columns)
        self._runs: list[HeapFile] = []

    # ------------------------------------------------------------------

    def rows(self) -> Iterator[tuple]:
        memory_run = yield from self._form_runs()
        if memory_run is not None:
            yield from self._stream_memory_run(memory_run)
        else:
            yield from self._merge_spilled_runs()

    def close(self) -> None:
        self._child.close()
        for run in self._runs:
            run.drop()
        self._runs.clear()

    # ------------------------------------------------------------------
    # run formation (blocking; ends this sort's segment)

    def _form_runs(self) -> Iterator[tuple]:
        """Drain the child into sorted runs (a ``yield from``-able phase).

        Yields only PULSE markers while working; *returns* the single
        in-memory run when everything fit in work_mem, otherwise None
        (runs were spilled to ``self._runs``).
        """
        ctx = self.ctx
        cost = ctx.config.cost
        tracker = ctx.tracker
        segment = getattr(self.node, "pi_sort_segment", None)
        width_fn = self._width

        buffer: list[tuple] = []
        buffer_bytes = 0.0
        for row in self._child.rows():
            if row is PULSE:
                yield row
                continue
            ctx.clock.advance(cost.cpu_tuple, CPU)
            width = width_fn(row)
            if tracker is not None and segment is not None:
                tracker.output_rows(segment, 1, width)
            buffer.append(row)
            buffer_bytes += width
            if buffer_bytes > ctx.work_mem_bytes:
                yield from self._spill_run(buffer)
                buffer = []
                buffer_bytes = 0.0

        memory_run: Optional[list[tuple]] = None
        if self._runs:
            if buffer:
                yield from self._spill_run(buffer)
            yield from self._collapse_runs(segment)
        else:
            yield from self._sort_buffer(buffer)
            memory_run = buffer
        if tracker is not None and segment is not None:
            tracker.segment_finished(segment)
        return memory_run

    def _sort_buffer(self, buffer: list[tuple]) -> Iterator[tuple]:
        n = len(buffer)
        if n <= 1:
            return
        comparisons = n * max(1.0, (n).bit_length() - 1)
        cost = self.ctx.config.cost.cpu_compare
        remaining = comparisons
        while remaining > 0:
            step = min(remaining, _CPU_CHUNK)
            self.ctx.clock.advance(step * cost, CPU)
            remaining -= step
            yield PULSE
        buffer.sort(key=self._key)

    def _spill_run(self, buffer: list[tuple]) -> Iterator[tuple]:
        yield from self._sort_buffer(buffer)
        ctx = self.ctx
        schema = Schema(
            Column(f"s{i}_{c.name.replace('.', '_')}", c.type)
            for i, c in enumerate(self.node.columns)
        )
        run = HeapFile(
            f"sortrun_{id(self)}_{len(self._runs)}",
            schema,
            ctx.disk,
            ctx.config.page_size,
            temp=True,
        )
        run.extend(buffer)
        run.flush()
        self._runs.append(run)

    def _collapse_runs(self, segment: Optional[int]) -> Iterator[tuple]:
        """Cascade-merge runs until they fit the merge fanout.

        Each extra pass re-reads and re-writes every byte; those bytes are
        the paper's multi-stage costs, reported via ``extra_pass``.  One
        PULSE is yielded per merged group (a bounded unit of work).
        """
        ctx = self.ctx
        fanout = max(2, ctx.config.work_mem_pages)
        while len(self._runs) > fanout:
            group = self._runs[:fanout]
            merged_rows = list(
                heapq.merge(*(run.iter_rows() for run in group), key=self._key)
            )
            nbytes = sum(run.total_bytes for run in group)
            npages = sum(run.handle.num_pages for run in group)
            cost = ctx.config.cost
            ctx.clock.advance(npages * (cost.seq_page_read + cost.page_write), "io")
            if ctx.tracker is not None and segment is not None:
                ctx.tracker.extra_pass(segment, 2.0 * nbytes)
            schema = group[0].schema
            merged = HeapFile(
                f"sortrun_{id(self)}_m{len(self._runs)}",
                schema,
                ctx.disk,
                ctx.config.page_size,
                temp=True,
            )
            previous = merged.charge_io
            merged.charge_io = False  # I/O charged in bulk above
            merged.extend(merged_rows)
            merged.flush()
            merged.charge_io = previous
            for run in group:
                run.drop()
            self._runs = self._runs[fanout:] + [merged]
            yield PULSE

    # ------------------------------------------------------------------
    # merge phase (streams into the consuming segment)

    def _stream_memory_run(self, run: list[tuple]) -> Iterator[tuple]:
        ctx = self.ctx
        tracker = ctx.tracker
        ref = getattr(self.node, "pi_merge_input_ref", None)
        cpu_tuple = ctx.config.cost.cpu_tuple
        width_fn = self._width
        for streamed, row in enumerate(run, start=1):
            ctx.clock.advance(cpu_tuple, CPU)
            if tracker is not None and ref is not None:
                tracker.input_rows(ref[0], ref[1], 1, width_fn(row))
            yield row
            if streamed % _MERGE_PULSE_ROWS == 0:
                yield PULSE

    def _merge_spilled_runs(self) -> Iterator[tuple]:
        ctx = self.ctx
        tracker = ctx.tracker
        ref = getattr(self.node, "pi_merge_input_ref", None)
        cost = ctx.config.cost
        key = self._key

        def read_run(run: HeapFile) -> Iterator[tuple]:
            for page_no in range(run.handle.num_pages):
                page = ctx.disk.read_page(run.handle, page_no, sequential=True)
                n = len(page.rows)
                if n:
                    ctx.clock.advance(n * cost.cpu_tuple, CPU)
                if tracker is not None and ref is not None:
                    tracker.input_rows(ref[0], ref[1], n, page.bytes_used)
                yield from page.rows

        # read_run streams into heapq.merge, which cannot forward pulses;
        # the outer loop emits them at a fixed row cadence instead.
        compare = cost.cpu_compare * max(1, len(self._runs)).bit_length()
        merged = 0
        for row in heapq.merge(*(read_run(r) for r in self._runs), key=key):
            ctx.clock.advance(compare, CPU)
            yield row
            merged += 1
            if merged % _MERGE_PULSE_ROWS == 0:
                yield PULSE
