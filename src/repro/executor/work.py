"""Run-time work accounting: the U counters of the progress indicator.

The paper measures work in bytes processed at segment boundaries
(Section 4.1/4.5): a byte is counted when a segment reads it as input,
when a segment writes it as output (unless that output is the final query
result), and once more per extra multi-stage pass.  :class:`WorkTracker`
holds those counters per segment, plus the global total the speed monitor
consumes.

This module lives in the executor package (not in :mod:`repro.core`) so
operators can report without importing the estimator; the estimator reads
these counters when it refines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.bus import TraceBus


class SegmentCounters:
    """Mutable run-time counters for one segment."""

    __slots__ = (
        "segment_id",
        "input_rows",
        "input_bytes",
        "output_rows",
        "output_bytes",
        "extra_bytes",
        "done_bytes",
        "started",
        "finished",
        "started_at",
        "finished_at",
    )

    def __init__(self, segment_id: int, num_inputs: int):
        self.segment_id = segment_id
        self.input_rows = [0] * num_inputs
        self.input_bytes = [0.0] * num_inputs
        self.output_rows = 0
        self.output_bytes = 0.0
        self.extra_bytes = 0.0
        #: Bytes of this segment counted toward the query's done work.
        self.done_bytes = 0.0
        self.started = False
        self.finished = False
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def avg_output_width(self) -> Optional[float]:
        """Observed mean output tuple width, or None before any output."""
        if self.output_rows <= 0:
            return None
        return self.output_bytes / self.output_rows

    def avg_input_width(self, input_index: int) -> Optional[float]:
        """Observed mean width of one input's tuples, or None before data."""
        if self.input_rows[input_index] <= 0:
            return None
        return self.input_bytes[input_index] / self.input_rows[input_index]


class WorkTracker:
    """Per-query progress counters, shared by executor and estimator.

    ``num_inputs`` lists the input count of each segment, indexed by
    segment id (segment ids are dense, assigned by the segment builder).
    ``count_final_output`` is False per the paper: bytes of the final
    result shown to the user are not work.
    """

    def __init__(self, num_inputs: list[int], final_segment: int, clock=None):
        self.segments = [
            SegmentCounters(i, n) for i, n in enumerate(num_inputs)
        ]
        self.final_segment = final_segment
        self.total_done_bytes = 0.0
        self._clock = clock
        #: Optional hook invoked as segments finish (indicator refresh).
        self.on_segment_finished: Optional[Callable[[int], None]] = None
        #: Optional TraceBus for segment-lifecycle events.  None (default)
        #: is the zero-cost disabled path: lifecycle methods test identity
        #: only, and the per-tuple hot paths above are untouched entirely.
        self.trace: Optional["TraceBus"] = None

    # ------------------------------------------------------------------
    # hot-path reporting (called per page / per tuple by operators)

    def input_rows(
        self, segment_id: int, input_index: int, rows: int, nbytes: float
    ) -> None:
        """Record ``rows`` tuples (``nbytes`` bytes) read by a segment input."""
        seg = self.segments[segment_id]
        if not seg.started:
            self._start(seg)
        seg.input_rows[input_index] += rows
        seg.input_bytes[input_index] += nbytes
        seg.done_bytes += nbytes
        self.total_done_bytes += nbytes

    def output_rows(self, segment_id: int, rows: int, nbytes: float) -> None:
        """Record tuples produced at a segment's output."""
        seg = self.segments[segment_id]
        if not seg.started:
            self._start(seg)
        seg.output_rows += rows
        seg.output_bytes += nbytes
        if segment_id != self.final_segment:
            seg.done_bytes += nbytes
            self.total_done_bytes += nbytes

    def extra_pass(self, segment_id: int, nbytes: float) -> None:
        """Record a multi-stage extra pass over ``nbytes`` (Section 4.5)."""
        seg = self.segments[segment_id]
        seg.extra_bytes += nbytes
        seg.done_bytes += nbytes
        self.total_done_bytes += nbytes
        if self.trace is not None:
            from repro.obs.events import ExtraPass

            self.trace.emit(
                ExtraPass(t=self._now(), segment_id=segment_id, nbytes=nbytes)
            )

    # ------------------------------------------------------------------
    # lifecycle

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def _start(self, seg: SegmentCounters) -> None:
        seg.started = True
        if self._clock is not None:
            seg.started_at = self._clock.now
        if self.trace is not None:
            from repro.obs.events import SegmentStarted

            self.trace.emit(
                SegmentStarted(t=self._now(), segment_id=seg.segment_id)
            )

    def segment_finished(self, segment_id: int) -> None:
        """Mark a segment complete (exact counts freeze; hook fires once)."""
        seg = self.segments[segment_id]
        if seg.finished:
            return
        if not seg.started:
            self._start(seg)
        seg.finished = True
        if self._clock is not None:
            seg.finished_at = self._clock.now
        if self.trace is not None:
            from repro.obs.events import SegmentFinished

            self.trace.emit(
                SegmentFinished(
                    t=self._now(),
                    segment_id=segment_id,
                    done_bytes=seg.done_bytes,
                    output_rows=seg.output_rows,
                )
            )
        if self.on_segment_finished is not None:
            self.on_segment_finished(segment_id)

    def finish_all(self) -> None:
        """Mark every segment finished (query completed)."""
        for seg in self.segments:
            if not seg.finished:
                self.segment_finished(seg.segment_id)

    # ------------------------------------------------------------------
    # queries

    def current_segment(self) -> Optional[int]:
        """The running segment the paper calls "the current segment".

        With a pipelined plan several segments can be technically started;
        the *current* one is the deepest unfinished started segment (the
        one actually consuming its dominant input).
        """
        current = None
        for seg in self.segments:
            if seg.started and not seg.finished:
                current = seg.segment_id
                break
        return current

    def done_pages(self, page_size: int) -> float:
        """Total work done so far, in U (pages)."""
        return self.total_done_bytes / page_size
