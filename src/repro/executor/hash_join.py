"""Hybrid hash join.

Two modes, decided by the optimizer's batch estimate (annotated on the
plan node):

* ``num_batches == 1``: classic in-memory hash join.  The build pipeline
  forms its own segment (ending at the hash-table build); the probe is
  fully pipelined into the parent segment.  The hash table's bytes are
  charged to the probe segment as an input when probing starts — the
  paper's double-counting convention for intermediates that stay in
  memory (Section 4.5).
* ``num_batches > 1``: Grace-style partitioned join.  Both inputs are
  hash-partitioned to temp files (each partitioning pass ends a segment,
  like S1/S2 in the paper's Figure 3), then batches are joined one by one
  inside a dedicated join segment whose inputs are the partition files
  (Figure 3's S3, with the probe partitions PB as the dominant input).
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Optional

from repro.errors import ExecutionError
from repro.executor.base import PULSE, ExecContext, Operator, build_operator
from repro.executor.rowops import combiner, concat_layout, layout_of, row_width_fn
from repro.expr.compiler import compile_predicate
from repro.planner.physical import HashJoinNode, PlanColumn
from repro.sim.load import CPU
from repro.storage.heap import HeapFile
from repro.storage.schema import Column, Schema


def _key_fn(columns: list[PlanColumn], keys: list[tuple[int, int]]):
    slots = [layout_of(columns)[k] for k in keys]
    if len(slots) == 1:
        slot = slots[0]
        return lambda row: row[slot]
    return lambda row: tuple(row[i] for i in slots)


def _stable_hash(value) -> int:
    """``PYTHONHASHSEED``-independent hash for partition routing.

    The builtin ``hash()`` salts ``str`` per process, so partition
    contents — and with them spill sizes, I/O counts, and the progress
    curves derived from both — would differ between otherwise identical
    runs (REPRO110 salted-hash).  Integers map to themselves, which for
    the workload's small positive keys reproduces ``hash(int)`` exactly.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, float):
        return zlib.crc32(struct.pack(">d", value))
    if isinstance(value, tuple):
        acc = 0x811C9DC5
        for item in value:
            acc = ((acc * 0x01000193) ^ (_stable_hash(item) & 0xFFFFFFFF))
            acc &= 0xFFFFFFFF
        return acc
    if value is None:
        return 0
    return zlib.crc32(repr(value).encode("utf-8"))


def _spill_schema(columns: list[PlanColumn]) -> Schema:
    """A throwaway schema for spilling intermediate rows to temp files."""
    return Schema(
        Column(f"c{i}_{col.name.replace('.', '_')}", col.type)
        for i, col in enumerate(columns)
    )


class HashJoinOp(Operator):
    def __init__(self, node: HashJoinNode, ctx: ExecContext):
        super().__init__(node, ctx)
        self._build_child = build_operator(node.build, ctx)
        self._probe_child = build_operator(node.probe, ctx)
        self._build_key = _key_fn(node.build.columns, node.build_keys)
        self._probe_key = _key_fn(node.probe.columns, node.probe_keys)
        self._combine = combiner(node.build.columns, node.probe.columns, node.columns)
        self._build_width = row_width_fn(node.build.columns)
        self._probe_width = row_width_fn(node.probe.columns)
        if node.extra_filters:
            layout = concat_layout(node.build.columns, node.probe.columns)
            self._extra = [compile_predicate(f, layout) for f in node.extra_filters]
        else:
            self._extra = []
        self._temp_files: list[HeapFile] = []
        #: Set when an in-memory build exceeded work_mem (diagnostics).
        self.overflowed = False

    # ------------------------------------------------------------------

    def rows(self) -> Iterator[tuple]:
        if self.node.num_batches == 1:
            yield from self._run_in_memory()
        else:
            yield from self._run_partitioned()

    def close(self) -> None:
        self._build_child.close()
        self._probe_child.close()
        for f in self._temp_files:
            f.drop()
        self._temp_files.clear()

    # ------------------------------------------------------------------
    # in-memory mode

    def _run_in_memory(self) -> Iterator[tuple]:
        node = self.node
        ctx = self.ctx
        cost = ctx.config.cost
        tracker = ctx.tracker
        build_segment = getattr(node, "pi_build_segment", None)
        hash_input_ref = getattr(node, "pi_hash_input_ref", None)

        table: dict = {}
        build_key = self._build_key
        build_width = self._build_width
        total_rows = 0
        total_bytes = 0.0
        for row in self._build_child.rows():
            if row is PULSE:
                yield row
                continue
            ctx.clock.advance(cost.cpu_hash, CPU)
            width = build_width(row)
            total_rows += 1
            total_bytes += width
            if tracker is not None and build_segment is not None:
                tracker.output_rows(build_segment, 1, width)
            key = build_key(row)
            if key is None:
                continue  # NULL keys never join
            bucket = table.get(key)
            if bucket is None:
                table[key] = [row]
            else:
                bucket.append(row)
        if total_bytes > ctx.work_mem_bytes:
            self.overflowed = True
        if tracker is not None and build_segment is not None:
            tracker.segment_finished(build_segment)

        # The probe segment "handles" the hash table once as it starts.
        if tracker is not None and hash_input_ref is not None:
            tracker.input_rows(
                hash_input_ref[0], hash_input_ref[1], total_rows, total_bytes
            )

        probe_key = self._probe_key
        combine = self._combine
        extra = self._extra
        per_probe = cost.cpu_hash
        per_match = cost.cpu_tuple + len(extra) * cost.cpu_operator
        for probe_row in self._probe_child.rows():
            if probe_row is PULSE:
                yield probe_row
                continue
            ctx.clock.advance(per_probe, CPU)
            key = probe_key(probe_row)
            if key is None:
                continue
            bucket = table.get(key)
            if bucket is None:
                continue
            ctx.clock.advance(per_match * len(bucket), CPU)
            if extra:
                for build_row in bucket:
                    merged = build_row + probe_row
                    if all(p(merged) for p in extra):
                        yield combine(build_row, probe_row)
            else:
                for build_row in bucket:
                    yield combine(build_row, probe_row)

    # ------------------------------------------------------------------
    # partitioned (Grace) mode

    def _run_partitioned(self) -> Iterator[tuple]:
        node = self.node
        ctx = self.ctx
        tracker = ctx.tracker
        nbatches = node.num_batches

        build_parts = yield from self._partition(
            self._build_child,
            node.build.columns,
            self._build_key,
            self._build_width,
            nbatches,
            segment=getattr(node, "pi_build_segment", None),
            name=f"hj_build_{id(node)}",
        )
        probe_parts = yield from self._partition(
            self._probe_child,
            node.probe.columns,
            self._probe_key,
            self._probe_width,
            nbatches,
            segment=getattr(node, "pi_probe_segment", None),
            name=f"hj_probe_{id(node)}",
        )

        join_segment = getattr(node, "pi_join_segment", None)
        pa_ref = getattr(node, "pi_pa_input_ref", None)
        pb_ref = getattr(node, "pi_pb_input_ref", None)
        cost = ctx.config.cost
        build_key = self._build_key
        probe_key = self._probe_key
        combine = self._combine
        extra = self._extra
        per_match = cost.cpu_tuple + len(extra) * cost.cpu_operator

        for b in range(nbatches):
            table: dict = {}
            for row in self._read_partition(build_parts[b], join_segment, pa_ref):
                if row is PULSE:
                    yield row
                    continue
                ctx.clock.advance(cost.cpu_hash, CPU)
                key = build_key(row)
                if key is None:
                    continue
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)
            for probe_row in self._read_partition(probe_parts[b], join_segment, pb_ref):
                if probe_row is PULSE:
                    yield probe_row
                    continue
                ctx.clock.advance(cost.cpu_hash, CPU)
                key = probe_key(probe_row)
                if key is None:
                    continue
                bucket = table.get(key)
                if bucket is None:
                    continue
                ctx.clock.advance(per_match * len(bucket), CPU)
                if extra:
                    for build_row in bucket:
                        merged = build_row + probe_row
                        if all(p(merged) for p in extra):
                            yield combine(build_row, probe_row)
                else:
                    for build_row in bucket:
                        yield combine(build_row, probe_row)

    def _partition(
        self,
        child: Operator,
        columns: list[PlanColumn],
        key_fn,
        width_fn,
        nbatches: int,
        segment: Optional[int],
        name: str,
    ) -> Iterator[tuple]:
        """Drain ``child`` into ``nbatches`` temp partitions (one write pass).

        A ``yield from``-able phase: yields only PULSE markers while
        draining, *returns* the partition files.
        """
        ctx = self.ctx
        cost = ctx.config.cost
        tracker = ctx.tracker
        schema = _spill_schema(columns)
        parts = [
            HeapFile(f"{name}_p{b}", schema, ctx.disk, ctx.config.page_size, temp=True)
            for b in range(nbatches)
        ]
        self._temp_files.extend(parts)
        for row in child.rows():
            if row is PULSE:
                yield row
                continue
            ctx.clock.advance(cost.cpu_hash, CPU)
            key = key_fn(row)
            batch = _stable_hash(key) % nbatches if key is not None else 0
            parts[batch].append(row)
            if tracker is not None and segment is not None:
                tracker.output_rows(segment, 1, width_fn(row))
        for part in parts:
            part.flush()
        if tracker is not None and segment is not None:
            tracker.segment_finished(segment)
        return parts

    def _read_partition(
        self, part: HeapFile, segment: Optional[int], ref: Optional[tuple[int, int]]
    ) -> Iterator[tuple]:
        """Stream a spilled partition back, charging I/O and input counts."""
        ctx = self.ctx
        tracker = ctx.tracker
        cpu_tuple = ctx.config.cost.cpu_tuple
        for page_no in range(part.handle.num_pages):
            page = ctx.disk.read_page(part.handle, page_no, sequential=True)
            n = len(page.rows)
            if n:
                ctx.clock.advance(cpu_tuple * n, CPU)
            if tracker is not None and ref is not None:
                tracker.input_rows(ref[0], ref[1], n, page.bytes_used)
            yield from page.rows
            yield PULSE

    # guard: the factory should never hand us something else
    def _unreachable(self):
        raise ExecutionError("invalid hash join state")
