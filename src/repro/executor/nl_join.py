"""Nested loops join with a materialized inner relation.

The paper's Q5 plan: the *outer* input is the dominant input of the
segment (Section 4.5 rule 2a), the inner is read once during
materialization, and every outer tuple is compared against every inner
tuple — pure CPU when the inner fits in memory, which is what makes Q5
CPU-bound while its byte-based progress still tracks the outer scan
(Section 5.6.1).
"""

from __future__ import annotations

from typing import Iterator

from repro.executor.base import PULSE, ExecContext, Operator, build_operator
from repro.executor.rowops import combiner, concat_layout, row_width_fn
from repro.expr.compiler import compile_predicate
from repro.planner.physical import NestLoopNode
from repro.sim.load import CPU, IO


class NestLoopOp(Operator):
    def __init__(self, node: NestLoopNode, ctx: ExecContext):
        super().__init__(node, ctx)
        self._outer_child = build_operator(node.outer, ctx)
        self._inner_child = build_operator(node.inner, ctx)
        layout = concat_layout(node.outer.columns, node.inner.columns)
        self._predicates = [compile_predicate(p, layout) for p in node.predicates]
        self._combine = combiner(node.outer.columns, node.inner.columns, node.columns)
        self._inner_width = row_width_fn(node.inner.columns)

    def rows(self) -> Iterator[tuple]:
        ctx = self.ctx
        cost = ctx.config.cost
        tracker = ctx.tracker
        inner_ref = getattr(self.node, "pi_inner_input_ref", None)

        # Materialize the inner once; its bytes count once (the paper's Q5
        # narrative measures progress through the outer, with the inner's
        # single read accounted up front).
        inner_rows: list[tuple] = []
        inner_bytes = 0.0
        width_fn = self._inner_width
        for row in self._inner_child.rows():
            if row is PULSE:
                yield row
                continue
            ctx.clock.advance(cost.cpu_tuple, CPU)
            inner_bytes += width_fn(row)
            inner_rows.append(row)
        if tracker is not None and inner_ref is not None:
            tracker.input_rows(inner_ref[0], inner_ref[1], len(inner_rows), inner_bytes)

        predicates = self._predicates
        combine = self._combine
        n_inner = len(inner_rows)
        per_outer_cpu = n_inner * cost.cpu_operator * max(1, len(predicates))
        # Rescan I/O applies only when the materialized inner cannot be
        # cached; each additional outer tuple re-reads the spilled inner.
        rescan_io = 0.0
        if inner_bytes > ctx.work_mem_bytes:
            rescan_io = (inner_bytes / ctx.config.page_size) * cost.seq_page_read

        first_outer = True
        for outer_row in self._outer_child.rows():
            if outer_row is PULSE:
                yield outer_row
                continue
            ctx.clock.advance(per_outer_cpu, CPU)
            if rescan_io and not first_outer:
                ctx.clock.advance(rescan_io, IO)
            first_outer = False
            for inner_row in inner_rows:
                merged = outer_row + inner_row
                keep = True
                for predicate in predicates:
                    if not predicate(merged):
                        keep = False
                        break
                if keep:
                    yield combine(outer_row, inner_row)

    def close(self) -> None:
        self._outer_child.close()
        self._inner_child.close()
