"""Batch transport for the fused executor.

A :class:`Batch` is the unit the batch engine hands to drivers: a small
fixed-capacity container of result rows produced between two scheduling
points.  It exists purely to amortize Python-level generator hops — the
engine's virtual-time accounting is still per tuple, and batches always
flush *before* a ``PULSE`` so quantum slicing in :mod:`repro.sched`
observes exactly the same charge state at every yield point as the row
engine does.

Drivers distinguish the three item kinds a batch-engine generator yields
with two identity checks (no isinstance in the hot loop)::

    for item in execute(planned, ctx):
        if item is PULSE: ...            # scheduling point
        elif type(item) is Batch: ...    # a batch of result rows
        else: ...                        # a single row (row engine)
"""

from __future__ import annotations

from typing import Iterator


class Batch:
    """A list-of-rows container with a cheap :meth:`rows` view.

    The batch owns its row list (the engine never mutates a batch after
    yielding it), so :meth:`rows` can return the list itself without a
    copy.
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: list) -> None:
        self._rows = rows

    def rows(self) -> list:
        """The rows in this batch, in production order (no copy)."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator:
        return iter(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch({len(self._rows)} rows)"
