"""Scan operators: sequential heap scans and B-tree index scans.

Scans are where the paper's Section 4.3 base-input accounting happens: the
tracker learns how many base tuples (and bytes) have actually been read,
which the estimator compares against the optimizer's Ne.
"""

from __future__ import annotations

from typing import Iterator

from repro.executor.base import PULSE, ExecContext, Operator
from repro.expr.compiler import compile_predicate
from repro.planner.physical import IndexScanNode, SeqScanNode
from repro.sim.load import CPU, IO


def _scan_layout(node) -> dict[tuple[int, int], int]:
    """Layout of raw base-table rows for a scan's predicate compilation."""
    t = node.table_index
    return {(t, ci): ci for ci in range(len(node.table.schema))}


def _projector(node):
    """Map a raw base row to the scan's pruned output columns."""
    slots = [coord[1] for coord in (c.coordinate for c in node.columns)]
    if len(slots) == len(node.table.schema) and slots == list(range(len(slots))):
        return None  # identity; skip per-row tuple rebuilding
    return slots


class SeqScanOp(Operator):
    """Full scan of a heap through the buffer pool."""

    def __init__(self, node: SeqScanNode, ctx: ExecContext):
        super().__init__(node, ctx)
        layout = _scan_layout(node)
        self._predicates = [compile_predicate(f, layout) for f in node.filters]
        self._slots = _projector(node)

    def rows(self) -> Iterator[tuple]:
        node = self.node
        ctx = self.ctx
        cost = ctx.config.cost
        tracker = ctx.tracker
        ref = getattr(node, "pi_input_ref", None)
        heap = node.table.heap
        handle = heap.handle
        predicates = self._predicates
        slots = self._slots
        cpu_per_row = cost.cpu_tuple + len(predicates) * cost.cpu_operator

        monitored = tracker is not None and ref is not None
        per_tuple = ctx.config.progress.scan_granularity != "page"
        if monitored:
            seg, idx = ref
        pool = ctx.buffer_pool
        for page_no in range(handle.num_pages):
            page = pool.get_page(handle, page_no, sequential=True)
            n = len(page.rows)
            if not n:
                continue
            # The page stays pinned while its rows are in flight — across
            # scheduler suspensions too (PULSE is yielded under the pin) —
            # and the finally releases it on exhaustion *and* on
            # cancellation (generator close).
            pool.pin(handle, page_no)
            try:
                ctx.clock.advance(cpu_per_row * n, CPU)
                # Bytes are reported per tuple (not per page) by default so a
                # slow consumer — e.g. a CPU-bound nested-loops join pulling one
                # outer tuple at a time, the paper's Q5 — still shows smooth
                # byte progress to the speed monitor.  "page" granularity is an
                # ablation knob demonstrating why that matters.
                per_row_bytes = page.bytes_used / n
                if monitored and not per_tuple:
                    tracker.input_rows(seg, idx, n, page.bytes_used)
                for row in page.rows:
                    if monitored and per_tuple:
                        tracker.input_rows(seg, idx, 1, per_row_bytes)
                    keep = True
                    for predicate in predicates:
                        if not predicate(row):
                            keep = False
                            break
                    if not keep:
                        continue
                    if slots is None:
                        yield row
                    else:
                        yield tuple(row[i] for i in slots)
                yield PULSE
            finally:
                pool.unpin(handle, page_no)


class IndexScanOp(Operator):
    """Range scan over a B-tree index with heap fetches."""

    def __init__(self, node: IndexScanNode, ctx: ExecContext):
        super().__init__(node, ctx)
        layout = _scan_layout(node)
        self._predicates = [compile_predicate(f, layout) for f in node.filters]
        self._slots = _projector(node)

    def rows(self) -> Iterator[tuple]:
        node = self.node
        ctx = self.ctx
        cost = ctx.config.cost
        tracker = ctx.tracker
        ref = getattr(node, "pi_input_ref", None)
        index = node.index
        heap_handle = node.table.heap.handle
        schema = node.table.schema
        predicates = self._predicates
        slots = self._slots

        # Root-to-leaf descent.
        ctx.clock.advance(index.height * cost.random_page_read, IO)
        ctx.clock.advance(index.height * cost.cpu_index_level, CPU)

        pool = ctx.buffer_pool
        entries_seen = 0
        for _key, rid in index.search_range(
            node.low, node.high, node.low_inclusive, node.high_inclusive
        ):
            # One sequential leaf-page read per `fanout` entries consumed;
            # leaf-page boundaries are also the scan's scheduling pulses.
            if entries_seen % index.fanout == 0:
                ctx.clock.advance(cost.seq_page_read, IO)
                if entries_seen:
                    yield PULSE
            entries_seen += 1

            page_no, slot = rid
            page = pool.get_page(heap_handle, page_no, sequential=False)
            pool.pin(heap_handle, page_no)
            try:
                row = page.rows[slot]
                ctx.clock.advance(
                    cost.cpu_tuple + len(predicates) * cost.cpu_operator, CPU
                )
                if tracker is not None and ref is not None:
                    tracker.input_rows(ref[0], ref[1], 1, schema.row_width(row))
                keep = True
                for predicate in predicates:
                    if not predicate(row):
                        keep = False
                        break
                if not keep:
                    continue
                if slots is None:
                    yield row
                else:
                    yield tuple(row[i] for i in slots)
            finally:
                pool.unpin(heap_handle, page_no)
