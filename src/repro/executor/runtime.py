"""Query driver: runs a plan to completion on the virtual clock."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.executor.base import ExecContext, build_operator
from repro.planner.optimizer import PlannedQuery


@dataclass
class QueryResult:
    """Outcome of a completed query.

    ``row_count`` is the number of rows the query *produced*; ``rows``
    holds the retained subset (all of them unless ``keep_rows=False`` or
    ``max_rows`` capped retention).
    """

    rows: list[tuple]
    names: list[str]
    #: Virtual seconds from first pull to completion.
    elapsed: float
    started_at: float
    finished_at: float
    row_count: int


def execute(planned: PlannedQuery, ctx: ExecContext) -> Iterator[tuple]:
    """Stream a plan's output rows (caller owns iteration pacing).

    Uncorrelated IN-subqueries (hashed InitPlans) run first, on the same
    simulated resources but without progress accounting — their time is
    visible to the indicator only through the clock, matching PostgreSQL
    InitPlans, which the paper's prototype also does not model.
    """
    for expr, subplan in planned.subplans:
        sub_ctx = ExecContext(
            ctx.clock, ctx.disk, ctx.buffer_pool, ctx.config, tracker=None
        )
        sub_op = build_operator(subplan.root, sub_ctx)
        try:
            expr.set_result(row[0] for row in sub_op.rows())
        finally:
            sub_op.close()

    op = build_operator(planned.root, ctx)
    try:
        yield from op.rows()
    finally:
        op.close()
        if ctx.tracker is not None:
            ctx.tracker.finish_all()


def run_query(
    planned: PlannedQuery,
    ctx: ExecContext,
    keep_rows: bool = True,
    max_rows: Optional[int] = None,
) -> QueryResult:
    """Run ``planned`` to completion, collecting results.

    ``keep_rows=False`` discards output tuples (large experiments care
    about timing, not materialized results).  ``max_rows`` caps retained
    rows without stopping execution.
    """
    started = ctx.clock.now
    rows: list[tuple] = []
    produced = 0
    for row in execute(planned, ctx):
        produced += 1
        if keep_rows and (max_rows is None or len(rows) < max_rows):
            rows.append(row)
    finished = ctx.clock.now
    return QueryResult(
        rows=rows,
        names=planned.output_names,
        elapsed=finished - started,
        started_at=started,
        finished_at=finished,
        row_count=produced,
    )
