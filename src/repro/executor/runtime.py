"""Query driver: runs a plan to completion on the virtual clock."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ExecutionError
from repro.executor.base import PULSE, ExecContext, build_operator
from repro.executor.batch import Batch
from repro.executor.work import WorkTracker
from repro.planner.optimizer import PlannedQuery
from repro.planner.physical import PhysicalNode


def check_tracker_alignment(root: PhysicalNode, tracker: WorkTracker) -> None:
    """Pre-execution guard: the tracker must cover every segment and input
    slot the plan's progress annotations reference.

    Operators index ``tracker.segments`` by the ``segment_id`` /
    ``pi_*`` annotations the segment builder wrote into the plan; running
    a plan against a tracker built for a *different* plan (stale indicator,
    re-prepared query) would corrupt counters or crash mid-query.  The
    full structural invariants are checked by :mod:`repro.analysis`; this
    cheap, dependency-free check only pins the plan to its tracker.
    """
    nseg = len(tracker.segments)
    stack = [root]
    while stack:
        node = stack.pop()
        stack.extend(node.children)
        for attr, value in vars(node).items():
            if attr == "segment_id" or (
                attr.startswith("pi_") and attr.endswith("_segment")
            ):
                if value is None:
                    continue
                if not (isinstance(value, int) and 0 <= value < nseg):
                    raise ExecutionError(
                        f"{type(node).__name__}.{attr} = {value!r} does not "
                        f"match the attached tracker ({nseg} segments)"
                    )
            elif attr.startswith("pi_") and attr.endswith("_ref"):
                if value is None:
                    continue
                if not (
                    isinstance(value, tuple)
                    and len(value) == 2
                    and isinstance(value[0], int)
                    and isinstance(value[1], int)
                    and 0 <= value[0] < nseg
                    and 0 <= value[1] < len(tracker.segments[value[0]].input_rows)
                ):
                    raise ExecutionError(
                        f"{type(node).__name__}.{attr} = {value!r} does not "
                        f"match the attached tracker ({nseg} segments)"
                    )


@dataclass
class QueryResult:
    """Outcome of a completed query.

    ``row_count`` is the number of rows the query *produced*; ``rows``
    holds the retained subset (all of them unless ``keep_rows=False`` or
    ``max_rows`` capped retention).
    """

    rows: list[tuple]
    names: list[str]
    #: Virtual seconds from first pull to completion.
    elapsed: float
    started_at: float
    finished_at: float
    row_count: int


def execute(planned: PlannedQuery, ctx: ExecContext) -> Iterator[tuple]:
    """Stream a plan's output rows, interleaved with ``PULSE`` markers.

    The returned generator is a cooperative coroutine: between output
    rows it yields :data:`repro.executor.base.PULSE` at bounded-work
    boundaries (page reads, sort chunks, spill passes), so a scheduler
    can suspend and resume the query in work quanta.  Single-query
    drivers (:func:`run_query`) skip pulses; :mod:`repro.sched` uses them
    to interleave many in-flight queries on one virtual clock.

    Progress counters are frozen via ``finish_all`` only when the plan
    runs to completion — a cancelled (closed) generator leaves its
    unfinished segments unfinished, which is what the per-query progress
    log of a cancelled query should show.

    Uncorrelated IN-subqueries (hashed InitPlans) run first, on the same
    simulated resources but without progress accounting, and complete
    within the first resumption — their time is visible to the indicator
    only through the clock, matching PostgreSQL InitPlans, which the
    paper's prototype also does not model.
    """
    if ctx.tracker is not None:
        check_tracker_alignment(planned.root, ctx.tracker)
    if ctx.trace is not None:
        from repro.obs.events import ExecutionStarted

        ctx.trace.emit(
            ExecutionStarted(t=ctx.clock.now, num_subplans=len(planned.subplans))
        )

    for expr, subplan in planned.subplans:
        sub_ctx = ExecContext(
            ctx.clock, ctx.disk, ctx.buffer_pool, ctx.config, tracker=None
        )
        sub_op = build_operator(subplan.root, sub_ctx)
        try:
            expr.set_result(
                row[0] for row in sub_op.rows() if row is not PULSE
            )
        finally:
            sub_op.close()

    # The fused batch engine compiles the whole plan into one loop nest
    # (bit-identical charges; Batch items to the driver).  Paths that must
    # observe per-operator streams — the analysis pulse probe and EXPLAIN
    # ANALYZE row counting — always run the volcano row engine.
    use_fused = (
        ctx.config.progress.engine != "row"
        and ctx.pulse_probe is None
        and not ctx.count_rows
    )
    produced = 0
    completed = False
    if use_fused:
        from repro.executor.fused import FusedQuery

        fq = FusedQuery(planned.root, ctx)
        try:
            if ctx.trace is None:
                yield from fq.run()
            else:
                for item in fq.run():
                    if item is not PULSE:
                        produced += len(item)
                    yield item
            completed = True
        finally:
            fq.close()
            if completed:
                if ctx.tracker is not None:
                    ctx.tracker.finish_all()
                if ctx.trace is not None:
                    from repro.obs.events import ExecutionFinished

                    ctx.trace.emit(
                        ExecutionFinished(t=ctx.clock.now, rows=produced)
                    )
        return

    op = build_operator(planned.root, ctx)
    try:
        if ctx.trace is None:
            yield from op.rows()
        else:
            for row in op.rows():
                if row is not PULSE:
                    produced += 1
                yield row
        completed = True
    finally:
        op.close()
        if completed:
            if ctx.tracker is not None:
                ctx.tracker.finish_all()
            if ctx.trace is not None:
                from repro.obs.events import ExecutionFinished

                ctx.trace.emit(ExecutionFinished(t=ctx.clock.now, rows=produced))


def run_query(
    planned: PlannedQuery,
    ctx: ExecContext,
    keep_rows: bool = True,
    max_rows: Optional[int] = None,
) -> QueryResult:
    """Run ``planned`` to completion, collecting results.

    ``keep_rows=False`` discards output tuples (large experiments care
    about timing, not materialized results).  ``max_rows`` caps retained
    rows without stopping execution.
    """
    started = ctx.clock.now
    rows: list[tuple] = []
    rows_append = rows.append
    rows_extend = rows.extend
    produced = 0
    for item in execute(planned, ctx):
        if item is PULSE:
            continue
        if type(item) is Batch:
            brows = item.rows()
            produced += len(brows)
            if keep_rows:
                if max_rows is None:
                    rows_extend(brows)
                elif len(rows) < max_rows:
                    rows_extend(brows[: max_rows - len(rows)])
            continue
        produced += 1
        if keep_rows and (max_rows is None or len(rows) < max_rows):
            rows_append(item)
    finished = ctx.clock.now
    return QueryResult(
        rows=rows,
        names=planned.output_names,
        elapsed=finished - started,
        started_at=started,
        finished_at=finished,
        row_count=produced,
    )
