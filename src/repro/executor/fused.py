"""The fused batch-at-a-time engine: one compiled loop nest per query.

The volcano engine (the ``"row"`` engine) moves one tuple per Python-level
``next()``/``yield`` hop through a chain of generator operators.  That hop
is the dominant *real-time* cost of every query — while the *virtual-time*
cost model (clock charges, tracker bytes, PULSE scheduling points) is
completely independent of how tuples are transported.  This module
exploits that: it compiles a physical plan into a single Python generator
whose loop nest runs every pipelined stage's per-row work in one frame,
and hands rows to the driver in :class:`~repro.executor.batch.Batch`
containers instead of one at a time.

Bit-identity contract
---------------------
The fused program must be observationally identical to the volcano
engine — same result rows in the same order, the same ProgressLog, the
same final clock and tracker state.  Because the virtual clock fires
ticker callbacks (progress reports, speed samples) *inside*
``clock.advance``, identity requires preserving the exact ordered
sequence of charges and the tracker state visible at each one.  The
compiler therefore follows three rules:

* every per-row ``clock.advance`` and tracker update is emitted at the
  same point in the row stream as the volcano operator performs it —
  never merged, split, or reordered (float addition is not associative);
* every storage call (buffer-pool page get/pin/unpin, disk read, temp
  write) keeps its exact order, because fault injection draws one RNG
  value per charged I/O;
* only *silent* computation (predicate evaluation, tuple construction,
  width arithmetic) is restructured into straight-line code.

``PULSE`` placement is likewise preserved: the generated code yields
:data:`~repro.executor.base.PULSE` at exactly the volcano engine's
boundaries, flushing any pending output batch first (flushing is
clock-silent, so batch size never affects results — it only trades
Python-level hops against latency of row delivery to the driver).

Merge join is the one operator the compiler does not fuse: it is a
pull-based two-cursor streamer whose volcano implementation is already
dominated by its children; the compiler embeds the volcano operator as a
row source and fuses everything above it.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional

from repro.errors import ExecutionError
from repro.executor.base import PULSE, ExecContext
from repro.executor.batch import Batch
from repro.executor.hash_join import _spill_schema, _stable_hash
from repro.executor.rowops import layout_of
from repro.executor.scans import _projector, _scan_layout
from repro.executor.sort import _CPU_CHUNK, make_sort_key
from repro.expr.bound import (
    AggregateExpr,
    ArithmeticExpr,
    ColumnExpr,
    ComparisonExpr,
    LiteralExpr,
    LogicalExpr,
    NegativeExpr,
    NotExpr,
)
from repro.expr.compiler import compile_expr, compile_predicate
from repro.planner.physical import (
    DistinctNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    MergeJoinNode,
    NestLoopNode,
    PhysicalNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
)
from repro.sim.load import CPU, IO
from repro.storage.heap import HeapFile
from repro.storage.schema import TUPLE_HEADER_BYTES, Column, Schema
from repro.storage.types import StringType

#: Pulse cadence of sort stream/merge phases (mirrors repro.executor.sort).
_MERGE_PULSE_ROWS = 256

#: Comparison / arithmetic operator spellings for fused expression source.
_CMP_SRC = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH_SRC = {"+": "+", "-": "-", "*": "*", "/": "/"}
#: Literal types whose ``repr`` round-trips exactly in generated source.
_SAFE_LITERALS = (int, float, str, bool, type(None))


def _nonnull_literal(expr) -> bool:
    """True when ``expr`` is a literal that can never evaluate to NULL."""
    return isinstance(expr, LiteralExpr) and expr.value is not None


class _StopPipeline(Exception):
    """Raised by a fused LIMIT stage to unwind its source loops.

    The volcano LimitOp simply stops pulling its child; in fused code the
    source loops are *below* the limit stage in the same frame, so the
    stage raises instead.  ``try/finally`` blocks on the unwind path
    release pins exactly as generator finalization does for the volcano
    engine (both are clock-silent).
    """


def _lit(value) -> str:
    """A source literal that round-trips ``value`` exactly (repr)."""
    return repr(value)


def _tuple_display(parts: List[str]) -> str:
    if not parts:
        return "()"
    if len(parts) == 1:
        return f"({parts[0]},)"
    return "(" + ", ".join(parts) + ")"


class _FusedSort:
    """Run-time state of one fused sort: spill runs and their helpers.

    The generator methods replicate ``repro.executor.sort.SortOp``'s
    private phases verbatim (same charges, same PULSE cadence, same temp
    file handling); the fused absorb/stream loops live in generated code
    and call into these only for the cold spill paths.
    """

    def __init__(self, node: SortNode, ctx: ExecContext):
        self.node = node
        self.ctx = ctx
        self.key = make_sort_key(node)
        self.segment = getattr(node, "pi_sort_segment", None)
        self.merge_ref = getattr(node, "pi_merge_input_ref", None)
        self.runs: List[HeapFile] = []

    def sort_buffer(self, buffer: list) -> Iterator[tuple]:
        n = len(buffer)
        if n <= 1:
            return
        comparisons = n * max(1.0, (n).bit_length() - 1)
        cost = self.ctx.config.cost.cpu_compare
        remaining = comparisons
        while remaining > 0:
            step = min(remaining, _CPU_CHUNK)
            self.ctx.clock.advance(step * cost, CPU)
            remaining -= step
            yield PULSE
        buffer.sort(key=self.key)

    def spill(self, buffer: list) -> Iterator[tuple]:
        yield from self.sort_buffer(buffer)
        ctx = self.ctx
        schema = Schema(
            Column(f"s{i}_{c.name.replace('.', '_')}", c.type)
            for i, c in enumerate(self.node.columns)
        )
        run = HeapFile(
            f"sortrun_{id(self)}_{len(self.runs)}",
            schema,
            ctx.disk,
            ctx.config.page_size,
            temp=True,
        )
        run.extend(buffer)
        run.flush()
        self.runs.append(run)

    def collapse(self) -> Iterator[tuple]:
        ctx = self.ctx
        segment = self.segment
        fanout = max(2, ctx.config.work_mem_pages)
        while len(self.runs) > fanout:
            group = self.runs[:fanout]
            merged_rows = list(
                heapq.merge(*(run.iter_rows() for run in group), key=self.key)
            )
            nbytes = sum(run.total_bytes for run in group)
            npages = sum(run.handle.num_pages for run in group)
            cost = ctx.config.cost
            ctx.clock.advance(npages * (cost.seq_page_read + cost.page_write), "io")
            if ctx.tracker is not None and segment is not None:
                ctx.tracker.extra_pass(segment, 2.0 * nbytes)
            schema = group[0].schema
            merged = HeapFile(
                f"sortrun_{id(self)}_m{len(self.runs)}",
                schema,
                ctx.disk,
                ctx.config.page_size,
                temp=True,
            )
            previous = merged.charge_io
            merged.charge_io = False  # I/O charged in bulk above
            merged.extend(merged_rows)
            merged.flush()
            merged.charge_io = previous
            for run in group:
                run.drop()
            self.runs = self.runs[fanout:] + [merged]
            yield PULSE

    def read_run(self, run: HeapFile) -> Iterator[tuple]:
        ctx = self.ctx
        tracker = ctx.tracker
        ref = self.merge_ref
        cost = ctx.config.cost
        for page_no in range(run.handle.num_pages):
            page = ctx.disk.read_page(run.handle, page_no, sequential=True)
            n = len(page.rows)
            if n:
                ctx.clock.advance(n * cost.cpu_tuple, CPU)
            if tracker is not None and ref is not None:
                tracker.input_rows(ref[0], ref[1], n, page.bytes_used)
            yield from page.rows

    def drop(self) -> None:
        for run in self.runs:
            run.drop()
        self.runs.clear()


def _make_partitions(
    ctx: ExecContext, temps: List[HeapFile], columns, nbatches: int, name: str
) -> List[HeapFile]:
    """Create one temp partition file per batch (registered for cleanup)."""
    schema = _spill_schema(columns)
    parts = [
        HeapFile(f"{name}_p{b}", schema, ctx.disk, ctx.config.page_size, temp=True)
        for b in range(nbatches)
    ]
    temps.extend(parts)
    return parts


class _Compiler:
    """Produce/consume compiler: physical plan -> one generator's source.

    ``_node(node, consume)`` emits the code that produces ``node``'s rows,
    invoking the ``consume`` callback to emit the per-row code of the
    parent stage at every production site.  Sources own the loops;
    pipeline breakers (sort, hash build, aggregation) emit a sink for
    their child followed by a new production phase for their output.
    """

    def __init__(self, ctx: ExecContext, batch_rows: int):
        self.ctx = ctx
        self.cost = ctx.config.cost
        self.tracker = ctx.tracker
        self.batch_rows = max(1, batch_rows)
        self.env: dict = {
            "PULSE": PULSE,
            "_B": Batch,
            "_Stop": _StopPipeline,
            "_CPU": CPU,
            "_IO": IO,
            "_ONE": (0,),
            "heapq": heapq,
        }
        self.pre: List[str] = []
        self.body: List[str] = []
        self.depth = 1
        #: Embedded volcano operators (merge join) to close with the query.
        self.ops: list = []
        #: Fused sort states whose spill runs need dropping.
        self.sorts: List[_FusedSort] = []
        #: Temp files the generated code creates (hash partitions).
        self.temps: List[HeapFile] = []
        self._n = 0
        self._seg_names: dict[int, str] = {}
        self._seg_list_names: dict[int, tuple[str, str]] = {}
        self._adv_name: Optional[str] = None
        self._clk_name: Optional[str] = None
        self._cch_name: Optional[str] = None
        self._slow_name: Optional[str] = None
        self._tracker_name: Optional[str] = None
        self._start_name: Optional[str] = None
        self._segfin_name: Optional[str] = None
        self._trin_name: Optional[str] = None

    # ------------------------------------------------------------------
    # emission helpers

    def fresh(self, hint: str) -> str:
        self._n += 1
        return f"{hint}{self._n}"

    def local(self, value, hint: str) -> str:
        """Bind ``value`` as a function-local name (hoisted in the preamble)."""
        name = self.fresh(hint)
        self.env[f"_g_{name}"] = value
        self.pre.append(f"{name} = _g_{name}")
        return name

    def line(self, text: str) -> None:
        self.body.append("    " * self.depth + text)

    def block(self, header: str) -> "_Block":
        self.line(header)
        return _Block(self)

    # cached hot bindings ------------------------------------------------

    def _adv(self) -> str:
        if self._adv_name is None:
            self._adv_name = self.local(self.ctx.clock.advance, "adv")
        return self._adv_name

    def _clk(self) -> str:
        if self._clk_name is None:
            self._clk_name = self.local(self.ctx.clock, "clk")
        return self._clk_name

    def _cch(self) -> str:
        """The clock's ``cost_charged`` dict (mutated in place, never rebound)."""
        if self._cch_name is None:
            self._cch_name = self.local(self.ctx.clock.cost_charged, "cch")
        return self._cch_name

    def _slow(self) -> str:
        if self._slow_name is None:
            self._slow_name = self.local(self.ctx.clock._advance_slow, "slow")
        return self._slow_name

    def _tr(self) -> str:
        if self._tracker_name is None:
            self._tracker_name = self.local(self.tracker, "tr")
        return self._tracker_name

    def _tr_start(self) -> str:
        if self._start_name is None:
            self._start_name = self.local(self.tracker._start, "trst")
        return self._start_name

    def _tr_segfin(self) -> str:
        if self._segfin_name is None:
            self._segfin_name = self.local(
                self.tracker.segment_finished, "segfin"
            )
        return self._segfin_name

    def _tr_input(self) -> str:
        """The bound ``input_rows`` method, for cold per-page call sites."""
        if self._trin_name is None:
            self._trin_name = self.local(self.tracker.input_rows, "trin")
        return self._trin_name

    def _seg(self, seg_id: int) -> str:
        name = self._seg_names.get(seg_id)
        if name is None:
            name = self._seg_names[seg_id] = self.local(
                self.tracker.segments[seg_id], f"seg{seg_id}_"
            )
        return name

    def _seg_lists(self, seg_id: int) -> tuple[str, str]:
        """Hoisted ``input_rows`` / ``input_bytes`` lists of one segment.

        The lists are mutated in place and never rebound, so per-row code
        can index hoisted locals instead of re-reading two attributes.
        """
        names = self._seg_list_names.get(seg_id)
        if names is None:
            seg = self._seg(seg_id)
            ir = self.fresh(f"seg{seg_id}ir")
            ib = self.fresh(f"seg{seg_id}ib")
            self.pre.append(f"{ir} = {seg}.input_rows")
            self.pre.append(f"{ib} = {seg}.input_bytes")
            names = self._seg_list_names[seg_id] = (ir, ib)
        return names

    # inlined clock charge (must mirror VirtualClock.advance exactly) ----

    def _emit_advance(self, cost, res: str, maybe_zero: bool = True) -> None:
        """Inline ``clock.advance(cost, res)``'s fast path.

        ``cost`` is either a float (compile-time constant) or a source
        expression.  The emitted sequence is ``VirtualClock.advance``
        minus the function call: same gate check, same ``cost_charged``
        update, same fast-path float arithmetic, and the bound
        ``_advance_slow`` for the event-crossing path (which fires
        tickers exactly as the real method does).  ``advance(0)`` is a
        no-op before the gate check, so zero constants emit nothing and
        runtime expressions guard with ``if cost:`` unless the caller
        proves them nonzero.
        """
        if isinstance(cost, (int, float)):
            if cost == 0:
                return
            if cost < 0:
                # Invalid config: keep the real method's ValueError.
                self.line(f"{self._adv()}({_lit(cost)}, {res})")
                return
            c = _lit(cost)
            guard = False
        elif cost.isidentifier():
            c = cost
            guard = maybe_zero
        else:
            c = self.fresh("c")
            self.line(f"{c} = {cost}")
            guard = maybe_zero
        clk = self._clk()
        cch = self._cch()
        slow = self._slow()
        rloc = "_rcpu" if res == "_CPU" else "_rio"

        def emit_body() -> None:
            # The gate check is specialized away when no gate is installed
            # at compile time: gates are installed by ConcurrentWorkload
            # before its workers compile their queries, and before_charge
            # is a no-op for every thread the gate has not registered, so
            # a query compiled gate-less can never owe a gate a charge.
            if self.ctx.clock.gate is not None:
                with self.block(f"if {clk}.gate is not None:"):
                    self.line(f"{clk}.gate.before_charge({c})")
            self.line(f"{cch}[{rloc}] += {c}")
            self.line(f"_end = {clk}.now + {c} * {clk}._factors[{rloc}]")
            with self.block(f"if _end < {clk}._next_event:"):
                self.line(f"{clk}.now = _end")
            with self.block("else:"):
                self.line(f"{slow}({c}, {rloc})")

        if guard:
            with self.block(f"if {c}:"):
                emit_body()
        else:
            emit_body()

    # tracker arithmetic, inlined (must mirror WorkTracker exactly) ------

    def _emit_input_rows(
        self, seg_id: int, idx: int, rows_expr: str, bytes_name: str
    ) -> None:
        """Inline ``tracker.input_rows(seg_id, idx, rows, bytes)``.

        ``bytes_name`` must be a variable name or literal (it is evaluated
        three times).  The float additions run in the method's exact
        order: input_bytes, done_bytes, total_done_bytes.
        """
        seg = self._seg(seg_id)
        ir, ib = self._seg_lists(seg_id)
        with self.block(f"if not {seg}.started:"):
            self.line(f"{self._tr_start()}({seg})")
        self.line(f"{ir}[{idx}] += {rows_expr}")
        self.line(f"{ib}[{idx}] += {bytes_name}")
        self.line(f"{seg}.done_bytes += {bytes_name}")
        self.line(f"{self._tr()}.total_done_bytes += {bytes_name}")

    def _emit_output_rows(self, seg_id: int, bytes_name: str) -> None:
        """Inline ``tracker.output_rows(seg_id, 1, bytes)``."""
        seg = self._seg(seg_id)
        with self.block(f"if not {seg}.started:"):
            self.line(f"{self._tr_start()}({seg})")
        self.line(f"{seg}.output_rows += 1")
        self.line(f"{seg}.output_bytes += {bytes_name}")
        if seg_id != self.tracker.final_segment:
            self.line(f"{seg}.done_bytes += {bytes_name}")
            self.line(f"{self._tr()}.total_done_bytes += {bytes_name}")

    # batch / pulse plumbing ---------------------------------------------

    def _emit_pulse(self) -> None:
        """Yield PULSE, flushing any pending output batch first."""
        with self.block("if nout:"):
            self.line("yield _B(out)")
            self.line("out = []")
            self.line("out_append = out.append")
            self.line("nout = 0")
        self.line("yield PULSE")

    def _driver(self, rowvar: str) -> None:
        self.line(f"out_append({rowvar})")
        self.line("nout += 1")
        with self.block(f"if nout >= {self.batch_rows}:"):
            self.line("yield _B(out)")
            self.line("out = []")
            self.line("out_append = out.append")
            self.line("nout = 0")

    # width arithmetic ----------------------------------------------------

    @staticmethod
    def _width_parts(types) -> tuple[float, List[int]]:
        """Split a row shape into (fixed width, variable string slots)."""
        fixed = float(TUPLE_HEADER_BYTES)
        var_slots: List[int] = []
        for i, t in enumerate(types):
            if isinstance(t, StringType):
                var_slots.append(i)
            else:
                fixed += t.width(None)
        return fixed, var_slots

    def _emit_width(self, rowvar: str, fixed: float, var_slots: List[int]) -> str:
        """Emit the exact row-width computation; return its value's name."""
        if not var_slots:
            return _lit(fixed)
        w = self.fresh("w")
        self.line(f"{w} = {_lit(fixed)}")
        for i in var_slots:
            v = self.fresh("v")
            self.line(f"{v} = {rowvar}[{i}]")
            self.line(f"{w} += 1.0 if {v} is None else 1.0 + len({v})")
        return w

    # expression helpers --------------------------------------------------

    def _key_expr(self, columns, keys, rowvar: str) -> str:
        slots = [layout_of(columns)[k] for k in keys]
        if len(slots) == 1:
            return f"{rowvar}[{slots[0]}]"
        return _tuple_display([f"{rowvar}[{s}]" for s in slots])

    def _combine_expr(self, left_cols, right_cols, out_cols, lvar, rvar) -> str:
        left_slots = layout_of(left_cols)
        right_slots = layout_of(right_cols)
        parts = []
        for col in out_cols:
            if col.coordinate in left_slots:
                parts.append(f"{lvar}[{left_slots[col.coordinate]}]")
            else:
                parts.append(f"{rvar}[{right_slots[col.coordinate]}]")
        return _tuple_display(parts)

    # fused expression source ---------------------------------------------
    #
    # Expression evaluation is *silent* computation (no clock, no tracker),
    # so the compiler is free to replace the nested-closure evaluators of
    # repro.expr.compiler with inline source — as long as the produced
    # value (including SQL NULL propagation) is identical.  Shapes the
    # source compiler does not cover fall back to the compiled closures.

    def _value_src(self, expr, slot: Callable[[int], str], layout) -> Optional[str]:
        """Source computing ``compile_expr(expr, layout)(row)``, or None.

        ``slot`` maps a layout slot index to the source of that slot's
        value.  NULL propagation matches the closures exactly: any NULL
        operand of a comparison/arithmetic node yields None.
        """
        if isinstance(expr, ColumnExpr):
            s = layout.get(expr.coordinate)
            if s is None:
                return None  # closure fallback raises the standard error
            return slot(s)
        if isinstance(expr, LiteralExpr):
            if type(expr.value) in _SAFE_LITERALS:
                return _lit(expr.value)
            return None
        if isinstance(expr, (ComparisonExpr, ArithmeticExpr)):
            table = _CMP_SRC if isinstance(expr, ComparisonExpr) else _ARITH_SRC
            op = table[expr.op]
            left = self._value_src(expr.left, slot, layout)
            right = self._value_src(expr.right, slot, layout)
            if left is None or right is None:
                return None
            checks = []
            if not _nonnull_literal(expr.left):
                t = self.fresh("t")
                checks.append(f"({t} := {left}) is None")
                left = t
            if not _nonnull_literal(expr.right):
                t = self.fresh("t")
                checks.append(f"({t} := {right}) is None")
                right = t
            if not checks:
                return f"({left} {op} {right})"
            return f"(None if {' or '.join(checks)} else {left} {op} {right})"
        if isinstance(expr, NegativeExpr):
            inner = self._value_src(expr.operand, slot, layout)
            if inner is None:
                return None
            if _nonnull_literal(expr.operand):
                return f"(-{inner})"
            t = self.fresh("t")
            return f"(None if ({t} := {inner}) is None else -{t})"
        return None

    def _pred_src(self, expr, slot: Callable[[int], str], layout) -> Optional[str]:
        """Boolean source equal to ``compile_predicate(expr, layout)(row)``.

        The predicate boundary collapses three-valued logic: the source
        is True exactly when the expression evaluates to True (NULL and
        False both reject the row), mirroring ``fn(row) is True``.
        """
        if isinstance(expr, ComparisonExpr):
            left = self._value_src(expr.left, slot, layout)
            right = self._value_src(expr.right, slot, layout)
            if left is None or right is None:
                return None
            op = _CMP_SRC[expr.op]
            conds = []
            if not _nonnull_literal(expr.left):
                t = self.fresh("t")
                conds.append(f"({t} := {left}) is not None")
                left = t
            if not _nonnull_literal(expr.right):
                t = self.fresh("t")
                conds.append(f"({t} := {right}) is not None")
                right = t
            conds.append(f"{left} {op} {right}")
            return "(" + " and ".join(conds) + ")"
        if isinstance(expr, LogicalExpr):
            # Conjunction is True iff every arg is True; disjunction iff
            # any is (NULL args only matter for the non-True outcomes,
            # which all reject the row).  Short-circuiting is fine: the
            # skipped evaluation is silent.
            parts = [self._pred_src(a, slot, layout) for a in expr.args]
            if any(p is None for p in parts):
                return None
            joiner = " and " if expr.op == "and" else " or "
            return "(" + joiner.join(parts) + ")"
        if isinstance(expr, NotExpr):
            inner = self._value_src(expr.operand, slot, layout)
            if inner is None:
                return None
            t = self.fresh("t")
            return f"(({t} := {inner}) is not None and not {t})"
        value = self._value_src(expr, slot, layout)
        if value is None:
            return None
        return f"({value} is True)"

    def _emit_predicates(
        self,
        filters,
        layout,
        rowvar: Optional[str],
        split: Optional[tuple[str, str, int]] = None,
    ) -> None:
        """Short-circuit predicate chain; skips the row via ``continue``.

        ``split=(left, right, nleft)`` evaluates predicates over the
        *virtual* concatenation of two row variables (join filter
        position) without materializing it; the concatenated tuple is
        built only if some predicate needs the closure fallback.
        Predicates run in plan order, exactly like the volcano chain.
        """
        if split is not None:
            lvar, rvar, nleft = split

            def slot(s: int) -> str:
                return f"{lvar}[{s}]" if s < nleft else f"{rvar}[{s - nleft}]"

            mvar = None
        else:

            def slot(s: int) -> str:
                return f"{rowvar}[{s}]"

            mvar = rowvar
        for f in filters:
            src = self._pred_src(f, slot, layout)
            if src is not None:
                with self.block(f"if not {src}:"):
                    self.line("continue")
                continue
            if mvar is None:
                mvar = self.fresh("m")
                self.line(f"{mvar} = {split[0]} + {split[1]}")
            pv = self.local(compile_predicate(f, layout), "p")
            with self.block(f"if not {pv}({mvar}):"):
                self.line("continue")

    # ------------------------------------------------------------------
    # top-level

    def compile(self, root: PhysicalNode) -> str:
        self._node(root, self._driver)
        lines = ["def _fused_run():"]
        lines.append("    out = []")
        lines.append("    out_append = out.append")
        lines.append("    nout = 0")
        lines.append("    _rcpu = _CPU")
        lines.append("    _rio = _IO")
        lines.extend("    " + p for p in self.pre)
        lines.extend(self.body)
        lines.append("    if out:")
        lines.append("        yield _B(out)")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # dispatch

    def _node(self, node: PhysicalNode, consume: Callable[[str], None]) -> None:
        if isinstance(node, HashAggregateNode):
            self._aggregate(node, consume)
        elif isinstance(node, DistinctNode):
            self._distinct(node, consume)
        elif isinstance(node, FilterNode):
            self._filter(node, consume)
        elif isinstance(node, SeqScanNode):
            self._seq_scan(node, consume)
        elif isinstance(node, IndexScanNode):
            self._index_scan(node, consume)
        elif isinstance(node, HashJoinNode):
            self._hash_join(node, consume)
        elif isinstance(node, NestLoopNode):
            self._nest_loop(node, consume)
        elif isinstance(node, MergeJoinNode):
            self._merge_join(node, consume)
        elif isinstance(node, SortNode):
            self._sort(node, consume)
        elif isinstance(node, ProjectNode):
            self._project(node, consume)
        elif isinstance(node, LimitNode):
            self._limit(node, consume)
        else:
            raise ExecutionError(
                f"no fused pipeline for plan node {type(node).__name__}"
            )

    # ------------------------------------------------------------------
    # sources

    def _seq_scan(self, node: SeqScanNode, consume) -> None:
        ctx = self.ctx
        cost = self.cost
        ref = getattr(node, "pi_input_ref", None)
        monitored = self.tracker is not None and ref is not None
        per_tuple = ctx.config.progress.scan_granularity != "page"
        handle = node.table.heap.handle
        layout = _scan_layout(node)
        slots = _projector(node)
        cpu_per_row = cost.cpu_tuple + len(node.filters) * cost.cpu_operator

        h = self.local(handle, "h")
        get = self.local(ctx.buffer_pool.get_page, "get")
        pin = self.local(ctx.buffer_pool.pin, "pin")
        unpin = self.local(ctx.buffer_pool.unpin, "unpin")
        pno = self.fresh("pno")
        pg = self.fresh("pg")
        rows = self.fresh("rows")
        n = self.fresh("n")
        r = self.fresh("r")
        with self.block(f"for {pno} in range({handle.num_pages}):"):
            self.line(f"{pg} = {get}({h}, {pno}, sequential=True)")
            self.line(f"{rows} = {pg}.rows")
            self.line(f"{n} = len({rows})")
            with self.block(f"if not {n}:"):
                self.line("continue")
            self.line(f"{pin}({h}, {pno})")
            with self.block("try:"):
                if cpu_per_row:
                    self._emit_advance(
                        f"{_lit(cpu_per_row)} * {n}", "_CPU", maybe_zero=False
                    )
                if monitored and per_tuple:
                    prb = self.fresh("prb")
                    self.line(f"{prb} = {pg}.bytes_used / {n}")
                if monitored and not per_tuple:
                    seg, idx = ref
                    self.line(
                        f"{self._tr_input()}({seg}, {idx}, {n}, {pg}.bytes_used)"
                    )
                with self.block(f"for {r} in {rows}:"):
                    if monitored and per_tuple:
                        seg, idx = ref
                        self._emit_input_rows(seg, idx, "1", prb)
                    self._emit_predicates(node.filters, layout, r)
                    if slots is None:
                        consume(r)
                    else:
                        o = self.fresh("o")
                        self.line(
                            f"{o} = "
                            + _tuple_display([f"{r}[{i}]" for i in slots])
                        )
                        consume(o)
                self._emit_pulse()
            with self.block("finally:"):
                self.line(f"{unpin}({h}, {pno})")

    def _index_scan(self, node: IndexScanNode, consume) -> None:
        ctx = self.ctx
        cost = self.cost
        ref = getattr(node, "pi_input_ref", None)
        monitored = self.tracker is not None and ref is not None
        index = node.index
        heap_handle = node.table.heap.handle
        schema = node.table.schema
        layout = _scan_layout(node)
        slots = _projector(node)
        per_row_cpu = cost.cpu_tuple + len(node.filters) * cost.cpu_operator

        self._emit_advance(index.height * cost.random_page_read, "_IO")
        self._emit_advance(index.height * cost.cpu_index_level, "_CPU")

        search = self.local(
            index.search_range(
                node.low, node.high, node.low_inclusive, node.high_inclusive
            ),
            "search",
        )
        hh = self.local(heap_handle, "hh")
        get = self.local(ctx.buffer_pool.get_page, "get")
        pin = self.local(ctx.buffer_pool.pin, "pin")
        unpin = self.local(ctx.buffer_pool.unpin, "unpin")
        rw = self.local(schema.row_width, "rw")
        seen = self.fresh("seen")
        k = self.fresh("k")
        rid = self.fresh("rid")
        pno = self.fresh("pno")
        slot = self.fresh("slot")
        pg = self.fresh("pg")
        r = self.fresh("r")
        self.line(f"{seen} = 0")
        with self.block(f"for {k}, {rid} in {search}:"):
            with self.block(f"if {seen} % {index.fanout} == 0:"):
                self._emit_advance(cost.seq_page_read, "_IO")
                with self.block(f"if {seen}:"):
                    self._emit_pulse()
            self.line(f"{seen} += 1")
            self.line(f"{pno}, {slot} = {rid}")
            self.line(f"{pg} = {get}({hh}, {pno}, sequential=False)")
            self.line(f"{pin}({hh}, {pno})")
            with self.block("try:"):
                self.line(f"{r} = {pg}.rows[{slot}]")
                self._emit_advance(per_row_cpu, "_CPU")
                if monitored:
                    seg, idx = ref
                    b = self.fresh("b")
                    self.line(f"{b} = {rw}({r})")
                    self._emit_input_rows(seg, idx, "1", b)
                self._emit_predicates(node.filters, layout, r)
                if slots is None:
                    consume(r)
                else:
                    o = self.fresh("o")
                    self.line(
                        f"{o} = " + _tuple_display([f"{r}[{i}]" for i in slots])
                    )
                    consume(o)
            with self.block("finally:"):
                self.line(f"{unpin}({hh}, {pno})")

    def _merge_join(self, node: MergeJoinNode, consume) -> None:
        # Not fused: the volcano operator runs as a row source and
        # everything above it is fused.  Its children are volcano
        # operators too (built by MergeJoinOp itself).
        from repro.executor.merge_join import MergeJoinOp

        op = MergeJoinOp(node, self.ctx)
        self.ops.append(op)
        opv = self.local(op, "mj")
        it = self.fresh("it")
        with self.block(f"for {it} in {opv}.rows():"):
            with self.block(f"if {it} is PULSE:"):
                self._emit_pulse()
                self.line("continue")
            consume(it)

    # ------------------------------------------------------------------
    # streaming stages

    def _project(self, node: ProjectNode, consume) -> None:
        cost = self.cost
        segment = getattr(node, "pi_output_segment", None)
        monitored = self.tracker is not None and segment is not None
        layout = {c.coordinate: i for i, c in enumerate(node.child.columns)}
        computed = sum(1 for e in node.exprs if not isinstance(e, ColumnExpr))
        per_row = cost.cpu_tuple + computed * cost.cpu_operator
        # ProjectOp folds its fixed width as header + sum(...) — mirror that
        # exact float-addition order, not row_width_fn's incremental one.
        var_slots = [
            i for i, e in enumerate(node.exprs) if isinstance(e.type, StringType)
        ]
        fixed = float(TUPLE_HEADER_BYTES) + sum(
            e.type.width(None)
            for e in node.exprs
            if not isinstance(e.type, StringType)
        )

        # Expressions fuse into one output tuple display — column
        # references and simple computations become inline source, the
        # rest keep their compiled closures.  No per-expression hop.
        # An identity projection (every input slot passed through in
        # order) reuses the input tuple outright: every row in the engine
        # is an immutable tuple, so the rebuilt copy volcano makes is
        # observationally the same object.
        identity = len(node.exprs) == len(node.child.columns) and all(
            isinstance(e, ColumnExpr) and layout.get(e.coordinate) == i
            for i, e in enumerate(node.exprs)
        )
        closures: dict[int, str] = {}

        def part_src(i, e, rowvar: str) -> str:
            src = self._value_src(e, lambda s: f"{rowvar}[{s}]", layout)
            if src is not None:
                return src
            name = closures.get(i)
            if name is None:
                name = closures[i] = self.local(compile_expr(e, layout), "fn")
            return f"{name}({rowvar})"

        def stage(rowvar: str) -> None:
            self._emit_advance(per_row, "_CPU")
            if identity:
                o = rowvar
            else:
                parts = [
                    part_src(i, e, rowvar) for i, e in enumerate(node.exprs)
                ]
                o = self.fresh("o")
                self.line(f"{o} = " + _tuple_display(parts))
            if monitored:
                w = self._emit_width(o, fixed, var_slots)
                self._emit_output_rows(segment, w)
            consume(o)

        self._node(node.child, stage)

    def _filter(self, node: FilterNode, consume) -> None:
        layout = layout_of(node.child.columns)
        per_row = len(node.predicates) * self.cost.cpu_operator

        def stage(rowvar: str) -> None:
            self._emit_advance(per_row, "_CPU")
            self._emit_predicates(node.predicates, layout, rowvar)
            consume(rowvar)

        self._node(node.child, stage)

    def _distinct(self, node: DistinctNode, consume) -> None:
        per_row = self.cost.cpu_hash
        seen = self.fresh("seen")
        add = self.fresh("seenadd")
        self.line(f"{seen} = set()")
        self.line(f"{add} = {seen}.add")

        def stage(rowvar: str) -> None:
            self._emit_advance(per_row, "_CPU")
            with self.block(f"if {rowvar} in {seen}:"):
                self.line("continue")
            self.line(f"{add}({rowvar})")
            consume(rowvar)

        self._node(node.child, stage)

    def _limit(self, node: LimitNode, consume) -> None:
        if node.limit <= 0:
            # The volcano LimitOp never pulls its child; emit nothing.
            return
        rem = self.fresh("rem")
        self.line(f"{rem} = {node.limit}")

        def stage(rowvar: str) -> None:
            consume(rowvar)
            self.line(f"{rem} -= 1")
            with self.block(f"if {rem} <= 0:"):
                self.line("raise _Stop")

        with self.block("try:"):
            self._node(node.child, stage)
        with self.block("except _Stop:"):
            self.line("pass")

    # ------------------------------------------------------------------
    # hash join

    def _hash_join(self, node: HashJoinNode, consume) -> None:
        if node.num_batches == 1:
            self._hash_join_memory(node, consume)
        else:
            self._hash_join_partitioned(node, consume)

    def _build_row_update(
        self, rowvar: str, key_expr: str, table: str, tget: str
    ) -> None:
        """Shared build-side hash-table insert (NULL keys never join)."""
        k = self.fresh("k")
        bkt = self.fresh("bkt")
        self.line(f"{k} = {key_expr}")
        with self.block(f"if {k} is not None:"):
            self.line(f"{bkt} = {tget}({k})")
            with self.block(f"if {bkt} is None:"):
                self.line(f"{table}[{k}] = [{rowvar}]")
            with self.block("else:"):
                self.line(f"{bkt}.append({rowvar})")

    def _probe_row(
        self, node: HashJoinNode, rowvar: str, table_get: str, consume
    ) -> None:
        """Per-probe-row code: key lookup, bucket charge, match emission."""
        cost = self.cost
        layout = None
        if node.extra_filters:
            from repro.executor.rowops import concat_layout

            layout = concat_layout(node.build.columns, node.probe.columns)
        per_match = cost.cpu_tuple + len(node.extra_filters) * cost.cpu_operator
        k = self.fresh("k")
        bkt = self.fresh("bkt")
        br = self.fresh("br")
        self.line(
            f"{k} = " + self._key_expr(node.probe.columns, node.probe_keys, rowvar)
        )
        with self.block(f"if {k} is None:"):
            self.line("continue")
        self.line(f"{bkt} = {table_get}({k})")
        with self.block(f"if {bkt} is None:"):
            self.line("continue")
        if per_match:
            self._emit_advance(
                f"{_lit(per_match)} * len({bkt})", "_CPU", maybe_zero=False
            )
        combine = self._combine_expr(
            node.build.columns, node.probe.columns, node.columns, br, rowvar
        )
        with self.block(f"for {br} in {bkt}:"):
            if node.extra_filters:
                self._emit_predicates(
                    node.extra_filters,
                    layout,
                    None,
                    split=(br, rowvar, len(node.build.columns)),
                )
            o = self.fresh("o")
            self.line(f"{o} = {combine}")
            consume(o)

    def _hash_join_memory(self, node: HashJoinNode, consume) -> None:
        cost = self.cost
        build_segment = getattr(node, "pi_build_segment", None)
        hash_ref = getattr(node, "pi_hash_input_ref", None)
        mon_build = self.tracker is not None and build_segment is not None
        fixed, var_slots = self._width_parts(
            [c.type for c in node.build.columns]
        )
        table = self.fresh("tbl")
        tget = self.fresh("tget")
        trows = self.fresh("trows")
        tbytes = self.fresh("tbytes")
        self.line(f"{table} = {{}}")
        self.line(f"{tget} = {table}.get")
        self.line(f"{trows} = 0")
        self.line(f"{tbytes} = 0.0")

        def build_sink(rowvar: str) -> None:
            self._emit_advance(cost.cpu_hash, "_CPU")
            w = self._emit_width(rowvar, fixed, var_slots)
            if not var_slots:
                wv = self.fresh("w")
                self.line(f"{wv} = {w}")
                w = wv
            self.line(f"{trows} += 1")
            self.line(f"{tbytes} += {w}")
            if mon_build:
                self._emit_output_rows(build_segment, w)
            self._build_row_update(
                rowvar,
                self._key_expr(node.build.columns, node.build_keys, rowvar),
                table,
                tget,
            )

        self._node(node.build, build_sink)
        if mon_build:
            self.line(f"{self._tr_segfin()}({build_segment})")
        if self.tracker is not None and hash_ref is not None:
            # The probe segment "handles" the hash table once as it starts.
            self.line(
                f"{self._tr_input()}"
                f"({hash_ref[0]}, {hash_ref[1]}, {trows}, {tbytes})"
            )

        def probe_stage(rowvar: str) -> None:
            self._emit_advance(cost.cpu_hash, "_CPU")
            self._probe_row(node, rowvar, tget, consume)

        self._node(node.probe, probe_stage)

    def _hash_join_partitioned(self, node: HashJoinNode, consume) -> None:
        ctx = self.ctx
        cost = self.cost
        nb = node.num_batches
        mk = self.local(_make_partitions, "mkparts")
        ctxv = self.local(ctx, "ctx")
        temps = self.local(self.temps, "temps")
        sh = self.local(_stable_hash, "sh")

        def partition(child, columns, keys, segment, name: str) -> str:
            monitored = self.tracker is not None and segment is not None
            fixed, var_slots = self._width_parts([c.type for c in columns])
            cols = self.local(columns, "cols")
            parts = self.fresh("parts")
            apps = self.fresh("apps")
            self.line(f"{parts} = {mk}({ctxv}, {temps}, {cols}, {nb}, {name!r})")
            self.line(f"{apps} = [p.append for p in {parts}]")

            def sink(rowvar: str) -> None:
                self._emit_advance(cost.cpu_hash, "_CPU")
                k = self.fresh("k")
                self.line(
                    f"{k} = " + self._key_expr(columns, keys, rowvar)
                )
                b = self.fresh("b")
                self.line(
                    f"{b} = {sh}({k}) % {nb} if {k} is not None else 0"
                )
                self.line(f"{apps}[{b}]({rowvar})")
                if monitored:
                    w = self._emit_width(rowvar, fixed, var_slots)
                    self._emit_output_rows(segment, w)

            self._node(child, sink)
            p = self.fresh("p")
            with self.block(f"for {p} in {parts}:"):
                self.line(f"{p}.flush()")
            if monitored:
                self.line(f"{self._tr_segfin()}({segment})")
            return parts

        build_parts = partition(
            node.build,
            node.build.columns,
            node.build_keys,
            getattr(node, "pi_build_segment", None),
            f"hj_build_{id(node)}",
        )
        probe_parts = partition(
            node.probe,
            node.probe.columns,
            node.probe_keys,
            getattr(node, "pi_probe_segment", None),
            f"hj_probe_{id(node)}",
        )

        pa_ref = getattr(node, "pi_pa_input_ref", None)
        pb_ref = getattr(node, "pi_pb_input_ref", None)
        dread = self.local(ctx.disk.read_page, "dread")

        def read_partition(handle_expr: str, ref, per_row) -> None:
            """Page loop over one spilled partition; ``per_row`` emits the
            consumer's code for each row (mirrors ``_read_partition``)."""
            h = self.fresh("h")
            pno = self.fresh("pno")
            pg = self.fresh("pg")
            n = self.fresh("n")
            r = self.fresh("r")
            self.line(f"{h} = {handle_expr}")
            with self.block(f"for {pno} in range({h}.num_pages):"):
                self.line(f"{pg} = {dread}({h}, {pno}, sequential=True)")
                self.line(f"{n} = len({pg}.rows)")
                if cost.cpu_tuple:
                    with self.block(f"if {n}:"):
                        self._emit_advance(
                            f"{_lit(cost.cpu_tuple)} * {n}",
                            "_CPU",
                            maybe_zero=False,
                        )
                if self.tracker is not None and ref is not None:
                    self.line(
                        f"{self._tr_input()}"
                        f"({ref[0]}, {ref[1]}, {n}, {pg}.bytes_used)"
                    )
                with self.block(f"for {r} in {pg}.rows:"):
                    per_row(r)
                self._emit_pulse()

        b = self.fresh("b")
        table = self.fresh("tbl")
        tget = self.fresh("tget")
        with self.block(f"for {b} in range({nb}):"):
            self.line(f"{table} = {{}}")
            self.line(f"{tget} = {table}.get")

            def build_row(rowvar: str) -> None:
                self._emit_advance(cost.cpu_hash, "_CPU")
                self._build_row_update(
                    rowvar,
                    self._key_expr(node.build.columns, node.build_keys, rowvar),
                    table,
                    tget,
                )

            read_partition(f"{build_parts}[{b}].handle", pa_ref, build_row)

            def probe_row(rowvar: str) -> None:
                self._emit_advance(cost.cpu_hash, "_CPU")
                self._probe_row(node, rowvar, tget, consume)

            read_partition(f"{probe_parts}[{b}].handle", pb_ref, probe_row)

    # ------------------------------------------------------------------
    # nested loops join

    def _nest_loop(self, node: NestLoopNode, consume) -> None:
        ctx = self.ctx
        cost = self.cost
        inner_ref = getattr(node, "pi_inner_input_ref", None)
        fixed, var_slots = self._width_parts(
            [c.type for c in node.inner.columns]
        )
        layout = None
        if node.predicates:
            from repro.executor.rowops import concat_layout

            layout = concat_layout(node.outer.columns, node.inner.columns)

        inner = self.fresh("inner")
        iapp = self.fresh("iapp")
        ibytes = self.fresh("ibytes")
        self.line(f"{inner} = []")
        self.line(f"{iapp} = {inner}.append")
        self.line(f"{ibytes} = 0.0")

        def inner_sink(rowvar: str) -> None:
            self._emit_advance(cost.cpu_tuple, "_CPU")
            w = self._emit_width(rowvar, fixed, var_slots)
            self.line(f"{ibytes} += {w}")
            self.line(f"{iapp}({rowvar})")

        self._node(node.inner, inner_sink)
        if self.tracker is not None and inner_ref is not None:
            self.line(
                f"{self._tr_input()}({inner_ref[0]}, {inner_ref[1]}, "
                f"len({inner}), {ibytes})"
            )

        poc = self.fresh("poc")
        rio = self.fresh("rio")
        first = self.fresh("first")
        self.line(
            f"{poc} = len({inner}) * {_lit(cost.cpu_operator)}"
            f" * {max(1, len(node.predicates))}"
        )
        self.line(f"{rio} = 0.0")
        with self.block(f"if {ibytes} > {_lit(ctx.work_mem_bytes)}:"):
            self.line(
                f"{rio} = ({ibytes} / {ctx.config.page_size})"
                f" * {_lit(cost.seq_page_read)}"
            )
        self.line(f"{first} = True")

        ir = self.fresh("ir")
        combine = self._combine_expr(
            node.outer.columns, node.inner.columns, node.columns, "OUTER", ir
        )

        def outer_stage(rowvar: str) -> None:
            self._emit_advance(poc, "_CPU")
            with self.block(f"if {rio} and not {first}:"):
                self._emit_advance(rio, "_IO", maybe_zero=False)
            self.line(f"{first} = False")
            with self.block(f"for {ir} in {inner}:"):
                if node.predicates:
                    self._emit_predicates(
                        node.predicates,
                        layout,
                        None,
                        split=(rowvar, ir, len(node.outer.columns)),
                    )
                o = self.fresh("o")
                self.line(f"{o} = " + combine.replace("OUTER", rowvar))
                consume(o)

        self._node(node.outer, outer_stage)

    # ------------------------------------------------------------------
    # sort

    def _sort(self, node: SortNode, consume) -> None:
        ctx = self.ctx
        cost = self.cost
        helper = _FusedSort(node, ctx)
        self.sorts.append(helper)
        hv = self.local(helper, "sort")
        keyv = self.local(helper.key, "skey")
        segment = helper.segment
        ref = helper.merge_ref
        mon_out = self.tracker is not None and segment is not None
        mon_in = self.tracker is not None and ref is not None
        fixed, var_slots = self._width_parts([c.type for c in node.columns])

        buf = self.fresh("buf")
        bapp = self.fresh("bapp")
        bbytes = self.fresh("bbytes")
        self.line(f"{buf} = []")
        self.line(f"{bapp} = {buf}.append")
        self.line(f"{bbytes} = 0.0")

        def absorb(rowvar: str) -> None:
            self._emit_advance(cost.cpu_tuple, "_CPU")
            w = self._emit_width(rowvar, fixed, var_slots)
            if mon_out:
                self._emit_output_rows(segment, w)
            self.line(f"{bapp}({rowvar})")
            self.line(f"{bbytes} += {w}")
            with self.block(f"if {bbytes} > {_lit(ctx.work_mem_bytes)}:"):
                self.line(f"yield from {hv}.spill({buf})")
                self.line(f"{buf} = []")
                self.line(f"{bapp} = {buf}.append")
                self.line(f"{bbytes} = 0.0")

        self._node(node.child, absorb)

        mem = self.fresh("mem")
        self.line(f"{mem} = None")
        with self.block(f"if {hv}.runs:"):
            with self.block(f"if {buf}:"):
                self.line(f"yield from {hv}.spill({buf})")
            self.line(f"yield from {hv}.collapse()")
        with self.block("else:"):
            self.line(f"yield from {hv}.sort_buffer({buf})")
            self.line(f"{mem} = {buf}")
        if mon_out:
            self.line(f"{self._tr_segfin()}({segment})")

        r = self.fresh("r")
        st = self.fresh("st")
        with self.block(f"if {mem} is not None:"):
            with self.block(f"for {st}, {r} in enumerate({mem}, 1):"):
                self._emit_advance(cost.cpu_tuple, "_CPU")
                if mon_in:
                    w = self._emit_width(r, fixed, var_slots)
                    self._emit_input_rows(ref[0], ref[1], "1", w)
                # The single-pass loop gives a consumer's ``continue``
                # (filter/distinct row drop) a target that still falls
                # through to the pulse-cadence check below, exactly like
                # the volcano sort whose pulses don't depend on parents.
                with self.block("for _sk in _ONE:"):
                    consume(r)
                with self.block(f"if {st} % {_MERGE_PULSE_ROWS} == 0:"):
                    self._emit_pulse()
        with self.block("else:"):
            cmp_ = self.fresh("cmp")
            merged = self.fresh("merged")
            self.line(
                f"{cmp_} = {_lit(cost.cpu_compare)}"
                f" * max(1, len({hv}.runs)).bit_length()"
            )
            self.line(f"{merged} = 0")
            with self.block(
                f"for {r} in heapq.merge("
                f"*({hv}.read_run(rr) for rr in {hv}.runs), key={keyv}):"
            ):
                self._emit_advance(cmp_, "_CPU")
                with self.block("for _sk in _ONE:"):
                    consume(r)
                self.line(f"{merged} += 1")
                with self.block(f"if {merged} % {_MERGE_PULSE_ROWS} == 0:"):
                    self._emit_pulse()

    # ------------------------------------------------------------------
    # hash aggregation

    def _aggregate(self, node: HashAggregateNode, consume) -> None:
        from repro.executor.aggregate import HashAggregateOp, _AggState
        from repro.executor.rowops import row_width_fn

        cost = self.cost
        segment = getattr(node, "pi_agg_segment", None)
        groups_ref = getattr(node, "pi_groups_input_ref", None)
        mon_seg = self.tracker is not None and segment is not None
        mon_ref = self.tracker is not None and groups_ref is not None
        child_layout = layout_of(node.child.columns)
        key_slots = [child_layout[k] for k in node.group_keys]
        for agg in node.aggregates:
            if not isinstance(agg, AggregateExpr):
                raise ExecutionError("aggregate node holds a non-aggregate")
        kinds = [a.kind for a in node.aggregates]
        na = len(node.aggregates)
        per_row = cost.cpu_hash + na * cost.cpu_operator
        statev = self.local(_AggState, "AggState")
        finv = self.local(HashAggregateOp._finalize, "aggfin")
        wfv = self.local(row_width_fn(node.columns), "aggw")
        arg_closures: dict[int, str] = {}

        def arg_src(i: int, rowvar: str) -> Optional[str]:
            """Inline source of aggregate i's argument (None = count(*))."""
            arg = node.aggregates[i].arg
            if arg is None:
                return None
            src = self._value_src(
                arg, lambda s: f"{rowvar}[{s}]", child_layout
            )
            if src is not None:
                return src
            name = arg_closures.get(i)
            if name is None:
                name = arg_closures[i] = self.local(
                    compile_expr(arg, child_layout), "afn"
                )
            return f"{name}({rowvar})"

        groups = self.fresh("groups")
        gget = self.fresh("gget")
        grows = self.fresh("grows")
        st0 = self.fresh("st0")
        self.line(f"{groups} = {{}}")
        self.line(f"{gget} = {groups}.get")
        self.line(f"{grows} = {{}}")
        if not node.group_keys:
            # Single-group aggregation keeps its one state in a local
            # instead of hashing the empty key per row (silent work).
            self.line(f"{st0} = None")

        def key_expr(rowvar: str) -> str:
            if not key_slots:
                return "()"
            if len(key_slots) == 1:
                return f"{rowvar}[{key_slots[0]}]"
            return _tuple_display([f"{rowvar}[{s}]" for s in key_slots])

        def absorb(rowvar: str) -> None:
            self._emit_advance(per_row, "_CPU")
            if not node.group_keys:
                st = st0
                with self.block(f"if {st} is None:"):
                    self.line(f"{st} = {statev}({na})")
                    self.line(f"{groups}[()] = {st}")
                    self.line(f"{grows}[()] = {rowvar}")
            else:
                k = self.fresh("k")
                st = self.fresh("st")
                self.line(f"{k} = {key_expr(rowvar)}")
                self.line(f"{st} = {gget}({k})")
                with self.block(f"if {st} is None:"):
                    self.line(f"{st} = {statev}({na})")
                    self.line(f"{groups}[{k}] = {st}")
                    self.line(f"{grows}[{k}] = {rowvar}")
            for i in range(na):
                src = arg_src(i, rowvar)
                if src is None:  # count(*)
                    self.line(f"{st}.counts[{i}] += 1")
                    continue
                v = self.fresh("v")
                self.line(f"{v} = {src}")
                with self.block(f"if {v} is not None:"):  # aggregates skip NULLs
                    self.line(f"{st}.counts[{i}] += 1")
                    kind = kinds[i]
                    if kind in ("sum", "avg"):
                        self.line(f"{st}.sums[{i}] += {v}")
                    elif kind == "min":
                        with self.block(
                            f"if {st}.mins[{i}] is None"
                            f" or {v} < {st}.mins[{i}]:"
                        ):
                            self.line(f"{st}.mins[{i}] = {v}")
                    elif kind == "max":
                        with self.block(
                            f"if {st}.maxs[{i}] is None"
                            f" or {v} > {st}.maxs[{i}]:"
                        ):
                            self.line(f"{st}.maxs[{i}] = {v}")

        self._node(node.child, absorb)

        if not node.group_keys:
            # Global aggregates over an empty input still produce one row.
            with self.block(f"if {st0} is None:"):
                self.line(f"{groups}[()] = {statev}({na})")
                self.line(f"{grows}[()] = None")

        output = self.fresh("outputs")
        oapp = self.fresh("oapp")
        k = self.fresh("k")
        st = self.fresh("st")
        br = self.fresh("br")
        vals = self.fresh("vals")
        o = self.fresh("o")
        self.line(f"{output} = []")
        self.line(f"{oapp} = {output}.append")
        with self.block(f"for {k}, {st} in {groups}.items():"):
            self.line(f"{br} = {grows}[{k}]")
            with self.block(f"if {br} is not None:"):
                self.line(
                    f"{vals} = ["
                    + ", ".join(f"{br}[{s}]" for s in key_slots)
                    + "]"
                )
            with self.block("else:"):
                self.line(f"{vals} = []")
            for i, kind in enumerate(kinds):
                self.line(f"{vals}.append({finv}({kind!r}, {st}, {i}))")
            self.line(f"{o} = tuple({vals})")
            self._emit_advance(cost.cpu_tuple, "_CPU")
            if mon_seg:
                w = self.fresh("w")
                self.line(f"{w} = {wfv}({o})")
                self._emit_output_rows(segment, w)
            self.line(f"{oapp}({o})")
        if mon_seg:
            self.line(f"{self._tr_segfin()}({segment})")

        def stream() -> None:
            with self.block(f"for {o} in {output}:"):
                self._emit_advance(cost.cpu_tuple, "_CPU")
                if mon_ref:
                    w = self.fresh("w")
                    self.line(f"{w} = {wfv}({o})")
                    self._emit_input_rows(groups_ref[0], groups_ref[1], "1", w)
                consume(o)

        stream()


class FusedQuery:
    """A compiled fused program for one plan, plus its cleanup state."""

    def __init__(self, root: PhysicalNode, ctx: ExecContext):
        compiler = _Compiler(ctx, ctx.config.progress.batch_rows)
        source = compiler.compile(root)
        #: Generated source, kept for debugging / inspection.
        self.source = source
        self._ops = compiler.ops
        self._sorts = compiler.sorts
        self._temps = compiler.temps
        env = compiler.env
        code = compile(source, "<fused-plan>", "exec")
        exec(code, env)  # noqa: S102 - engine-generated source, no user input
        self._gen = env["_fused_run"]()

    def run(self) -> Iterator:
        """The program's item stream: Batch objects and PULSE markers."""
        return self._gen

    def close(self) -> None:
        """Release resources: pins (via generator unwind), temps, operators."""
        self._gen.close()
        for op in self._ops:
            op.close()
        for sort in self._sorts:
            sort.drop()
        for f in self._temps:
            f.drop()
        self._temps.clear()


class _Block:
    """Indentation context for :class:`_Compiler` (with-statement helper)."""

    def __init__(self, compiler: _Compiler):
        self._c = compiler

    def __enter__(self) -> "_Block":
        self._c.depth += 1
        return self

    def __exit__(self, *exc) -> None:
        self._c.depth -= 1
