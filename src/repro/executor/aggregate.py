"""Hash aggregation and standalone filtering.

:class:`HashAggregateOp` is a blocking operator: it drains its child into
a hash table of per-group accumulator states, then streams the finalized
group rows.  For the progress indicator this is a segment boundary
exactly like a hash build or a sort — the paper's segment model extends
to grouped queries with no new machinery (this is part of the "wider
classes of queries" future work of Section 6).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import ExecutionError
from repro.executor.base import PULSE, ExecContext, Operator, build_operator
from repro.executor.rowops import layout_of, row_width_fn
from repro.expr.bound import AggregateExpr
from repro.expr.compiler import compile_expr, compile_predicate
from repro.planner.physical import FilterNode, HashAggregateNode
from repro.sim.load import CPU


class _AggState:
    """Accumulator for one group: one slot per aggregate."""

    __slots__ = ("counts", "sums", "mins", "maxs")

    def __init__(self, num_aggs: int):
        self.counts = [0] * num_aggs
        self.sums = [0.0] * num_aggs
        self.mins: list[Any] = [None] * num_aggs
        self.maxs: list[Any] = [None] * num_aggs


class HashAggregateOp(Operator):
    def __init__(self, node: HashAggregateNode, ctx: ExecContext):
        super().__init__(node, ctx)
        self._child = build_operator(node.child, ctx)
        child_layout = layout_of(node.child.columns)
        key_slots = [child_layout[k] for k in node.group_keys]
        if not key_slots:
            self._key = lambda row: ()
        elif len(key_slots) == 1:
            slot = key_slots[0]
            self._key = lambda row: row[slot]
        else:
            self._key = lambda row: tuple(row[s] for s in key_slots)
        self._key_slots = key_slots
        self._arg_fns = []
        for agg in node.aggregates:
            if not isinstance(agg, AggregateExpr):
                raise ExecutionError("aggregate node holds a non-aggregate")
            if agg.arg is None:
                self._arg_fns.append(None)  # count(*)
            else:
                self._arg_fns.append(compile_expr(agg.arg, child_layout))
        self._width = row_width_fn(node.columns)

    def rows(self) -> Iterator[tuple]:
        node = self.node
        ctx = self.ctx
        cost = ctx.config.cost
        tracker = ctx.tracker
        segment = getattr(node, "pi_agg_segment", None)
        groups_ref = getattr(node, "pi_groups_input_ref", None)

        key_fn = self._key
        arg_fns = self._arg_fns
        kinds = [a.kind for a in node.aggregates]
        per_row = cost.cpu_hash + len(arg_fns) * cost.cpu_operator

        # ---- blocking phase: drain the child into group states --------
        groups: dict = {}
        group_rows: dict = {}
        saw_input = False
        for row in self._child.rows():
            if row is PULSE:
                yield row
                continue
            saw_input = True
            ctx.clock.advance(per_row, CPU)
            key = key_fn(row)
            state = groups.get(key)
            if state is None:
                state = _AggState(len(arg_fns))
                groups[key] = state
                group_rows[key] = row
            for i, fn in enumerate(arg_fns):
                if fn is None:  # count(*)
                    state.counts[i] += 1
                    continue
                value = fn(row)
                if value is None:
                    continue  # aggregates skip NULLs
                state.counts[i] += 1
                kind = kinds[i]
                if kind in ("sum", "avg"):
                    state.sums[i] += value
                elif kind == "min":
                    if state.mins[i] is None or value < state.mins[i]:
                        state.mins[i] = value
                elif kind == "max":
                    if state.maxs[i] is None or value > state.maxs[i]:
                        state.maxs[i] = value

        # Global aggregates over an empty input still produce one row.
        if not node.group_keys and not saw_input:
            groups[()] = _AggState(len(arg_fns))
            group_rows[()] = None

        # ---- finalize: build output rows, count them as segment output
        output: list[tuple] = []
        for key, state in groups.items():
            base_row = group_rows[key]
            values: list[Any] = [
                base_row[s] for s in self._key_slots
            ] if base_row is not None else []
            for i, kind in enumerate(kinds):
                values.append(self._finalize(kind, state, i))
            out = tuple(values)
            ctx.clock.advance(cost.cpu_tuple, CPU)
            if tracker is not None and segment is not None:
                tracker.output_rows(segment, 1, self._width(out))
            output.append(out)
        if tracker is not None and segment is not None:
            tracker.segment_finished(segment)

        # ---- streaming phase: the consumer segment reads the groups ---
        width_fn = self._width
        for out in output:
            ctx.clock.advance(cost.cpu_tuple, CPU)
            if tracker is not None and groups_ref is not None:
                tracker.input_rows(groups_ref[0], groups_ref[1], 1, width_fn(out))
            yield out

    @staticmethod
    def _finalize(kind: str, state: _AggState, i: int):
        if kind == "count":
            return state.counts[i]
        if kind == "sum":
            return state.sums[i] if state.counts[i] else None
        if kind == "avg":
            return state.sums[i] / state.counts[i] if state.counts[i] else None
        if kind == "min":
            return state.mins[i]
        if kind == "max":
            return state.maxs[i]
        raise ExecutionError(f"unknown aggregate kind {kind!r}")

    def close(self) -> None:
        self._child.close()


class FilterOp(Operator):
    """Evaluates standalone predicates (HAVING) over child rows."""

    def __init__(self, node: FilterNode, ctx: ExecContext):
        super().__init__(node, ctx)
        self._child = build_operator(node.child, ctx)
        layout = layout_of(node.child.columns)
        self._predicates = [compile_predicate(p, layout) for p in node.predicates]

    def rows(self) -> Iterator[tuple]:
        ctx = self.ctx
        per_row = len(self._predicates) * ctx.config.cost.cpu_operator
        predicates = self._predicates
        for row in self._child.rows():
            if row is PULSE:
                yield row
                continue
            ctx.clock.advance(per_row, CPU)
            keep = True
            for predicate in predicates:
                if not predicate(row):
                    keep = False
                    break
            if keep:
                yield row

    def close(self) -> None:
        self._child.close()
