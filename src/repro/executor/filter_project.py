"""Projection and LIMIT operators (top of every plan)."""

from __future__ import annotations

from typing import Iterator

from repro.executor.base import PULSE, ExecContext, Operator, build_operator
from repro.expr.compiler import compile_expr
from repro.planner.physical import LimitNode, ProjectNode
from repro.sim.load import CPU
from repro.storage.schema import TUPLE_HEADER_BYTES
from repro.storage.types import StringType


class ProjectOp(Operator):
    """Computes the SELECT-list expressions.

    Always the top of the pipeline that forms the plan's *final* segment:
    it reports output cardinality/width to the tracker for the indicator's
    statistics, but those bytes are not counted as work (the paper excludes
    the final result returned to the user).
    """

    def __init__(self, node: ProjectNode, ctx: ExecContext):
        super().__init__(node, ctx)
        self._child = build_operator(node.child, ctx)
        layout = {c.coordinate: i for i, c in enumerate(node.child.columns)}
        self._fns = [compile_expr(e, layout) for e in node.exprs]
        self._string_slots = [
            i for i, e in enumerate(node.exprs) if isinstance(e.type, StringType)
        ]
        self._fixed_width = float(TUPLE_HEADER_BYTES) + sum(
            e.type.width(None)
            for e in node.exprs
            if not isinstance(e.type, StringType)
        )

    def _width(self, row: tuple) -> float:
        w = self._fixed_width
        for i in self._string_slots:
            v = row[i]
            w += 1.0 if v is None else 1.0 + len(v)
        return w

    def rows(self) -> Iterator[tuple]:
        ctx = self.ctx
        tracker = ctx.tracker
        segment = getattr(self.node, "pi_output_segment", None)
        # Plain column references are near-free slot copies; only computed
        # expressions pay the per-operator CPU cost.
        from repro.expr.bound import ColumnExpr

        computed = sum(
            1 for e in self.node.exprs if not isinstance(e, ColumnExpr)
        )
        per_row = (
            ctx.config.cost.cpu_tuple + computed * ctx.config.cost.cpu_operator
        )
        fns = self._fns
        for row in self._child.rows():
            if row is PULSE:
                yield row
                continue
            ctx.clock.advance(per_row, CPU)
            out = tuple(fn(row) for fn in fns)
            if tracker is not None and segment is not None:
                tracker.output_rows(segment, 1, self._width(out))
            yield out

    def close(self) -> None:
        self._child.close()


class DistinctOp(Operator):
    """Hash-set dedup; emits first occurrences as they arrive."""

    def __init__(self, node, ctx: ExecContext):
        super().__init__(node, ctx)
        self._child = build_operator(node.child, ctx)

    def rows(self) -> Iterator[tuple]:
        ctx = self.ctx
        per_row = ctx.config.cost.cpu_hash
        seen: set = set()
        for row in self._child.rows():
            if row is PULSE:
                yield row
                continue
            ctx.clock.advance(per_row, CPU)
            if row in seen:
                continue
            seen.add(row)
            yield row

    def close(self) -> None:
        self._child.close()


class LimitOp(Operator):
    """Stops pulling from its child after ``limit`` rows."""

    def __init__(self, node: LimitNode, ctx: ExecContext):
        super().__init__(node, ctx)
        self._child = build_operator(node.child, ctx)

    def rows(self) -> Iterator[tuple]:
        remaining = self.node.limit
        if remaining <= 0:
            return
        for row in self._child.rows():
            if row is PULSE:
                yield row
                continue
            yield row
            remaining -= 1
            if remaining <= 0:
                break

    def close(self) -> None:
        self._child.close()
