"""Sort-merge join.

The paper's prototype skipped this operator; we implement the full design
described in Section 4.5: the join's segment has *two* dominant inputs
(the sorted runs of both sides) and finishes as soon as either input is
exhausted — which is why the estimator uses ``p = max(qA, qB)`` over the
two inputs' progress fractions.
"""

from __future__ import annotations

from typing import Iterator

from repro.executor.base import ExecContext, Operator, build_operator, pull
from repro.executor.rowops import combiner, concat_layout, layout_of
from repro.expr.compiler import compile_predicate
from repro.planner.physical import MergeJoinNode
from repro.sim.load import CPU


class MergeJoinOp(Operator):
    def __init__(self, node: MergeJoinNode, ctx: ExecContext):
        super().__init__(node, ctx)
        self._left_child = build_operator(node.left, ctx)
        self._right_child = build_operator(node.right, ctx)
        self._left_slot = layout_of(node.left.columns)[node.left_key]
        self._right_slot = layout_of(node.right.columns)[node.right_key]
        self._combine = combiner(node.left.columns, node.right.columns, node.columns)
        if node.extra_filters:
            layout = concat_layout(node.left.columns, node.right.columns)
            self._extra = [compile_predicate(f, layout) for f in node.extra_filters]
        else:
            self._extra = []

    def rows(self) -> Iterator[tuple]:
        ctx = self.ctx
        cost = ctx.config.cost
        lslot = self._left_slot
        rslot = self._right_slot
        combine = self._combine
        extra = self._extra
        per_step = cost.cpu_compare
        per_match = cost.cpu_tuple + len(extra) * cost.cpu_operator

        # Children are advanced through ``pull`` so their PULSE markers
        # propagate to our caller between explicit next-row fetches.
        left = self._left_child.rows()
        right = self._right_child.rows()
        left_row = yield from pull(left)
        right_row = yield from pull(right)

        while left_row is not None and right_row is not None:
            ctx.clock.advance(per_step, CPU)
            lkey = left_row[lslot]
            rkey = right_row[rslot]
            # NULL keys never match; skip past them.
            if lkey is None:
                left_row = yield from pull(left)
                continue
            if rkey is None:
                right_row = yield from pull(right)
                continue
            if lkey < rkey:
                left_row = yield from pull(left)
            elif lkey > rkey:
                right_row = yield from pull(right)
            else:
                # Collect the full matching group on the right, then emit
                # the cross product with every matching left row.
                group = [right_row]
                right_row = yield from pull(right)
                while right_row is not None and right_row[rslot] == lkey:
                    ctx.clock.advance(per_step, CPU)
                    group.append(right_row)
                    right_row = yield from pull(right)
                while left_row is not None and left_row[lslot] == lkey:
                    ctx.clock.advance(per_match * len(group), CPU)
                    if extra:
                        for r in group:
                            merged = left_row + r
                            if all(p(merged) for p in extra):
                                yield combine(left_row, r)
                    else:
                        for r in group:
                            yield combine(left_row, r)
                    left_row = yield from pull(left)

    def close(self) -> None:
        self._left_child.close()
        self._right_child.close()
