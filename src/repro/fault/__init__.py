"""Deterministic fault injection and recovery (the robustness layer).

The paper's premise (Section 3) is that a progress indicator must observe
query execution without ever endangering it.  This package proves that
property under duress: seeded :class:`FaultPlan`\\ s inject transient disk
errors, page-checksum corruption, slow-disk windows, buffer-pool pressure
and spill-space exhaustion into the storage layer, and the recovery
machinery — retry-with-backoff in :mod:`repro.storage.disk`, the
scheduler watchdog in :mod:`repro.sched`, and the indicator's
degrade-don't-die boundary in :mod:`repro.core.indicator` — must keep
every invariant: queries reach exactly one terminal state, buffer pins
release on every path, progress stays monotone, and retried queries
return bit-identical results to fault-free runs.

:mod:`repro.fault.chaos` replays the paper's workload suite under seeded
random fault schedules and asserts all of it.

Disabled cost is ~zero, the same pattern as tracing: with no plan
installed every hook is a single ``is not None`` test (see
``benchmarks/bench_fault.py``).
"""

from repro.fault.injector import FaultInjector, InjectedFault
from repro.fault.plan import BufferPressureWindow, FaultPlan, SlowDiskWindow
from repro.fault.retry import RetryPolicy

__all__ = [
    "BufferPressureWindow",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "SlowDiskWindow",
]
