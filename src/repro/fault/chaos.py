"""The chaos harness: the workload suite under seeded fault schedules.

One :class:`ChaosHarness` owns a loaded TPC-R style database and a set of
fault-free baseline results (each query run solo, no injector).  Each
:meth:`~ChaosHarness.run_seed` call then replays the whole suite
concurrently under a seed-derived :class:`~repro.fault.FaultPlan` — with
some seeds also cancelling a query mid-flight, arming a statement
timeout, or deliberately breaking one indicator's refinement machinery —
and checks the robustness invariants the :mod:`repro.fault` layer
guarantees:

1. every query ends in **exactly one** terminal state (its trace carries
   exactly one of ``query_finished`` / ``query_failed`` /
   ``query_cancelled`` / ``query_timed_out`` / ``query_shed``);
2. reported progress (``done_pages``) is **monotone** over each query's
   report history, faults or not;
3. after the workload drains, **no buffer pins** remain and **no temp
   files** survive — cancellation, timeout and failure all unwound their
   operator trees;
4. queries that finish return **bit-identical rows** to their fault-free
   baseline (transient faults are retried against intact data; injection
   perturbs timing, never results);
5. a query whose refinement was sabotaged still **finishes correctly**,
   serving degraded fallback reports (the ``degraded`` trace event) —
   the paper's Section 3 "monitoring must not endanger the query",
   demonstrated under fire.

Everything is deterministic: the same seed replays the same faults, the
same interleaving, and the same verdict.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.config import SystemConfig
from repro.database import Database
from repro.errors import ReproError, is_transient
from repro.fault.plan import BufferPressureWindow, FaultPlan, SlowDiskWindow
from repro.workloads import queries as paper_queries
from repro.workloads import tpcr

#: Trace event kinds that terminate a query's stream.
TERMINAL_KINDS = frozenset(
    {
        "query_finished",
        "query_failed",
        "query_cancelled",
        "query_timed_out",
        "query_shed",
    }
)

#: Fixed seeds CI replays on every push (plus one fresh random seed).
CI_SEEDS = (7, 83, 2024)


def plan_for_seed(seed: int) -> FaultPlan:
    """Derive one fault schedule from a seed (deterministically varied).

    Rates hover around the ~1% regime the benchmarks use; roughly one
    seed in three raises ``max_repeat`` past the retry budget so the
    give-up path is exercised, one in four caps spill space, and half
    add a slow-disk or buffer-pressure window.
    """
    rng = random.Random(seed)
    slow: tuple[SlowDiskWindow, ...] = ()
    if rng.random() < 0.5:
        start = rng.uniform(0.0, 5.0)
        slow = (
            SlowDiskWindow(
                start=start,
                end=start + rng.uniform(1.0, 5.0),
                factor=rng.uniform(1.5, 4.0),
                period=rng.choice([None, 20.0]),
            ),
        )
    pressure: tuple[BufferPressureWindow, ...] = ()
    if rng.random() < 0.5:
        start = rng.uniform(0.0, 5.0)
        pressure = (
            BufferPressureWindow(
                start=start,
                end=start + rng.uniform(2.0, 8.0),
                reserved_frames=rng.randint(4, 10),
                period=rng.choice([None, 25.0]),
            ),
        )
    return FaultPlan(
        seed=seed,
        transient_read_rate=rng.uniform(0.001, 0.012),
        corruption_rate=rng.uniform(0.0, 0.004),
        transient_write_rate=rng.uniform(0.0, 0.006),
        # > the default retry budget of 3 on some seeds -> io_gave_up.
        max_repeat=rng.choice([1, 2, 2, 3, 6]),
        slow_windows=slow,
        pressure_windows=pressure,
        spill_capacity_pages=rng.choice([None, None, None, 40]),
    )


@dataclass
class QueryOutcome:
    """One query's fate in one chaos run."""

    name: str
    state: str
    error: Optional[str]
    rows_match: Optional[bool]  # None when the query did not finish
    degraded: int
    terminal_events: int


@dataclass
class ChaosResult:
    """One seed's verdict: outcomes, injector counters, violations."""

    seed: int
    plan: FaultPlan
    outcomes: list[QueryOutcome] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        states = ", ".join(f"{o.name}={o.state}" for o in self.outcomes)
        verdict = "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return f"seed {self.seed}: {verdict} [{states}] {self.counters}"


def _chaos_config() -> SystemConfig:
    """Small memory budgets so joins partition and sorts spill."""
    return SystemConfig(work_mem_pages=8, buffer_pool_pages=24)


def _refinement_bomb() -> None:
    raise ReproError("chaos: refinement sabotaged")


class ChaosHarness:
    """Replays the paper's query suite under seeded fault schedules."""

    def __init__(
        self,
        scale: float = 0.002,
        subset_rows: int = 60,
        config: Optional[SystemConfig] = None,
        suite: Optional[dict[str, str]] = None,
    ) -> None:
        self.config = config or _chaos_config()
        self.suite = dict(suite or paper_queries.PAPER_QUERIES)
        self.db = tpcr.build_database(
            scale=scale, subset_rows=subset_rows, config=self.config
        )
        #: Fault-free reference rows per query (sorted for comparison).
        self.baselines: dict[str, list[tuple]] = {}
        for name, sql in self.suite.items():
            handle = self.db.connect().submit(sql, name=name, trace=False)
            self.baselines[name] = sorted(handle.result().rows)
        self.db.restart()

    # ------------------------------------------------------------------

    def run_seed(self, seed: int, concurrency: int = 1) -> ChaosResult:
        """One chaos run: install the seed's plan, drain the suite
        concurrently with mid-flight disruptions, check every invariant.

        ``concurrency`` replicates the whole suite N times in flight at
        once (copies named ``q#2``, ``q#3``, …), so overload and fault
        injection are exercised together — the regime the service
        layer's admission/shedding decisions are designed for.  Every
        copy is held to the same invariants against the same fault-free
        baseline.
        """
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        db = self.db
        plan = plan_for_seed(seed)
        result = ChaosResult(seed=seed, plan=plan)
        rng = random.Random(~seed)  # disruption stream, distinct from plan's
        workload: list[tuple[str, str, str]] = []  # (copy name, base, sql)
        for copy in range(concurrency):
            for name, sql in self.suite.items():
                copy_name = name if copy == 0 else f"{name}#{copy + 1}"
                workload.append((copy_name, name, sql))
        names = [w[0] for w in workload]

        # Seed-dependent disruptions: cancel / timeout / sabotage one
        # query each (possibly the same one), on some seeds only.
        cancel_name = rng.choice(names) if rng.random() < 0.3 else None
        cancel_after = rng.randint(5, 40)
        timeout_name = rng.choice(names) if rng.random() < 0.3 else None
        sabotage_name = rng.choice(names) if rng.random() < 0.5 else None
        sabotage_after = rng.randint(2, 25)

        db.restart()
        injector = db.install_faults(plan)
        session = db.connect()
        try:
            handles = {}
            for copy_name, _, sql in workload:
                timeout = (
                    rng.uniform(5.0, 60.0)
                    if copy_name == timeout_name
                    else None
                )
                handles[copy_name] = session.submit(
                    sql, name=copy_name, trace=True, timeout=timeout
                )

            steps = 0
            while session.step() is not None:
                steps += 1
                if cancel_name is not None and steps == cancel_after:
                    handles[cancel_name].cancel()
                if sabotage_name is not None and steps == sabotage_after:
                    task = handles[sabotage_name].task
                    if not task.done and task.indicator is not None:
                        task.indicator.estimator.snapshot = _refinement_bomb
                    else:
                        sabotage_name = None
        finally:
            db.clear_faults()

        result.counters = injector.counters()
        for copy_name, base_name, _ in workload:
            task = handles[copy_name].task
            self._check_query(
                result, copy_name, task, sabotage_name, baseline=base_name
            )
        self._check_shared_state(result)
        return result

    def run_suite(
        self, seeds: list[int], concurrency: int = 1
    ) -> list[ChaosResult]:
        return [self.run_seed(seed, concurrency=concurrency) for seed in seeds]

    # ------------------------------------------------------------------
    # invariant checks

    def _check_query(
        self, result, name, task, sabotage_name, baseline=None
    ) -> None:
        baseline = name if baseline is None else baseline
        trace = task.sealed_trace()
        terminal = (
            sum(trace.counts().get(k, 0) for k in TERMINAL_KINDS)
            if trace is not None
            else -1
        )
        outcome = QueryOutcome(
            name=name,
            state=task.state,
            error=None if task.error is None else repr(task.error),
            rows_match=None,
            degraded=(
                0 if task.indicator is None else task.indicator.degraded_count
            ),
            terminal_events=terminal,
        )
        result.outcomes.append(outcome)

        if not task.done:
            result.violations.append(f"{name}: not in a terminal state")
            return
        if terminal != 1:
            result.violations.append(
                f"{name}: {terminal} terminal trace events (want exactly 1)"
            )
        if task.state == "failed" and task.error is not None:
            if not isinstance(task.error, ReproError):
                result.violations.append(
                    f"{name}: failed outside the error taxonomy: "
                    f"{task.error!r}"
                )
            elif is_transient(task.error) and result.counters.get(
                "io_gave_up", 0
            ) == 0:
                result.violations.append(
                    f"{name}: transient failure surfaced without the retry "
                    f"budget being exhausted: {task.error!r}"
                )

        log = task.log
        reports = [] if log is None else log.reports
        done_pages = [r.done_pages for r in reports]
        if any(b < a - 1e-9 for a, b in zip(done_pages, done_pages[1:])):
            result.violations.append(f"{name}: done_pages not monotone")

        if task.state == "finished":
            outcome.rows_match = sorted(task.rows) == self.baselines[baseline]
            if not outcome.rows_match:
                result.violations.append(
                    f"{name}: finished with rows differing from the "
                    f"fault-free baseline"
                )
        if name == sabotage_name:
            if outcome.degraded == 0:
                result.violations.append(
                    f"{name}: refinement sabotaged but indicator never "
                    f"degraded"
                )
            if task.state == "finished" and trace is not None and not any(
                True for _ in trace.of_kind("degraded")
            ):
                result.violations.append(
                    f"{name}: degradation left no trace event"
                )

    def _check_shared_state(self, result: ChaosResult) -> None:
        pins = self.db.buffer_pool.pinned_count
        if pins:
            result.violations.append(f"{pins} buffer pins leaked")
        temps = self.db.disk.temp_file_count()
        if temps:
            result.violations.append(f"{temps} temp files leaked")
