"""Retry policy for transient I/O: bounded attempts, exponential backoff.

All waiting happens on the **virtual clock** (``clock.advance_wall``), so
backoff is visible to the progress indicator exactly the way a stalled
disk would be: the speed monitor records the dip, the estimate adjusts,
and nothing reads the host's wall clock (lint rule REPRO001).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient storage faults.

    ``max_attempts`` counts *total* tries of one operation, the original
    attempt included: with the default of 4, a transient fault is retried
    up to 3 times before the disk gives up and lets the error propagate.
    """

    #: Total attempts per operation, the first one included.
    max_attempts: int = 4
    #: Virtual seconds waited before the first retry.
    backoff_base: float = 0.05
    #: Multiplier applied to the wait per additional retry.
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultConfigError("max_attempts must be at least 1")
        if self.backoff_base < 0:
            raise FaultConfigError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise FaultConfigError("backoff_factor must be >= 1")

    def backoff(self, retry_number: int) -> float:
        """Virtual seconds to wait before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            raise FaultConfigError("retry_number is 1-based")
        return self.backoff_base * self.backoff_factor ** (retry_number - 1)

    @property
    def max_retries(self) -> int:
        """Retries available after the original attempt."""
        return self.max_attempts - 1
