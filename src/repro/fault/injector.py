"""The fault injector: turns a :class:`FaultPlan` into per-I/O decisions.

One injector is installed per :class:`~repro.database.Database` (see
``Database.install_faults``); the disk and buffer pool consult it behind
``if self.faults is not None`` guards, so the uninstalled path costs one
attribute load — the same near-zero discipline as tracing.

Decisions are drawn from a private ``random.Random(plan.seed)`` stream,
one draw per charged I/O with a non-zero rate.  Because execution itself
is deterministic (virtual clock, deterministic scheduler), the draw
sequence — and therefore the fault schedule — replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    PageCorruptionError,
    SpillSpaceError,
    StorageError,
    TransientIOError,
)
from repro.fault.plan import FaultPlan
from repro.sim.clock import VirtualClock


@dataclass
class InjectedFault:
    """One fault decision on one I/O operation.

    ``failures`` is how many consecutive times this operation fails
    before succeeding; the disk's retry loop decrements it.
    """

    #: Fault kind: "transient_io", "page_checksum", "transient_write".
    fault: str
    error: StorageError
    failures: int


class FaultInjector:
    """Stateful decision engine for one installed :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan, clock: VirtualClock):
        self.plan = plan
        self._clock = clock
        self._rng = random.Random(plan.seed)
        self.installed_at = clock.now
        #: Temp-file pages written since install (spill budget accounting).
        self.spill_pages_written = 0
        # Observability counters (also mirrored as trace events).
        self.injected: dict[str, int] = {}
        self.retries = 0
        self.gave_up = 0
        # Cached flags keep the per-I/O hooks cheap.
        self._read_faults = plan.injects_read_faults
        self._write_rate = plan.transient_write_rate
        self._slow = plan.slow_windows
        self._pressure = plan.pressure_windows

    # ------------------------------------------------------------------
    # error faults (disk read/write paths)

    def on_read(self, file_id: int, page_no: int) -> "InjectedFault | None":
        """Decide whether this charged page read faults."""
        if not self._read_faults:
            return None
        draw = self._rng.random()
        plan = self.plan
        if draw < plan.transient_read_rate:
            return self._fault(
                "transient_io",
                TransientIOError(
                    f"injected transient read failure: file {file_id} "
                    f"page {page_no}"
                ),
            )
        if draw < plan.transient_read_rate + plan.corruption_rate:
            return self._fault(
                "page_checksum",
                PageCorruptionError(
                    f"injected checksum mismatch: file {file_id} page {page_no}"
                ),
            )
        return None

    def on_write(self, file_id: int, page_no: int) -> "InjectedFault | None":
        """Decide whether this charged page write faults transiently."""
        if not self._write_rate:
            return None
        if self._rng.random() < self._write_rate:
            return self._fault(
                "transient_write",
                TransientIOError(
                    f"injected transient write failure: file {file_id} "
                    f"page {page_no}"
                ),
            )
        return None

    def check_spill(self, file_id: int, page_no: int) -> None:
        """Account one temp-file page write against the spill budget.

        Raises :class:`SpillSpaceError` (fatal, no retry) once the
        budget is exhausted.
        """
        self.spill_pages_written += 1
        capacity = self.plan.spill_capacity_pages
        if capacity is not None and self.spill_pages_written > capacity:
            self.injected["spill_exhausted"] = (
                self.injected.get("spill_exhausted", 0) + 1
            )
            raise SpillSpaceError(
                f"injected spill-space exhaustion after {capacity} temp pages "
                f"(file {file_id} page {page_no})"
            )

    def _fault(self, kind: str, error: StorageError) -> InjectedFault:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        failures = (
            1
            if self.plan.max_repeat == 1
            else self._rng.randint(1, self.plan.max_repeat)
        )
        return InjectedFault(fault=kind, error=error, failures=failures)

    # ------------------------------------------------------------------
    # windowed degradation (no errors)

    def io_factor(self) -> float:
        """Current I/O cost multiplier (slow-disk windows; 1.0 = healthy)."""
        if not self._slow:
            return 1.0
        t = self._clock.now - self.installed_at
        factor = 1.0
        for window in self._slow:
            if window.active(t):
                factor = max(factor, window.factor)
        return factor

    def reserved_frames(self) -> int:
        """Buffer-pool frames currently reserved by pressure windows."""
        if not self._pressure:
            return 0
        t = self._clock.now - self.installed_at
        reserved = 0
        for window in self._pressure:
            if window.active(t):
                reserved = max(reserved, window.reserved_frames)
        return reserved

    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Snapshot of injection/retry counters (tests, chaos report)."""
        out = dict(self.injected)
        out["io_retries"] = self.retries
        out["io_gave_up"] = self.gave_up
        out["spill_pages_written"] = self.spill_pages_written
        return out

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.plan.seed}, injected={self.injected}, "
            f"retries={self.retries}, gave_up={self.gave_up})"
        )
