"""Fault plans: deterministic, seeded schedules of storage-layer faults.

A :class:`FaultPlan` is pure data — what can go wrong, how often, and
when.  The :class:`~repro.fault.injector.FaultInjector` turns it into
decisions at each charged I/O, drawing from a ``random.Random(seed)``
stream, so the same plan against the same execution (same query mix, same
scheduler policy) injects the *same* faults at the same operations: runs
replay bit-for-bit, which is what lets the chaos harness compare faulted
results against fault-free baselines.

Fault kinds
-----------

* **transient_io** — a page read fails as a device timeout
  (:class:`~repro.errors.TransientIOError`); the disk retries with
  backoff.
* **page_checksum** — a page read fails verification
  (:class:`~repro.errors.PageCorruptionError`); transient here because
  the stored copy is good (a torn read, not rotted media).
* **transient_write** — a spill/run page write fails transiently.
* **slow_disk** — a (possibly periodic) window during which every I/O
  charge is multiplied; no error is raised, the query just slows down
  and the indicator must track the dip (paper §4.6's load changes).
* **buffer_pressure** — a window during which part of the buffer pool is
  reserved (as if another tenant pinned it), raising miss rates.
* **spill_exhausted** — cumulative temp-file pages exceed a budget and
  the write fails fatally (:class:`~repro.errors.SpillSpaceError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FaultConfigError
from repro.fault.retry import RetryPolicy


@dataclass(frozen=True)
class SlowDiskWindow:
    """An interval of degraded I/O speed, relative to injector install time.

    With ``period`` set, the window repeats: it is active whenever
    ``(t - installed_at) % period`` falls in ``[start, end)``.
    """

    start: float
    end: float
    #: I/O cost multiplier while active (2.0 = disk at half speed).
    factor: float
    period: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise FaultConfigError("slow-disk window needs 0 <= start < end")
        if self.factor < 1.0:
            raise FaultConfigError("slow-disk factor must be >= 1")
        if self.period is not None and self.period < self.end:
            raise FaultConfigError("slow-disk period must cover the window")

    def active(self, t: float) -> bool:
        """Whether the window is active ``t`` seconds after install."""
        if self.period is not None:
            t = t % self.period
        return self.start <= t < self.end


@dataclass(frozen=True)
class BufferPressureWindow:
    """An interval during which ``reserved_frames`` of the pool are lost.

    Models a co-tenant pinning memory: the pool's effective capacity
    drops, evictions rise, and queries observe extra misses.  Repeats
    with ``period`` like :class:`SlowDiskWindow`.
    """

    start: float
    end: float
    reserved_frames: int
    period: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise FaultConfigError("pressure window needs 0 <= start < end")
        if self.reserved_frames < 1:
            raise FaultConfigError("reserved_frames must be positive")
        if self.period is not None and self.period < self.end:
            raise FaultConfigError("pressure period must cover the window")

    def active(self, t: float) -> bool:
        if self.period is not None:
            t = t % self.period
        return self.start <= t < self.end


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultConfigError(f"{name} must be a probability in [0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault schedule (pure data; see module docstring)."""

    #: Seed of the fault stream; same seed + same execution = same faults.
    seed: int = 0
    #: Probability that one charged page read fails transiently.
    transient_read_rate: float = 0.0
    #: Probability that one charged page read fails its checksum.
    corruption_rate: float = 0.0
    #: Probability that one charged page write fails transiently.
    transient_write_rate: float = 0.0
    #: Consecutive failures one faulted operation produces before it
    #: succeeds, drawn uniformly from [1, max_repeat].  Values above the
    #: retry budget make the disk give up (the io_gave_up path).
    max_repeat: int = 2
    slow_windows: tuple[SlowDiskWindow, ...] = ()
    pressure_windows: tuple[BufferPressureWindow, ...] = ()
    #: Total temp-file pages writable before spill space is exhausted
    #: (None = unlimited).  Counted across the whole injector lifetime.
    spill_capacity_pages: Optional[int] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        _check_rate("transient_read_rate", self.transient_read_rate)
        _check_rate("corruption_rate", self.corruption_rate)
        _check_rate("transient_write_rate", self.transient_write_rate)
        if self.transient_read_rate + self.corruption_rate > 1.0:
            raise FaultConfigError(
                "transient_read_rate + corruption_rate must not exceed 1"
            )
        if self.max_repeat < 1:
            raise FaultConfigError("max_repeat must be at least 1")
        if self.spill_capacity_pages is not None and self.spill_capacity_pages < 0:
            raise FaultConfigError("spill_capacity_pages must be non-negative")

    @property
    def injects_read_faults(self) -> bool:
        return self.transient_read_rate > 0 or self.corruption_rate > 0

    @property
    def injects_write_faults(self) -> bool:
        return self.transient_write_rate > 0 or self.spill_capacity_pages is not None

    @property
    def quiet(self) -> bool:
        """A plan that can never perturb anything (all rates/windows off)."""
        return (
            not self.injects_read_faults
            and not self.injects_write_faults
            and not self.slow_windows
            and not self.pressure_windows
        )
