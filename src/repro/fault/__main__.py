"""CLI for the chaos harness: ``python -m repro.fault [seeds...]``.

Replays the paper's query suite under seeded fault schedules and checks
the robustness invariants (see :mod:`repro.fault.chaos`).  With no
arguments, runs the fixed CI seeds.  ``--random N`` appends N seeds
drawn from system entropy — each printed so a failing run can be
replayed exactly with ``python -m repro.fault <seed>``.

Exit status is the number of seeds with violations (0 = all invariants
held).
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.fault.chaos import CI_SEEDS, ChaosHarness


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault",
        description="chaos-test the progress indicator under fault injection",
    )
    parser.add_argument(
        "seeds", nargs="*", type=int,
        help=f"fault-plan seeds to replay (default: {list(CI_SEEDS)})",
    )
    parser.add_argument(
        "--random", type=int, default=0, metavar="N",
        help="additionally run N seeds drawn from system entropy "
        "(each printed for reproduction)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.002,
        help="TPC-R scale factor for the test database (default 0.002)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=1, metavar="N",
        help="run N concurrent copies of the whole suite per seed, so "
        "overload and fault injection are exercised together (default 1)",
    )
    args = parser.parse_args(argv)
    if args.concurrency < 1:
        parser.error("--concurrency must be >= 1")

    seeds = list(args.seeds) if args.seeds else list(CI_SEEDS)
    for _ in range(args.random):
        fresh = random.SystemRandom().randrange(2**31)
        print(f"random seed drawn: {fresh}  (replay: python -m repro.fault {fresh})")
        seeds.append(fresh)

    harness = ChaosHarness(scale=args.scale)
    failures = 0
    for seed in seeds:
        result = harness.run_seed(seed, concurrency=args.concurrency)
        print(result.summary())
        for violation in result.violations:
            print(f"  VIOLATION: {violation}")
        failures += 0 if result.ok else 1
    total = len(seeds)
    print(f"{total - failures}/{total} seeds clean")
    return failures


if __name__ == "__main__":
    sys.exit(main())
