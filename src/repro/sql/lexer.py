"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LexerError

KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "from",
        "where",
        "and",
        "or",
        "not",
        "as",
        "between",
        "in",
        "like",
        "order",
        "group",
        "having",
        "by",
        "asc",
        "desc",
        "limit",
        "null",
        "true",
        "false",
    }
)

#: Multi-character operators must be matched before their prefixes.
_TWO_CHAR_OPS = ("<>", "<=", ">=", "!=")
_ONE_CHAR_OPS = "=<>+-*/(),."


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of: "keyword", "ident", "number", "string", "op", "eof".
    Keyword and identifier values are lower-cased (SQL is case-insensitive).
    """

    kind: str
    value: object
    position: int

    def matches(self, kind: str, value: object = None) -> bool:
        """Whether this token has the given kind (and value, when provided)."""
        return self.kind == kind and (value is None or self.value == value)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`LexerError` on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i].lower()
            kind = "keyword" if word in KEYWORDS else "ident"
            yield Token(kind, word, start)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # A trailing dot followed by a non-digit is a qualifier dot.
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            literal = text[start:i]
            value = float(literal) if "." in literal else int(literal)
            yield Token("number", value, start)
            continue
        if ch == "'":
            start = i
            i += 1
            parts = []
            while True:
                if i >= n:
                    raise LexerError("unterminated string literal", start)
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":  # escaped quote
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(text[i])
                i += 1
            yield Token("string", "".join(parts), start)
            continue
        matched_two = text[i : i + 2]
        if matched_two in _TWO_CHAR_OPS:
            yield Token("op", "<>" if matched_two == "!=" else matched_two, i)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield Token("op", ch, i)
            i += 1
            continue
        if ch == ";":
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    yield Token("eof", None, n)
