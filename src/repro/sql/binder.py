"""Name resolution: AST -> bound query over catalog tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.catalog import Catalog, Table
from repro.errors import BindError
from repro.expr.bound import (
    AGGREGATE_KINDS,
    AggregateExpr,
    ArithmeticExpr,
    BoundExpr,
    ColumnExpr,
    ComparisonExpr,
    FunctionExpr,
    InSubqueryExpr,
    LikeExpr,
    LiteralExpr,
    LogicalExpr,
    NegativeExpr,
    NotExpr,
    as_conjuncts,
    contains_aggregate,
)
from repro.expr.functions import lookup_function
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InSubquery,
    LikePattern,
    Literal,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
)
from repro.storage.types import BOOLEAN, DATE, FLOAT, INTEGER, StringType


@dataclass
class BoundTable:
    """One FROM-list entry after resolution."""

    index: int
    table: Table
    binding_name: str


@dataclass
class BoundQuery:
    """A fully resolved select-project-join query, ready for planning."""

    tables: list[BoundTable]
    #: Output expressions with their column names, in SELECT-list order.
    output: list[tuple[BoundExpr, str]]
    #: WHERE clause flattened into top-level AND conjuncts.
    conjuncts: list[BoundExpr]
    #: GROUP BY keys (plain column references).
    group_by: list[BoundExpr] = field(default_factory=list)
    #: HAVING predicate over group keys and aggregates.
    having: Optional[BoundExpr] = None
    #: SELECT DISTINCT: deduplicate final output rows.
    distinct: bool = False
    order_by: list[tuple[BoundExpr, bool]] = field(default_factory=list)
    limit: Optional[int] = None

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def is_grouped(self) -> bool:
        """Whether this query aggregates (GROUP BY or aggregate outputs)."""
        if self.group_by or self.having is not None:
            return True
        return any(contains_aggregate(expr) for expr, _ in self.output)


class Binder:
    """Resolves an AST statement against a catalog."""

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def bind(self, statement: SelectStatement) -> BoundQuery:
        """Resolve one parsed statement into a BoundQuery."""
        tables = self._bind_from(statement.from_tables)
        by_name = {t.binding_name: t for t in tables}

        output = self._bind_select_list(statement, tables, by_name)

        conjuncts: list[BoundExpr] = []
        if statement.where is not None:
            where = self._bind_expr(statement.where, tables, by_name)
            if where.type != BOOLEAN:
                raise BindError("WHERE clause must be a boolean expression")
            conjuncts = as_conjuncts(where)

        group_by = [
            self._bind_expr(e, tables, by_name) for e in statement.group_by
        ]
        for key in group_by:
            if not isinstance(key, ColumnExpr):
                raise BindError("GROUP BY supports plain column references only")

        having = None
        if statement.having is not None:
            having = self._bind_expr(statement.having, tables, by_name)
            if having.type != BOOLEAN:
                raise BindError("HAVING clause must be a boolean expression")

        order_by = []
        for item in statement.order_by:
            order_by.append((self._bind_expr(item.expr, tables, by_name), item.ascending))

        query = BoundQuery(
            tables=tables,
            output=output,
            conjuncts=conjuncts,
            group_by=group_by,
            having=having,
            distinct=statement.distinct,
            order_by=order_by,
            limit=statement.limit,
        )
        self._validate_grouping(query)
        return query

    # ------------------------------------------------------------------

    def _bind_from(self, refs: tuple[TableRef, ...]) -> list[BoundTable]:
        if not refs:
            raise BindError("FROM list cannot be empty")
        tables: list[BoundTable] = []
        seen: set[str] = set()
        for i, ref in enumerate(refs):
            name = ref.binding_name.lower()
            if name in seen:
                raise BindError(f"duplicate table binding name {name!r}")
            seen.add(name)
            tables.append(BoundTable(i, self._catalog.get_table(ref.name), name))
        return tables

    def _bind_select_list(
        self,
        statement: SelectStatement,
        tables: list[BoundTable],
        by_name: dict[str, BoundTable],
    ) -> list[tuple[BoundExpr, str]]:
        output: list[tuple[BoundExpr, str]] = []
        used_names: set[str] = set()

        def emit(expr: BoundExpr, name: str) -> None:
            # Disambiguate duplicate output names (e.g. two totalprice in Q3).
            final = name
            suffix = 1
            while final in used_names:
                suffix += 1
                final = f"{name}_{suffix}"
            used_names.add(final)
            output.append((expr, final))

        for item in statement.select_items:
            if isinstance(item.expr, Star):
                targets = tables
                if item.expr.qualifier is not None:
                    qualifier = item.expr.qualifier.lower()
                    if qualifier not in by_name:
                        raise BindError(f"unknown table qualifier {qualifier!r}")
                    targets = [by_name[qualifier]]
                for bound in targets:
                    for ci, col in enumerate(bound.table.schema.columns):
                        emit(
                            ColumnExpr(bound.index, ci, col.name, col.type),
                            col.name,
                        )
                continue
            expr = self._bind_expr(item.expr, tables, by_name)
            if item.alias:
                name = item.alias
            elif isinstance(item.expr, ColumnRef):
                name = item.expr.name  # bare column name, per SQL convention
            else:
                name = f"col{len(output) + 1}"
            emit(expr, name)
        if not output:
            raise BindError("SELECT list cannot be empty")
        return output

    # ------------------------------------------------------------------

    def _bind_expr(
        self,
        expr: Expression,
        tables: list[BoundTable],
        by_name: dict[str, BoundTable],
    ) -> BoundExpr:
        if isinstance(expr, Literal):
            return LiteralExpr(expr.value, _literal_type(expr.value))

        if isinstance(expr, ColumnRef):
            return self._bind_column(expr, tables, by_name)

        if isinstance(expr, InSubquery):
            operand = self._bind_expr(expr.operand, tables, by_name)
            try:
                inner = Binder(self._catalog).bind(expr.subquery)
            except BindError as exc:
                raise BindError(
                    f"cannot bind IN-subquery ({exc}); note that correlated "
                    "subqueries are not supported"
                ) from exc
            if len(inner.output) != 1:
                raise BindError("IN-subquery must select exactly one column")
            inner_type = inner.output[0][0].type
            numeric = (INTEGER, FLOAT, DATE)
            compatible = (
                (operand.type in numeric and inner_type in numeric)
                or (
                    isinstance(operand.type, StringType)
                    and isinstance(inner_type, StringType)
                )
            )
            if not compatible:
                raise BindError(
                    f"cannot test {operand.type!r} against an IN-subquery "
                    f"of {inner_type!r}"
                )
            return InSubqueryExpr(operand, inner, negated=expr.negated)

        if isinstance(expr, LikePattern):
            operand = self._bind_expr(expr.operand, tables, by_name)
            if not isinstance(operand.type, StringType):
                raise BindError("LIKE requires a string operand")
            return LikeExpr(operand, expr.pattern, negated=expr.negated)

        if isinstance(expr, FunctionCall):
            name = expr.name.lower()
            if name in AGGREGATE_KINDS:
                return self._bind_aggregate(expr, tables, by_name)
            if any(isinstance(a, Star) for a in expr.args):
                raise BindError(f"'*' is only valid as the argument of count()")
            func = lookup_function(expr.name, len(expr.args))
            args = [self._bind_expr(a, tables, by_name) for a in expr.args]
            return FunctionExpr(func, args)

        if isinstance(expr, UnaryOp):
            operand = self._bind_expr(expr.operand, tables, by_name)
            if expr.op == "not":
                if operand.type != BOOLEAN:
                    raise BindError("NOT requires a boolean operand")
                return NotExpr(operand)
            if expr.op == "-":
                if operand.type not in (INTEGER, FLOAT, DATE):
                    raise BindError("unary minus requires a numeric operand")
                return NegativeExpr(operand)
            raise BindError(f"unsupported unary operator {expr.op!r}")

        if isinstance(expr, BinaryOp):
            if expr.op in ("and", "or"):
                left = self._bind_expr(expr.left, tables, by_name)
                right = self._bind_expr(expr.right, tables, by_name)
                if left.type != BOOLEAN or right.type != BOOLEAN:
                    raise BindError(f"{expr.op.upper()} requires boolean operands")
                return LogicalExpr(expr.op, [left, right])
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                left = self._bind_expr(expr.left, tables, by_name)
                right = self._bind_expr(expr.right, tables, by_name)
                _check_comparable(left, right, expr.op)
                return ComparisonExpr(expr.op, left, right)
            if expr.op in ("+", "-", "*", "/"):
                left = self._bind_expr(expr.left, tables, by_name)
                right = self._bind_expr(expr.right, tables, by_name)
                for side in (left, right):
                    if side.type not in (INTEGER, FLOAT, DATE):
                        raise BindError(
                            f"arithmetic operator {expr.op!r} requires numeric operands"
                        )
                return ArithmeticExpr(expr.op, left, right)
            raise BindError(f"unsupported binary operator {expr.op!r}")

        raise BindError(f"cannot bind expression node {type(expr).__name__}")

    def _bind_aggregate(
        self,
        call: FunctionCall,
        tables: list[BoundTable],
        by_name: dict[str, BoundTable],
    ) -> AggregateExpr:
        kind = call.name.lower()
        if len(call.args) != 1:
            raise BindError(f"aggregate {kind}() expects exactly one argument")
        arg_ast = call.args[0]
        if isinstance(arg_ast, Star):
            if kind != "count":
                raise BindError(f"'*' is only valid as the argument of count()")
            return AggregateExpr("count", None)
        arg = self._bind_expr(arg_ast, tables, by_name)
        if contains_aggregate(arg):
            raise BindError("aggregate functions cannot be nested")
        if kind in ("sum", "avg") and arg.type not in (INTEGER, FLOAT, DATE):
            raise BindError(f"{kind}() requires a numeric argument")
        return AggregateExpr(kind, arg)

    def _validate_grouping(self, query: BoundQuery) -> None:
        """Enforce SQL grouping rules on a bound query."""
        for conjunct in query.conjuncts:
            if contains_aggregate(conjunct):
                raise BindError("aggregate functions are not allowed in WHERE")
        if not query.is_grouped:
            return
        group_coords = {
            key.coordinate for key in query.group_by if isinstance(key, ColumnExpr)
        }

        def check(expr: BoundExpr, clause: str) -> None:
            """Bare columns outside aggregates must be grouping keys."""
            if isinstance(expr, AggregateExpr):
                return  # columns inside the aggregate argument are fine
            if isinstance(expr, ColumnExpr):
                if expr.coordinate not in group_coords:
                    raise BindError(
                        f"column {expr.name!r} in {clause} must appear in "
                        "GROUP BY or inside an aggregate"
                    )
                return
            for attr in ("args", "left", "right", "operand", "arg"):
                child = getattr(expr, attr, None)
                if isinstance(child, BoundExpr):
                    check(child, clause)
                elif isinstance(child, list):
                    for c in child:
                        check(c, clause)

        for expr, _name in query.output:
            check(expr, "SELECT list")
        if query.having is not None:
            check(query.having, "HAVING")
        for expr, _asc in query.order_by:
            check(expr, "ORDER BY")

    def _bind_column(
        self,
        ref: ColumnRef,
        tables: list[BoundTable],
        by_name: dict[str, BoundTable],
    ) -> ColumnExpr:
        if ref.qualifier is not None:
            qualifier = ref.qualifier.lower()
            bound = by_name.get(qualifier)
            if bound is None:
                raise BindError(f"unknown table qualifier {qualifier!r}")
            schema = bound.table.schema
            if not schema.has_column(ref.name):
                raise BindError(
                    f"table {bound.binding_name!r} has no column {ref.name!r}"
                )
            ci = schema.index_of(ref.name)
            return ColumnExpr(bound.index, ci, f"{qualifier}.{ref.name}", schema.columns[ci].type)

        matches = [
            bound for bound in tables if bound.table.schema.has_column(ref.name)
        ]
        if not matches:
            raise BindError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            names = ", ".join(m.binding_name for m in matches)
            raise BindError(f"ambiguous column {ref.name!r} (found in: {names})")
        bound = matches[0]
        ci = bound.table.schema.index_of(ref.name)
        return ColumnExpr(
            bound.index, ci, ref.name, bound.table.schema.columns[ci].type
        )


def _literal_type(value):
    if value is None:
        return INTEGER  # NULL defaults; comparisons handle None anyway.
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return StringType(max(1, len(value)))
    raise BindError(f"unsupported literal {value!r}")


def _check_comparable(left: BoundExpr, right: BoundExpr, op: str) -> None:
    numeric = (INTEGER, FLOAT, DATE)
    if left.type in numeric and right.type in numeric:
        return
    if isinstance(left.type, StringType) and isinstance(right.type, StringType):
        return
    if left.type == BOOLEAN and right.type == BOOLEAN and op in ("=", "<>"):
        return
    raise BindError(
        f"cannot compare {left.type!r} with {right.type!r} using {op!r}"
    )
