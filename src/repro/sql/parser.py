"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    select    := SELECT [DISTINCT] item (',' item)* FROM table (',' table)*
                 [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
                 [ORDER BY order (',' order)*] [LIMIT number]
    item      := '*' | ident '.' '*' | expr [AS ident | ident]
    table     := ident [AS ident | ident]
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | cmp_expr
    cmp_expr  := add_expr [cmp_op add_expr | [NOT] BETWEEN add AND add
                 | [NOT] IN '(' (exprs | select) ')' | [NOT] LIKE string]
    add_expr  := mul_expr (('+'|'-') mul_expr)*
    mul_expr  := unary (('*'|'/') unary)*
    unary     := '-' unary | primary
    primary   := literal | ident '(' args ')' | ident ['.' ident] | '(' expr ')'

BETWEEN and IN-lists are desugared to range/equality conjunctions at parse
time; IN-subqueries and LIKE become dedicated AST nodes.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InSubquery,
    LikePattern,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.lexer import Token, tokenize

_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement from ``sql``."""
    return _Parser(tokenize(sql)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _accept(self, kind: str, value: object = None) -> Optional[Token]:
        if self._current.matches(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: object = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            want = f"{kind} {value!r}" if value is not None else kind
            got = f"{self._current.kind} {self._current.value!r}"
            raise ParseError(f"expected {want}, found {got} at offset {self._current.position}")
        return token

    # -- statement ------------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        """Parse a complete statement and require end-of-input."""
        statement = self._parse_select_body()
        self._expect("eof")
        return statement

    def _parse_select_body(self) -> SelectStatement:
        self._expect("keyword", "select")
        distinct = self._accept("keyword", "distinct") is not None
        items = [self._parse_select_item()]
        while self._accept("op", ","):
            items.append(self._parse_select_item())

        self._expect("keyword", "from")
        tables = [self._parse_table_ref()]
        while self._accept("op", ","):
            tables.append(self._parse_table_ref())

        where = None
        if self._accept("keyword", "where"):
            where = self._parse_expr()

        group_by: list[Expression] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._parse_expr())
            while self._accept("op", ","):
                group_by.append(self._parse_expr())

        having = None
        if self._accept("keyword", "having"):
            having = self._parse_expr()

        order_by: list[OrderItem] = []
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by.append(self._parse_order_item())
            while self._accept("op", ","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._accept("keyword", "limit"):
            token = self._expect("number")
            if not isinstance(token.value, int) or token.value < 0:
                raise ParseError("LIMIT requires a non-negative integer")
            limit = token.value

        return SelectStatement(
            select_items=tuple(items),
            from_tables=tuple(tables),
            distinct=distinct,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _parse_select_item(self) -> SelectItem:
        if self._accept("op", "*"):
            return SelectItem(Star())
        # Lookahead for "alias.*".
        if (
            self._current.kind == "ident"
            and self._tokens[self._pos + 1].matches("op", ".")
            and self._tokens[self._pos + 2].matches("op", "*")
        ):
            qualifier = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return SelectItem(Star(qualifier=qualifier))
        expr = self._parse_expr()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").value
        elif self._current.kind == "ident":
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _parse_table_ref(self) -> TableRef:
        name = self._expect("ident").value
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("ident").value
        elif self._current.kind == "ident":
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expr()
        ascending = True
        if self._accept("keyword", "desc"):
            ascending = False
        else:
            self._accept("keyword", "asc")
        return OrderItem(expr, ascending)

    # -- expressions ------------------------------------------------------

    def _parse_expr(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        expr = self._parse_and()
        while self._accept("keyword", "or"):
            expr = BinaryOp("or", expr, self._parse_and())
        return expr

    def _parse_and(self) -> Expression:
        expr = self._parse_not()
        while self._accept("keyword", "and"):
            expr = BinaryOp("and", expr, self._parse_not())
        return expr

    def _parse_not(self) -> Expression:
        if self._accept("keyword", "not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        if self._current.kind == "op" and self._current.value in _COMPARISONS:
            op = self._advance().value
            right = self._parse_additive()
            return BinaryOp(op, left, right)
        # [NOT] BETWEEN / IN / LIKE
        negated = False
        if (
            self._current.matches("keyword", "not")
            and self._tokens[self._pos + 1].kind == "keyword"
            and self._tokens[self._pos + 1].value in ("between", "in", "like")
        ):
            self._advance()
            negated = True
        if self._accept("keyword", "between"):
            low = self._parse_additive()
            self._expect("keyword", "and")
            high = self._parse_additive()
            # Desugar: x BETWEEN a AND b  ==  x >= a AND x <= b.
            expr = BinaryOp(
                "and", BinaryOp(">=", left, low), BinaryOp("<=", left, high)
            )
            return UnaryOp("not", expr) if negated else expr
        if self._accept("keyword", "in"):
            self._expect("op", "(")
            if self._current.matches("keyword", "select"):
                subquery = self._parse_select_body()
                self._expect("op", ")")
                return InSubquery(left, subquery, negated=negated)
            values = [self._parse_expr()]
            while self._accept("op", ","):
                values.append(self._parse_expr())
            self._expect("op", ")")
            # Desugar: x IN (a, b)  ==  x = a OR x = b.
            expr = BinaryOp("=", left, values[0])
            for value in values[1:]:
                expr = BinaryOp("or", expr, BinaryOp("=", left, value))
            return UnaryOp("not", expr) if negated else expr
        if self._accept("keyword", "like"):
            token = self._expect("string")
            return LikePattern(left, token.value, negated=negated)
        if negated:
            raise ParseError("NOT must be followed by BETWEEN, IN or LIKE here")
        return left

    def _parse_additive(self) -> Expression:
        expr = self._parse_multiplicative()
        while self._current.kind == "op" and self._current.value in ("+", "-"):
            op = self._advance().value
            expr = BinaryOp(op, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> Expression:
        expr = self._parse_unary()
        while self._current.kind == "op" and self._current.value in ("*", "/"):
            op = self._advance().value
            expr = BinaryOp(op, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> Expression:
        if self._accept("op", "-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.kind == "number" or token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.kind == "keyword" and token.value in ("null", "true", "false"):
            self._advance()
            value = {"null": None, "true": True, "false": False}[token.value]
            return Literal(value)
        if self._accept("op", "("):
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        if token.kind == "ident":
            self._advance()
            if self._accept("op", "("):
                args: list[Expression] = []
                if self._accept("op", "*"):
                    # count(*) — the only star-argument call SQL allows;
                    # the binder validates the function name.
                    self._expect("op", ")")
                    return FunctionCall(token.value, (Star(),))
                if not self._current.matches("op", ")"):
                    args.append(self._parse_expr())
                    while self._accept("op", ","):
                        args.append(self._parse_expr())
                self._expect("op", ")")
                return FunctionCall(token.value, tuple(args))
            if self._accept("op", "."):
                column = self._expect("ident").value
                return ColumnRef(name=column, qualifier=token.value)
            return ColumnRef(name=token.value)
        raise ParseError(
            f"unexpected token {token.kind} {token.value!r} at offset {token.position}"
        )
