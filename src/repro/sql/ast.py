"""Abstract syntax tree for the SQL subset (parser output, binder input)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


class Expression:
    """Base class for unbound scalar expressions."""


@dataclass(frozen=True)
class ColumnRef(Expression):
    """``name`` or ``qualifier.name``."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A number, string, boolean, or NULL literal."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return "null" if self.value is None else str(self.value)


@dataclass(frozen=True)
class FunctionCall(Expression):
    """``name(arg, ...)`` — e.g. the paper's ``absolute(l.partkey)``."""

    name: str
    args: tuple[Expression, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator: comparisons, AND/OR, arithmetic."""

    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator: ``-`` or ``not``."""

    op: str
    operand: Expression

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)`` — uncorrelated subqueries only."""

    operand: Expression
    subquery: "SelectStatement"
    negated: bool = False

    def __str__(self) -> str:
        op = "not in" if self.negated else "in"
        return f"({self.operand} {op} (subquery))"


@dataclass(frozen=True)
class LikePattern(Expression):
    """``expr [NOT] LIKE 'pattern'`` with SQL % and _ wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        op = "not like" if self.negated else "like"
        return f"({self.operand} {op} '{self.pattern}')"


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry with an optional output alias."""

    expr: Union[Expression, Star]
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-list table with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """A full SELECT statement."""

    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    distinct: bool = False
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = field(default=())
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: Optional[int] = None
