"""SQL front end for select-project-join queries.

Scope matches the paper's Section 4: SELECT lists (columns, expressions,
``*``), multi-table FROM with aliases, conjunctive WHERE clauses including
function-call predicates like ``absolute(l.partkey) > 0``, plus ORDER BY
and LIMIT.  Parsing produces an AST; the binder resolves names against the
catalog and yields typed bound expressions ready for planning.
"""

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.binder import Binder, BoundQuery
from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse_select

__all__ = [
    "tokenize",
    "Token",
    "parse_select",
    "Binder",
    "BoundQuery",
    "SelectStatement",
    "SelectItem",
    "Star",
    "TableRef",
    "ColumnRef",
    "Literal",
    "FunctionCall",
    "BinaryOp",
    "UnaryOp",
    "OrderItem",
]
