"""Annotated physical plan nodes.

Every node carries the optimizer's estimates (`est_rows`, `est_width`,
and derived `est_bytes`) — the annotated-query-plan technique the paper
relies on so the progress indicator can start from the optimizer's numbers
and refine them in place.

Intermediate rows are addressed by *coordinates* ``(table_index,
column_index)`` into the query's FROM list; each node exposes its output
``columns`` in slot order, and :meth:`PhysicalNode.layout` maps coordinates
to slots for expression compilation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.catalog.catalog import Table
from repro.expr.bound import BoundExpr
from repro.storage.index import BTreeIndex
from repro.storage.schema import TUPLE_HEADER_BYTES
from repro.storage.types import DataType


@dataclass(frozen=True)
class PlanColumn:
    """One output column of a physical node."""

    coordinate: tuple[int, int]
    name: str
    type: DataType
    #: Average stored width of the column's data in bytes (no header).
    avg_width: float


def row_width(columns: Sequence[PlanColumn]) -> float:
    """Estimated stored tuple width for a row of ``columns``."""
    return TUPLE_HEADER_BYTES + sum(c.avg_width for c in columns)


class PhysicalNode:
    """Base class of the physical plan tree."""

    def __init__(self, columns: Sequence[PlanColumn], est_rows: float):
        self.columns = list(columns)
        self.est_rows = max(0.0, est_rows)
        self.est_width = row_width(self.columns)
        #: Filled in by the segment builder (repro.core.segments).
        self.segment_id: Optional[int] = None

    @property
    def est_bytes(self) -> float:
        return self.est_rows * self.est_width

    @property
    def children(self) -> list["PhysicalNode"]:
        return []

    def layout(self) -> dict[tuple[int, int], int]:
        """Coordinate -> slot mapping for this node's output rows."""
        return {col.coordinate: i for i, col in enumerate(self.columns)}

    def label(self) -> str:
        """Short operator label for EXPLAIN output."""
        return type(self).__name__


class SeqScanNode(PhysicalNode):
    """Full table scan with pushed-down filters and column pruning."""

    def __init__(
        self,
        table: Table,
        table_index: int,
        filters: list[BoundExpr],
        columns: Sequence[PlanColumn],
        est_rows: float,
        est_base_rows: float,
    ):
        super().__init__(columns, est_rows)
        self.table = table
        self.table_index = table_index
        self.filters = filters
        #: Optimizer's estimate of the number of *base* tuples scanned
        #: (the Ne of Section 4.3, before filters).
        self.est_base_rows = est_base_rows

    def label(self) -> str:
        return f"SeqScan({self.table.name})"


class IndexScanNode(PhysicalNode):
    """Index range/equality scan plus heap fetches and residual filters."""

    def __init__(
        self,
        table: Table,
        table_index: int,
        index: BTreeIndex,
        low,
        high,
        low_inclusive: bool,
        high_inclusive: bool,
        filters: list[BoundExpr],
        columns: Sequence[PlanColumn],
        est_rows: float,
        est_base_rows: float,
    ):
        super().__init__(columns, est_rows)
        self.table = table
        self.table_index = table_index
        self.index = index
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.filters = filters
        #: Estimated number of index entries matched (scan input cardinality).
        self.est_base_rows = est_base_rows

    def label(self) -> str:
        return f"IndexScan({self.table.name}.{self.index.key_column})"


class HashJoinNode(PhysicalNode):
    """Hybrid hash join.

    ``num_batches == 1`` means the build side is expected to fit in
    ``work_mem`` (in-memory hash table, fully pipelined probe).  With more
    batches the join runs Grace-style: both inputs are hash-partitioned to
    temp files first, then batches are joined one by one — matching the
    multi-segment structure of the paper's Figure 3 (segments S1/S2 produce
    partitions, segment S3 consumes them).
    """

    def __init__(
        self,
        build: PhysicalNode,
        probe: PhysicalNode,
        build_keys: list[tuple[int, int]],
        probe_keys: list[tuple[int, int]],
        extra_filters: list[BoundExpr],
        num_batches: int,
        columns: Sequence[PlanColumn],
        est_rows: float,
    ):
        super().__init__(columns, est_rows)
        self.build = build
        self.probe = probe
        self.build_keys = build_keys
        self.probe_keys = probe_keys
        self.extra_filters = extra_filters
        self.num_batches = max(1, num_batches)

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.build, self.probe]

    def label(self) -> str:
        mode = "in-memory" if self.num_batches == 1 else f"{self.num_batches} batches"
        return f"HashJoin({mode})"


class NestLoopNode(PhysicalNode):
    """Nested loops join with a materialized inner (paper's Q5 plan)."""

    def __init__(
        self,
        outer: PhysicalNode,
        inner: PhysicalNode,
        predicates: list[BoundExpr],
        columns: Sequence[PlanColumn],
        est_rows: float,
    ):
        super().__init__(columns, est_rows)
        self.outer = outer
        self.inner = inner
        self.predicates = predicates

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.outer, self.inner]

    def label(self) -> str:
        return "NestLoop"


class SortNode(PhysicalNode):
    """External sort: run generation is blocking; the merge streams.

    Used beneath merge joins and for ORDER BY.  ``keys`` are
    (coordinate, ascending) pairs.
    """

    def __init__(
        self,
        child: PhysicalNode,
        keys: list[tuple[tuple[int, int], bool]],
        columns: Sequence[PlanColumn],
        est_rows: float,
    ):
        super().__init__(columns, est_rows)
        self.child = child
        self.keys = keys

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def label(self) -> str:
        cols = ", ".join(f"{c}{'' if asc else ' desc'}" for c, asc in self.keys)
        return f"Sort({cols})"


class MergeJoinNode(PhysicalNode):
    """Sort-merge join over two sorted children (normally SortNodes).

    The paper's prototype left this join out (Section 5); we implement the
    full technique it describes, including the two dominant inputs with
    ``p = max(qA, qB)`` (Section 4.5).
    """

    def __init__(
        self,
        left: PhysicalNode,
        right: PhysicalNode,
        left_key: tuple[int, int],
        right_key: tuple[int, int],
        extra_filters: list[BoundExpr],
        columns: Sequence[PlanColumn],
        est_rows: float,
    ):
        super().__init__(columns, est_rows)
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.extra_filters = extra_filters

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return "MergeJoin"


class HashAggregateNode(PhysicalNode):
    """Blocking hash aggregation (GROUP BY).

    Output columns are the group keys (keeping their base coordinates)
    followed by one synthetic column per aggregate with coordinate
    ``(-1, i)`` — the planner rewrites aggregate references in upper
    expressions to those coordinates.
    """

    def __init__(
        self,
        child: PhysicalNode,
        group_keys: list[tuple[int, int]],
        aggregates: list,  # list[AggregateExpr]
        columns: Sequence[PlanColumn],
        est_rows: float,
    ):
        super().__init__(columns, est_rows)
        self.child = child
        self.group_keys = group_keys
        self.aggregates = list(aggregates)

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def label(self) -> str:
        aggs = ", ".join(a.display() for a in self.aggregates)
        if self.group_keys:
            keys = ", ".join(str(k) for k in self.group_keys)
            return f"HashAggregate(by {keys}: {aggs})"
        return f"Aggregate({aggs})"


class FilterNode(PhysicalNode):
    """A standalone filter (used for HAVING above an aggregate)."""

    def __init__(
        self,
        child: PhysicalNode,
        predicates: list[BoundExpr],
        est_rows: float,
    ):
        super().__init__(list(child.columns), est_rows)
        self.child = child
        self.predicates = predicates
        self.est_width = child.est_width

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def label(self) -> str:
        return "Filter(" + " and ".join(p.display() for p in self.predicates) + ")"


class ProjectNode(PhysicalNode):
    """Final projection computing the SELECT-list expressions."""

    def __init__(
        self,
        child: PhysicalNode,
        exprs: list[BoundExpr],
        names: list[str],
        est_rows: float,
        est_output_width: float,
    ):
        # Output columns of a projection have no base coordinates; consumers
        # address them positionally (the project node is always at the top,
        # optionally under a LimitNode).
        super().__init__([], est_rows)
        self.child = child
        self.exprs = exprs
        self.names = names
        self.est_width = est_output_width

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def label(self) -> str:
        return f"Project({', '.join(self.names)})"


class DistinctNode(PhysicalNode):
    """Streaming duplicate elimination over final output rows.

    Emits each row's first occurrence immediately (hash-set dedup), so it
    pipelines — no segment boundary — and preserves any sort order below.
    """

    def __init__(self, child: PhysicalNode, est_rows: float):
        super().__init__(list(child.columns), est_rows)
        self.child = child
        self.est_width = child.est_width

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def label(self) -> str:
        return "Distinct"


class LimitNode(PhysicalNode):
    """Stop after ``limit`` rows."""

    def __init__(self, child: PhysicalNode, limit: int):
        super().__init__(list(child.columns), min(child.est_rows, limit))
        self.child = child
        self.limit = limit
        self.est_width = child.est_width

    @property
    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit({self.limit})"
