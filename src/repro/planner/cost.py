"""The optimizer's cost-estimation module.

Two distinct cost notions live here:

* **Search cost** (:class:`Cost`) guides plan choice during join-order
  enumeration.  It mixes page I/Os with CPU terms using PostgreSQL-style
  weights (``cpu_tuple_cost`` etc. expressed in page-read equivalents).
* **Progress cost** (:func:`node_io_pages` and friends in
  :mod:`repro.core.segments`) is the byte-based U of the paper: the bytes a
  segment reads plus the bytes it writes, divided by the page size.  The
  optimizer's "estimated number of I/Os for the query" that seeds the
  progress indicator is derived from the same byte formulas, so the initial
  estimate and the refinement path agree by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: PostgreSQL-flavoured search-cost weights, in sequential-page-read units.
SEQ_PAGE_COST = 1.0
RANDOM_PAGE_COST = 4.0
PAGE_WRITE_COST = 1.2
CPU_TUPLE_COST = 0.01
CPU_OPERATOR_COST = 0.0025
CPU_HASH_COST = 0.005
CPU_COMPARE_COST = 0.004


@dataclass(frozen=True)
class Cost:
    """A scalar plan-search cost with a page-I/O subcomponent."""

    total: float
    io_pages: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.total + other.total, self.io_pages + other.io_pages)

    @classmethod
    def zero(cls) -> "Cost":
        """The additive identity."""
        return cls(0.0, 0.0)


def pages_for_bytes(nbytes: float, page_size: int) -> float:
    """Fractional pages holding ``nbytes`` (estimates stay continuous)."""
    return nbytes / page_size if page_size else 0.0


def seq_scan_cost(num_pages: float, num_tuples: float, num_filters: int) -> Cost:
    """Sequential heap scan: one sequential read per page plus per-tuple CPU."""
    io = num_pages * SEQ_PAGE_COST
    cpu = num_tuples * (CPU_TUPLE_COST + num_filters * CPU_OPERATOR_COST)
    return Cost(io + cpu, num_pages)


def index_scan_cost(
    index_height: int,
    leaf_pages: float,
    matching_tuples: float,
    heap_pages_touched: float,
    num_filters: int,
) -> Cost:
    """Index probe: random descent, sequential leaves, random heap fetches."""
    io = (
        index_height * RANDOM_PAGE_COST
        + leaf_pages * SEQ_PAGE_COST
        + heap_pages_touched * RANDOM_PAGE_COST
    )
    cpu = matching_tuples * (CPU_TUPLE_COST + num_filters * CPU_OPERATOR_COST)
    return Cost(io + cpu, index_height + leaf_pages + heap_pages_touched)


def hash_join_batches(build_bytes: float, work_mem_bytes: float) -> int:
    """Number of batches a hybrid hash join needs for a build of this size."""
    if work_mem_bytes <= 0:
        return 1
    return max(1, math.ceil(build_bytes / work_mem_bytes))


def hash_join_cost(
    build_rows: float,
    build_bytes: float,
    probe_rows: float,
    probe_bytes: float,
    out_rows: float,
    num_batches: int,
    page_size: int,
) -> Cost:
    """Cost of joining (children's own costs excluded).

    Multi-batch joins pay a write+read pass over both inputs (Grace-style
    full partitioning, matching the executor's behaviour and the paper's
    Figure 3 segment structure).
    """
    # Building (hash + insert) costs more per tuple than probing, which is
    # what steers the optimizer toward hashing the smaller side — the
    # orientation the paper's plans rely on (customer hashed, orders probing).
    cpu = (
        build_rows * (CPU_HASH_COST + CPU_TUPLE_COST)
        + probe_rows * CPU_HASH_COST
        + out_rows * CPU_TUPLE_COST
    )
    io_pages = 0.0
    if num_batches > 1:
        spilled_pages = pages_for_bytes(build_bytes + probe_bytes, page_size)
        io_pages = 2.0 * spilled_pages  # written once, read once
        return Cost(
            cpu + spilled_pages * (PAGE_WRITE_COST + SEQ_PAGE_COST), io_pages
        )
    return Cost(cpu, io_pages)


def sort_cost(rows: float, nbytes: float, work_mem_bytes: float, page_size: int) -> Cost:
    """Run generation + merge cost for an external (or in-memory) sort."""
    if rows <= 1:
        return Cost.zero()
    compare = rows * math.log2(max(2.0, rows)) * CPU_COMPARE_COST
    if nbytes <= work_mem_bytes:
        return Cost(compare, 0.0)
    pages = pages_for_bytes(nbytes, page_size)
    # One spill pass: write runs, read them back during the merge.
    io = pages * (PAGE_WRITE_COST + SEQ_PAGE_COST)
    return Cost(compare + io, 2.0 * pages)


def hash_aggregate_cost(input_rows: float, groups: float) -> Cost:
    """Hash + accumulate per input row, emit per group."""
    cpu = input_rows * CPU_HASH_COST + groups * CPU_TUPLE_COST
    return Cost(cpu, 0.0)


def merge_join_cost(left_rows: float, right_rows: float, out_rows: float) -> Cost:
    """Linear merge over two sorted inputs (children's sorts costed separately)."""
    cpu = (left_rows + right_rows) * CPU_COMPARE_COST + out_rows * CPU_TUPLE_COST
    return Cost(cpu, 0.0)


def nestloop_cost(
    outer_rows: float,
    inner_rows: float,
    inner_bytes: float,
    work_mem_bytes: float,
    num_predicates: int,
    page_size: int,
) -> Cost:
    """Nested loops with a materialized inner relation.

    When the inner fits in memory the rescans are pure CPU; otherwise each
    outer tuple re-reads the spilled inner (which is what makes nested
    loops catastrophically expensive for large inners, steering the
    optimizer toward hash joins whenever an equi-join exists).
    """
    comparisons = outer_rows * inner_rows
    cpu = comparisons * (CPU_OPERATOR_COST * max(1, num_predicates))
    io_pages = 0.0
    if inner_bytes > work_mem_bytes:
        inner_pages = pages_for_bytes(inner_bytes, page_size)
        rescan_reads = max(0.0, outer_rows - 1) * inner_pages
        io_pages = pages_for_bytes(inner_bytes, page_size) + rescan_reads
        cpu += rescan_reads * SEQ_PAGE_COST
    return Cost(cpu, io_pages)
