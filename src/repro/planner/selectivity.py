"""Selectivity estimation.

Estimates mimic PostgreSQL's behaviour where the paper depends on it:

* plain ``column <op> constant`` predicates use ANALYZE statistics
  (distinct counts and equi-depth histograms);
* anything the optimizer cannot see through — notably predicates over
  function calls such as ``absolute(l.partkey) > 0`` — falls back to the
  **default selectivity 1/3** (Section 5.3.1, point 3), the root cause of
  the estimation errors in queries Q2 and Q4;
* equi-join selectivity is ``1 / max(nd_left, nd_right)``, which assumes
  independence between join keys and filters — the assumption query Q3's
  correlated data violates (Section 5.4).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.catalog.statistics import ColumnStatistics
from repro.expr.bound import (
    BoundExpr,
    ColumnExpr,
    ComparisonExpr,
    LikeExpr,
    LiteralExpr,
    LogicalExpr,
    MIRRORED_OP,
    NotExpr,
)
from repro.expr.compiler import compile_expr

#: Looks up ANALYZE statistics for a (table_index, column_index) coordinate;
#: returns None when the table was never analyzed.
StatsLookup = Callable[[tuple[int, int]], Optional[ColumnStatistics]]


def constant_value(expr: BoundExpr):
    """Evaluate ``expr`` if it references no columns; else raise ValueError.

    Used to normalize predicates like ``price > 100 + 50`` into
    column-versus-constant form.
    """
    if any(True for _ in expr.columns()):
        raise ValueError("expression references columns")
    return compile_expr(expr, {})(())


def is_constant(expr: BoundExpr) -> bool:
    """Whether ``expr`` references no columns (safe to fold)."""
    return not any(True for _ in expr.columns())


def _column_vs_constant(
    expr: ComparisonExpr,
) -> Optional[tuple[ColumnExpr, str, object]]:
    """Normalize a comparison to (column, op, constant) when possible.

    Returns None when either side is opaque (function calls, arithmetic
    over columns), which is what triggers the default selectivity.
    """
    left, right = expr.left, expr.right
    if isinstance(left, ColumnExpr) and is_constant(right):
        return (left, expr.op, constant_value(right))
    if isinstance(right, ColumnExpr) and is_constant(left):
        return (right, MIRRORED_OP[expr.op], constant_value(left))
    return None


def filter_selectivity(
    expr: BoundExpr, stats_lookup: StatsLookup, default: float
) -> float:
    """Estimated fraction of rows satisfying single-relation filter ``expr``."""
    if isinstance(expr, LogicalExpr):
        parts = [filter_selectivity(a, stats_lookup, default) for a in expr.args]
        if expr.op == "and":
            result = 1.0
            for s in parts:
                result *= s
            return result
        # OR via inclusion-exclusion, pairwise-independence assumption.
        result = 0.0
        for s in parts:
            result = result + s - result * s
        return result

    if isinstance(expr, NotExpr):
        return max(0.0, 1.0 - filter_selectivity(expr.operand, stats_lookup, default))

    if isinstance(expr, ComparisonExpr):
        normalized = _column_vs_constant(expr)
        if normalized is None:
            return default
        column, op, value = normalized
        stats = stats_lookup(column.coordinate)
        if stats is None:
            return default
        return _clamp(stats.selectivity_cmp(op, value))

    if isinstance(expr, LikeExpr):
        s = _like_selectivity(expr, stats_lookup, default)
        return _clamp(1.0 - s) if expr.negated else _clamp(s)

    if isinstance(expr, LiteralExpr):
        if expr.value is True:
            return 1.0
        if expr.value in (False, None):
            return 0.0
        return default

    return default


def equijoin_selectivity(
    left: ColumnExpr, right: ColumnExpr, stats_lookup: StatsLookup, default: float
) -> float:
    """Selectivity of ``left = right`` across two relations."""
    left_stats = stats_lookup(left.coordinate)
    right_stats = stats_lookup(right.coordinate)
    nd = 0
    if left_stats is not None:
        nd = max(nd, left_stats.num_distinct)
    if right_stats is not None:
        nd = max(nd, right_stats.num_distinct)
    if nd <= 0:
        return default
    return 1.0 / nd


def join_predicate_selectivity(
    expr: BoundExpr, stats_lookup: StatsLookup, default: float
) -> float:
    """Selectivity of a cross-relation predicate (equi or otherwise)."""
    if isinstance(expr, ComparisonExpr):
        left, right = expr.left, expr.right
        if isinstance(left, ColumnExpr) and isinstance(right, ColumnExpr):
            if left.table_index != right.table_index:
                eq = equijoin_selectivity(left, right, stats_lookup, default)
                if expr.op == "=":
                    return _clamp(eq)
                if expr.op == "<>":
                    # Q5's predicate: almost every pair of a cross product.
                    return _clamp(1.0 - eq)
                # Range joins: PostgreSQL-style flat default.
                return default
    if isinstance(expr, LogicalExpr):
        parts = [
            join_predicate_selectivity(a, stats_lookup, default) for a in expr.args
        ]
        if expr.op == "and":
            result = 1.0
            for s in parts:
                result *= s
            return result
        result = 0.0
        for s in parts:
            result = result + s - result * s
        return result
    if isinstance(expr, NotExpr):
        return max(
            0.0, 1.0 - join_predicate_selectivity(expr.operand, stats_lookup, default)
        )
    return default


def _like_selectivity(
    expr: LikeExpr, stats_lookup: StatsLookup, default: float
) -> float:
    """Prefix-based LIKE estimate (PostgreSQL-flavoured heuristic).

    A pattern with a literal prefix selects the key range
    ``[prefix, prefix+1)``; estimated from the histogram when the operand
    is a plain column.  Patterns starting with a wildcard — or opaque
    operands — get the default selectivity.
    """
    prefix = expr.literal_prefix()
    if not prefix or not isinstance(expr.operand, ColumnExpr):
        return default
    stats = stats_lookup(expr.operand.coordinate)
    if stats is None:
        return default
    if prefix == expr.pattern:
        # No wildcards at all: plain equality.
        return stats.selectivity_eq(prefix)
    upper = prefix[:-1] + chr(ord(prefix[-1]) + 1)
    ge = stats.selectivity_cmp(">=", prefix)
    ge_upper = stats.selectivity_cmp(">=", upper)
    return max(0.0, ge - ge_upper)


def _clamp(s: float) -> float:
    return min(1.0, max(0.0, s))
