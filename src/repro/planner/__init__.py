"""Cost-based optimizer.

The optimizer produces an *annotated* physical plan: every node carries the
cardinality, width and byte estimates the progress indicator starts from
(the "annotated query plan technique" the paper borrows from Kabra &
DeWitt).  Its cost-estimation entry points are deliberately reusable at run
time — Section 4.5 refines a running query's estimates by re-invoking the
optimizer's cost module with improved input cardinalities, and
:mod:`repro.estimators.refinement` does exactly that through the factors recorded on
each plan node.
"""

from repro.planner.explain import explain
from repro.planner.optimizer import Optimizer, PlannedQuery
from repro.planner.physical import (
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    MergeJoinNode,
    NestLoopNode,
    PhysicalNode,
    PlanColumn,
    ProjectNode,
    SeqScanNode,
    SortNode,
)

__all__ = [
    "Optimizer",
    "PlannedQuery",
    "explain",
    "PhysicalNode",
    "PlanColumn",
    "SeqScanNode",
    "IndexScanNode",
    "HashJoinNode",
    "NestLoopNode",
    "MergeJoinNode",
    "SortNode",
    "ProjectNode",
    "LimitNode",
]
