"""EXPLAIN-style plan rendering."""

from __future__ import annotations

from repro.planner.physical import (
    HashJoinNode,
    IndexScanNode,
    PhysicalNode,
    SeqScanNode,
)


def explain(node: PhysicalNode, indent: int = 0, actual_rows=None) -> str:
    """Render an annotated plan tree as indented text.

    Each line shows the operator, its cardinality/width estimates, and —
    after segmentation — the segment it belongs to, mirroring the way the
    paper reasons about plans (Figures 3 and 8).  Pass ``actual_rows``
    (an ``id(node) -> count`` mapping from an EXPLAIN ANALYZE run) to show
    actual emitted rows next to the estimates.
    """
    lines: list[str] = []
    _render(node, indent, lines, actual_rows or {})
    return "\n".join(lines)


def _render(
    node: PhysicalNode, depth: int, lines: list[str], actual_rows: dict
) -> None:
    pad = "  " * depth
    seg = f" [segment {node.segment_id}]" if node.segment_id is not None else ""
    detail = ""
    if isinstance(node, (SeqScanNode, IndexScanNode)) and node.filters:
        detail = " filter: " + " and ".join(f.display() for f in node.filters)
    elif isinstance(node, HashJoinNode):
        keys = ", ".join(
            f"{b}={p}" for b, p in zip(node.build_keys, node.probe_keys)
        )
        detail = f" on {keys}"
    actual = ""
    if id(node) in actual_rows:
        actual = f" (actual rows={actual_rows[id(node)]})"
    lines.append(
        f"{pad}{node.label()}  (rows={node.est_rows:.0f} width={node.est_width:.0f})"
        f"{actual}{detail}{seg}"
    )
    for child in node.children:
        _render(child, depth + 1, lines, actual_rows)
