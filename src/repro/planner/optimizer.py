"""Plan search: access paths, Selinger-style join ordering, plan assembly."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.catalog.statistics import ColumnStatistics
from repro.config import SystemConfig
from repro.errors import PlanError
from repro.expr.bound import (
    AggregateExpr,
    ArithmeticExpr,
    BoundExpr,
    ColumnExpr,
    ComparisonExpr,
    FunctionExpr,
    InSubqueryExpr,
    LogicalExpr,
    NegativeExpr,
    NotExpr,
    as_conjuncts,
    equijoin_sides,
    referenced_tables,
)
from repro.planner import cost as costs
from repro.planner.cost import Cost, hash_join_batches
from repro.planner.physical import (
    DistinctNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    MergeJoinNode,
    NestLoopNode,
    PhysicalNode,
    PlanColumn,
    ProjectNode,
    SeqScanNode,
    SortNode,
    row_width,
)
from repro.planner.selectivity import (
    constant_value,
    filter_selectivity,
    is_constant,
    join_predicate_selectivity,
)
from repro.sql.binder import BoundQuery
from repro.storage.schema import TUPLE_HEADER_BYTES


@dataclass
class PlannedQuery:
    """An optimized query: annotated plan plus planning metadata."""

    root: PhysicalNode
    query: BoundQuery
    config: SystemConfig
    #: Optimizer search cost of the chosen plan (diagnostics only).
    search_cost: Cost
    #: Uncorrelated IN-subqueries: (expression, inner plan) pairs the
    #: driver pre-executes before the outer plan runs (hashed InitPlans).
    subplans: list = field(default_factory=list)

    @property
    def output_names(self) -> list[str]:
        return [name for _, name in self.query.output]


@dataclass
class _DpEntry:
    node: PhysicalNode
    cost: Cost


class Optimizer:
    """Cost-based optimizer over a bound query."""

    def __init__(self, config: SystemConfig):
        self._config = config
        self._work_mem_bytes = config.work_mem_pages * config.page_size

    # ------------------------------------------------------------------

    def plan(self, query: BoundQuery) -> PlannedQuery:
        """Produce the cheapest annotated physical plan for ``query``."""
        self._query = query
        self._default_sel = self._config.planner.default_selectivity

        subplans = self._plan_subqueries(query)

        single, multi = self._classify_conjuncts(query)
        needed = self._needed_coordinates(query, multi)
        # Coordinates needed above all joins (outputs and sort keys) —
        # join keys already applied can be pruned from join outputs.
        self._output_coords = self._needed_coordinates(query, [])

        scans = {
            bt.index: self._best_scan(bt.index, single.get(bt.index, []), needed)
            for bt in query.tables
        }

        if len(query.tables) == 1:
            only = query.tables[0].index
            best = scans[only]
        else:
            best = self._join_search(query, scans, multi, needed)

        node, cost = best.node, best.cost
        output_exprs = [expr for expr, _ in query.output]
        order_pairs = list(query.order_by)
        if query.is_grouped:
            node, cost, output_exprs, order_pairs = self._attach_aggregation(
                node, cost, query
            )
        node, cost = self._attach_order_by(node, cost, order_pairs)
        node = self._attach_projection(node, query, output_exprs)
        if query.distinct:
            # A crude but serviceable estimate: distinct output rows are
            # bounded by the product of the output columns' distinct counts.
            est = node.est_rows
            product = 1.0
            all_columns = True
            for expr in output_exprs:
                if isinstance(expr, ColumnExpr):
                    stats = self._column_stats(expr.coordinate)
                    product *= (
                        stats.num_distinct if stats and stats.num_distinct > 0
                        else min(200.0, max(1.0, est))
                    )
                else:
                    all_columns = False
            if all_columns:
                est = min(est, product)
            node = DistinctNode(node, est)
        if query.limit is not None:
            node = LimitNode(node, query.limit)
        return PlannedQuery(
            root=node,
            query=query,
            config=self._config,
            search_cost=cost,
            subplans=subplans,
        )

    def _plan_subqueries(self, query: BoundQuery) -> list:
        """Plan every uncorrelated IN-subquery found in the query."""
        found: list[InSubqueryExpr] = []

        def walk(expr: BoundExpr) -> None:
            if isinstance(expr, InSubqueryExpr):
                found.append(expr)
                return
            for attr in ("args", "left", "right", "operand", "arg"):
                child = getattr(expr, attr, None)
                if isinstance(child, BoundExpr):
                    walk(child)
                elif isinstance(child, list):
                    for c in child:
                        walk(c)

        for conjunct in query.conjuncts:
            walk(conjunct)
        for expr, _ in query.output:
            walk(expr)
        if query.having is not None:
            walk(query.having)

        subplans = []
        for expr in found:
            inner = Optimizer(self._config).plan(expr.subquery)
            expr.plan = inner
            subplans.append((expr, inner))
        return subplans

    # ------------------------------------------------------------------
    # conjunct classification and column pruning

    def _classify_conjuncts(
        self, query: BoundQuery
    ) -> tuple[dict[int, list[BoundExpr]], list[BoundExpr]]:
        """Split WHERE conjuncts into per-table filters and join predicates."""
        single: dict[int, list[BoundExpr]] = {}
        multi: list[BoundExpr] = []
        for conjunct in query.conjuncts:
            tables = referenced_tables(conjunct)
            if len(tables) <= 1:
                target = next(iter(tables)) if tables else query.tables[0].index
                single.setdefault(target, []).append(conjunct)
            else:
                multi.append(conjunct)
        return single, multi

    def _needed_coordinates(
        self, query: BoundQuery, join_predicates: list[BoundExpr]
    ) -> set[tuple[int, int]]:
        """Coordinates that must survive past the scans."""
        needed: set[tuple[int, int]] = set()
        for expr, _ in query.output:
            for col in expr.columns():
                needed.add(col.coordinate)
        for predicate in join_predicates:
            for col in predicate.columns():
                needed.add(col.coordinate)
        for expr, _ in query.order_by:
            for col in expr.columns():
                needed.add(col.coordinate)
        for key in query.group_by:
            for col in key.columns():
                needed.add(col.coordinate)
        if query.having is not None:
            for col in query.having.columns():
                needed.add(col.coordinate)
        return needed

    # ------------------------------------------------------------------
    # statistics access

    def _table_stats(self, table_index: int):
        return self._query.tables[table_index].table.statistics

    def _column_stats(self, coordinate: tuple[int, int]) -> Optional[ColumnStatistics]:
        table_index, column_index = coordinate
        if table_index < 0:
            return None  # synthetic aggregate-output column
        bound = self._query.tables[table_index]
        stats = bound.table.statistics
        if stats is None:
            return None
        name = bound.table.schema.columns[column_index].name
        return stats.column(name)

    def _base_rows(self, table_index: int) -> float:
        stats = self._table_stats(table_index)
        if stats is not None:
            return float(stats.row_count)
        return float(self._query.tables[table_index].table.num_tuples)

    def _plan_columns(
        self, table_index: int, needed: set[tuple[int, int]]
    ) -> list[PlanColumn]:
        bound = self._query.tables[table_index]
        schema = bound.table.schema
        columns = []
        for ci, col in enumerate(schema.columns):
            coordinate = (table_index, ci)
            if coordinate not in needed:
                continue
            stats = self._column_stats(coordinate)
            avg = stats.avg_width if stats is not None else float(col.type.width(None))
            columns.append(PlanColumn(coordinate, col.name, col.type, avg))
        return columns

    # ------------------------------------------------------------------
    # access-path selection

    def _best_scan(
        self,
        table_index: int,
        filters: list[BoundExpr],
        needed: set[tuple[int, int]],
    ) -> _DpEntry:
        bound = self._query.tables[table_index]
        table = bound.table
        base_rows = self._base_rows(table_index)
        selectivity = 1.0
        for f in filters:
            selectivity *= filter_selectivity(f, self._column_stats, self._default_sel)
        est_rows = base_rows * selectivity

        scan_needed = needed | {
            c.coordinate for f in filters for c in f.columns()
        }
        # SELECT * queries need every column of the table.
        output_star = {
            c.coordinate
            for expr, _ in self._query.output
            for c in expr.columns()
            if c.table_index == table_index
        }
        scan_columns = self._plan_columns(table_index, scan_needed | output_star)

        seq_node = SeqScanNode(
            table, table_index, filters, scan_columns, est_rows, base_rows
        )
        seq_cost = costs.seq_scan_cost(table.num_pages, base_rows, len(filters))
        best = _DpEntry(seq_node, seq_cost)

        if not self._config.planner.enable_indexscan:
            return best

        candidate = self._index_scan_candidate(
            table_index, filters, scan_columns, base_rows
        )
        if candidate is not None and candidate.cost.total < best.cost.total:
            best = candidate
        return best

    def _index_scan_candidate(
        self,
        table_index: int,
        filters: list[BoundExpr],
        scan_columns: list[PlanColumn],
        base_rows: float,
    ) -> Optional[_DpEntry]:
        bound = self._query.tables[table_index]
        table = bound.table
        best: Optional[_DpEntry] = None
        for key_column, index in table.indexes.items():
            key_coord = (table_index, table.schema.index_of(key_column))
            low = high = None
            low_inc = high_inc = True
            bounding: list[BoundExpr] = []
            residual: list[BoundExpr] = []
            for f in filters:
                spec = _bounds_from_filter(f, key_coord)
                if spec is None:
                    residual.append(f)
                    continue
                f_low, f_high, f_low_inc, f_high_inc = spec
                if f_low is not None and (low is None or f_low >= low):
                    low, low_inc = f_low, f_low_inc
                if f_high is not None and (high is None or f_high <= high):
                    high, high_inc = f_high, f_high_inc
                bounding.append(f)
            if not bounding:
                continue
            bound_sel = 1.0
            for f in bounding:
                bound_sel *= filter_selectivity(f, self._column_stats, self._default_sel)
            matching = base_rows * bound_sel
            residual_sel = 1.0
            for f in residual:
                residual_sel *= filter_selectivity(
                    f, self._column_stats, self._default_sel
                )
            est_rows = matching * residual_sel
            heap_pages = min(float(table.num_pages), matching)
            cost = costs.index_scan_cost(
                index.height,
                index.leaf_pages_for(max(1, int(matching))),
                matching,
                heap_pages,
                len(residual),
            )
            node = IndexScanNode(
                table,
                table_index,
                index,
                low,
                high,
                low_inc,
                high_inc,
                residual,
                scan_columns,
                est_rows,
                matching,
            )
            if best is None or cost.total < best.cost.total:
                best = _DpEntry(node, cost)
        return best

    # ------------------------------------------------------------------
    # join ordering (left-deep Selinger DP)

    def _join_search(
        self,
        query: BoundQuery,
        scans: dict[int, _DpEntry],
        join_predicates: list[BoundExpr],
        needed: set[tuple[int, int]],
    ) -> _DpEntry:
        indexes = [bt.index for bt in query.tables]
        dp: dict[frozenset[int], _DpEntry] = {
            frozenset([i]): scans[i] for i in indexes
        }

        pred_tables = [(p, referenced_tables(p)) for p in join_predicates]

        for size in range(2, len(indexes) + 1):
            for subset in _subsets(indexes, size):
                best: Optional[_DpEntry] = None
                for t in subset:
                    rest = subset - {t}
                    left_entry = dp.get(rest)
                    if left_entry is None:
                        continue
                    right_entry = scans[t]
                    applicable = [
                        p
                        for p, tables in pred_tables
                        if tables <= subset and t in tables and (tables & rest)
                    ]
                    # Avoid pointless cross products while connected joins exist.
                    if not applicable and _has_connected_alternative(
                        subset, rest, pred_tables, dp, scans
                    ):
                        continue
                    candidate = self._best_join(
                        left_entry, right_entry, applicable, subset, needed, pred_tables
                    )
                    if candidate is not None and (
                        best is None or candidate.cost.total < best.cost.total
                    ):
                        best = candidate
                if best is not None:
                    dp[subset] = best

        full = frozenset(indexes)
        if full not in dp:
            raise PlanError("could not find a join order for the query")
        return dp[full]

    def _best_join(
        self,
        left: _DpEntry,
        right: _DpEntry,
        predicates: list[BoundExpr],
        subset: frozenset[int],
        needed: set[tuple[int, int]],
        pred_tables: list[tuple[BoundExpr, frozenset[int]]],
    ) -> Optional[_DpEntry]:
        planner = self._config.planner
        page_size = self._config.page_size

        # Split equi-join conjuncts from everything else.
        equi: list[tuple[ColumnExpr, ColumnExpr]] = []
        others: list[BoundExpr] = []
        left_tables = {c.coordinate[0] for c in left.node.columns}
        for p in predicates:
            sides = equijoin_sides(p)
            if sides is None:
                others.append(p)
                continue
            a, b = sides
            if a.table_index in left_tables:
                equi.append((a, b))
            else:
                equi.append((b, a))

        out_rows = left.node.est_rows * right.node.est_rows
        for p in predicates:
            out_rows *= join_predicate_selectivity(
                p, self._column_stats, self._default_sel
            )

        # Columns that must flow out of this join: final outputs, order keys,
        # and any predicate that is not yet applied at this level.  Join
        # keys consumed here are dropped unless something above needs them.
        still_needed = set(self._output_coords)
        for p, tables in pred_tables:
            if not tables <= subset:
                for c in p.columns():
                    still_needed.add(c.coordinate)
        out_columns = [
            c
            for c in (left.node.columns + right.node.columns)
            if c.coordinate in still_needed
        ]

        candidates: list[_DpEntry] = []
        children_cost = left.cost + right.cost

        if equi and planner.enable_hashjoin:
            for build, probe in ((left, right), (right, left)):
                build_is_left = build is left
                build_keys = [
                    (l if build_is_left else r).coordinate for l, r in equi
                ]
                probe_keys = [
                    (r if build_is_left else l).coordinate for l, r in equi
                ]
                batches = hash_join_batches(
                    build.node.est_bytes, self._work_mem_bytes
                )
                join_cost = costs.hash_join_cost(
                    build.node.est_rows,
                    build.node.est_bytes,
                    probe.node.est_rows,
                    probe.node.est_bytes,
                    out_rows,
                    batches,
                    page_size,
                )
                node = HashJoinNode(
                    build.node,
                    probe.node,
                    build_keys,
                    probe_keys,
                    others,
                    batches,
                    out_columns,
                    out_rows,
                )
                candidates.append(_DpEntry(node, children_cost + join_cost))

        if len(equi) == 1 and planner.enable_mergejoin:
            (lcol, rcol) = equi[0]
            left_sort = SortNode(
                left.node,
                [(lcol.coordinate, True)],
                list(left.node.columns),
                left.node.est_rows,
            )
            right_sort = SortNode(
                right.node,
                [(rcol.coordinate, True)],
                list(right.node.columns),
                right.node.est_rows,
            )
            sort_costs = costs.sort_cost(
                left.node.est_rows,
                left.node.est_bytes,
                self._work_mem_bytes,
                page_size,
            ) + costs.sort_cost(
                right.node.est_rows,
                right.node.est_bytes,
                self._work_mem_bytes,
                page_size,
            )
            join_cost = costs.merge_join_cost(
                left.node.est_rows, right.node.est_rows, out_rows
            )
            node = MergeJoinNode(
                left_sort,
                right_sort,
                lcol.coordinate,
                rcol.coordinate,
                others,
                out_columns,
                out_rows,
            )
            candidates.append(_DpEntry(node, children_cost + sort_costs + join_cost))

        if planner.enable_nestloop or not candidates:
            all_predicates = [p for p in predicates]
            for outer, inner in ((left, right), (right, left)):
                join_cost = costs.nestloop_cost(
                    outer.node.est_rows,
                    inner.node.est_rows,
                    inner.node.est_bytes,
                    self._work_mem_bytes,
                    len(all_predicates),
                    page_size,
                )
                node = NestLoopNode(
                    outer.node, inner.node, all_predicates, out_columns, out_rows
                )
                candidates.append(_DpEntry(node, children_cost + join_cost))

        if not candidates:
            return None
        return min(candidates, key=lambda e: e.cost.total)

    # ------------------------------------------------------------------
    # aggregation

    def _attach_aggregation(
        self, node: PhysicalNode, cost: Cost, query: BoundQuery
    ) -> tuple[PhysicalNode, Cost, list[BoundExpr], list[tuple[BoundExpr, bool]]]:
        """Plan the GROUP BY / HAVING layer and rewrite upper expressions.

        Every distinct aggregate becomes a synthetic output column with
        coordinate ``(-1, i)``; SELECT-list, HAVING and ORDER BY
        expressions are rewritten to reference those columns so the rest
        of the plan (sort, projection) composes unchanged.
        """
        # Collect distinct aggregates in order of first appearance.
        aggregates: list[AggregateExpr] = []
        seen: dict[str, int] = {}

        def collect(expr: BoundExpr) -> None:
            if isinstance(expr, AggregateExpr):
                key = expr.display()
                if key not in seen:
                    seen[key] = len(aggregates)
                    aggregates.append(expr)
                return
            for attr in ("args", "left", "right", "operand", "arg"):
                child = getattr(expr, attr, None)
                if isinstance(child, BoundExpr):
                    collect(child)
                elif isinstance(child, list):
                    for c in child:
                        collect(c)

        for expr, _ in query.output:
            collect(expr)
        if query.having is not None:
            collect(query.having)
        for expr, _ in query.order_by:
            collect(expr)

        # Output columns: group keys (base coordinates) + aggregates.
        child_widths = {c.coordinate: c.avg_width for c in node.columns}
        group_coords = [key.coordinate for key in query.group_by]
        columns: list[PlanColumn] = []
        for key in query.group_by:
            columns.append(
                PlanColumn(
                    key.coordinate,
                    key.name,
                    key.type,
                    child_widths.get(key.coordinate, float(key.type.width(None))),
                )
            )
        agg_columns: dict[str, ColumnExpr] = {}
        for i, agg in enumerate(aggregates):
            coord = (-1, i)
            columns.append(
                PlanColumn(coord, agg.display(), agg.type, float(agg.type.width(None)))
            )
            agg_columns[agg.display()] = ColumnExpr(
                coord[0], coord[1], agg.display(), agg.type
            )

        est_groups = self._estimate_groups(node, group_coords)
        agg_node = HashAggregateNode(node, group_coords, aggregates, columns, est_groups)
        cost = cost + costs.hash_aggregate_cost(node.est_rows, est_groups)
        result: PhysicalNode = agg_node

        output_exprs = [
            _rewrite_aggregates(expr, agg_columns) for expr, _ in query.output
        ]
        order_pairs = [
            (_rewrite_aggregates(expr, agg_columns), asc)
            for expr, asc in query.order_by
        ]

        if query.having is not None:
            having = _rewrite_aggregates(query.having, agg_columns)
            predicates = as_conjuncts(having)
            selectivity = 1.0
            for p in predicates:
                selectivity *= filter_selectivity(
                    p, self._column_stats, self._default_sel
                )
            result = FilterNode(result, predicates, est_groups * selectivity)

        return result, cost, output_exprs, order_pairs

    def _estimate_groups(
        self, child: PhysicalNode, group_coords: list[tuple[int, int]]
    ) -> float:
        """Estimated number of groups (PostgreSQL-style distinct product)."""
        if not group_coords:
            return 1.0
        product = 1.0
        for coord in group_coords:
            stats = self._column_stats(coord)
            if stats is not None and stats.num_distinct > 0:
                product *= stats.num_distinct
            else:
                product *= min(200.0, max(1.0, child.est_rows))
        return max(1.0, min(product, child.est_rows))

    # ------------------------------------------------------------------
    # top of the plan

    def _attach_order_by(
        self,
        node: PhysicalNode,
        cost: Cost,
        order_pairs: list[tuple[BoundExpr, bool]],
    ) -> tuple[PhysicalNode, Cost]:
        if not order_pairs:
            return node, cost
        keys: list[tuple[tuple[int, int], bool]] = []
        for expr, ascending in order_pairs:
            if not isinstance(expr, ColumnExpr):
                raise PlanError("ORDER BY supports plain column references only")
            keys.append((expr.coordinate, ascending))
        sort = SortNode(node, keys, list(node.columns), node.est_rows)
        sort_cost = costs.sort_cost(
            node.est_rows,
            node.est_bytes,
            self._work_mem_bytes,
            self._config.page_size,
        )
        return sort, cost + sort_cost

    def _attach_projection(
        self,
        node: PhysicalNode,
        query: BoundQuery,
        output_exprs: list[BoundExpr],
    ) -> ProjectNode:
        width = TUPLE_HEADER_BYTES
        layout_widths = {c.coordinate: c.avg_width for c in node.columns}
        for expr in output_exprs:
            if isinstance(expr, ColumnExpr):
                width += layout_widths.get(
                    expr.coordinate, float(expr.type.width(None))
                )
            else:
                width += float(expr.type.width(None)) if not is_constant(expr) else 8.0
        names = [name for _, name in query.output]
        return ProjectNode(node, output_exprs, names, node.est_rows, width)


# ----------------------------------------------------------------------
# helpers


def _rewrite_aggregates(
    expr: BoundExpr, agg_columns: dict[str, ColumnExpr]
) -> BoundExpr:
    """Replace aggregate calls with references to the aggregate node's
    synthetic output columns (matched structurally via display form)."""
    if isinstance(expr, AggregateExpr):
        return agg_columns[expr.display()]
    if isinstance(expr, LogicalExpr):
        return LogicalExpr(
            expr.op, [_rewrite_aggregates(a, agg_columns) for a in expr.args]
        )
    if isinstance(expr, ComparisonExpr):
        return ComparisonExpr(
            expr.op,
            _rewrite_aggregates(expr.left, agg_columns),
            _rewrite_aggregates(expr.right, agg_columns),
        )
    if isinstance(expr, ArithmeticExpr):
        return ArithmeticExpr(
            expr.op,
            _rewrite_aggregates(expr.left, agg_columns),
            _rewrite_aggregates(expr.right, agg_columns),
        )
    if isinstance(expr, FunctionExpr):
        return FunctionExpr(
            expr.func, [_rewrite_aggregates(a, agg_columns) for a in expr.args]
        )
    if isinstance(expr, NotExpr):
        return NotExpr(_rewrite_aggregates(expr.operand, agg_columns))
    if isinstance(expr, NegativeExpr):
        return NegativeExpr(_rewrite_aggregates(expr.operand, agg_columns))
    return expr


def _subsets(indexes: list[int], size: int):
    """All frozenset subsets of ``indexes`` with ``size`` elements."""
    n = len(indexes)

    def rec(start: int, chosen: tuple[int, ...]):
        if len(chosen) == size:
            yield frozenset(chosen)
            return
        for i in range(start, n):
            yield from rec(i + 1, chosen + (indexes[i],))

    yield from rec(0, ())


def _has_connected_alternative(
    subset: frozenset[int],
    rest: frozenset[int],
    pred_tables: list[tuple[BoundExpr, frozenset[int]]],
    dp: dict,
    scans: dict,
) -> bool:
    """Whether some other split of ``subset`` joins with a real predicate."""
    for t in subset:
        other_rest = subset - {t}
        if other_rest == rest or other_rest not in dp:
            continue
        for _, tables in pred_tables:
            if tables <= subset and t in tables and (tables & other_rest):
                return True
    return False


def _bounds_from_filter(
    expr: BoundExpr, key_coord: tuple[int, int]
) -> Optional[tuple]:
    """If ``expr`` bounds the index key, return (low, high, low_inc, high_inc)."""
    if not isinstance(expr, ComparisonExpr):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ColumnExpr) and left.coordinate == key_coord and is_constant(right):
        op, value = expr.op, constant_value(right)
    elif isinstance(right, ColumnExpr) and right.coordinate == key_coord and is_constant(left):
        from repro.expr.bound import MIRRORED_OP

        op, value = MIRRORED_OP[expr.op], constant_value(left)
    else:
        return None
    if value is None:
        return None
    if op == "=":
        return (value, value, True, True)
    if op == "<":
        return (None, value, True, False)
    if op == "<=":
        return (None, value, True, True)
    if op == ">":
        return (value, None, False, True)
    if op == ">=":
        return (value, None, True, True)
    return None
