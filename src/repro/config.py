"""System-wide configuration for the repro engine.

A :class:`SystemConfig` bundles every knob that influences storage layout,
optimizer behaviour, executor resource limits, and the simulated cost model.
It plays the role of ``postgresql.conf`` for this engine: experiments build
one config object and thread it through :class:`repro.database.Database`.

All costs are expressed in simulated seconds.  The defaults are calibrated
so that the scaled TPC-R workload of the paper's Section 5 produces queries
running for hundreds of simulated seconds, matching the time axes of the
paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

#: Size of one storage page in bytes.  One page of bytes is also one unit of
#: work "U" for the progress indicator (paper Section 4.1).
DEFAULT_PAGE_SIZE = 8192

#: PostgreSQL's default selectivity for predicates it cannot estimate, such
#: as ``absolute(l.partkey) > 0``.  The paper's Figures 9, 13, 17 and 18 all
#: hinge on this default being wrong (Section 5.3.1, point 3).
DEFAULT_UNKNOWN_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class CostModelConfig:
    """Calibration constants of the simulated execution cost model.

    The virtual clock charges these amounts of simulated time for each
    primitive action.  The ratios matter more than the absolute values:
    sequential I/O must be cheaper than random I/O, and per-tuple CPU work
    must be small relative to a page I/O for I/O-bound queries yet dominate
    for in-memory nested-loops joins (query Q5 in the paper).
    """

    #: Seconds to read one page sequentially from the simulated disk.
    #: Calibrated so the scale-0.01 TPC-R workload reproduces the paper's
    #: time axes (e.g. Q1, a 557-page lineitem scan, runs ~95 virtual
    #: seconds as in Figure 4).  Virtual seconds are free, so the absolute
    #: values only anchor the figures' scales.
    seq_page_read: float = 0.16
    #: Seconds to read one page at a random location.
    random_page_read: float = 0.80
    #: Seconds to write one page (spill partitions, sort runs).
    page_write: float = 0.22
    #: CPU seconds to pass one tuple through one operator.
    cpu_tuple: float = 0.0001
    #: CPU seconds to evaluate one predicate/expression on one tuple.
    cpu_operator: float = 0.0004
    #: CPU seconds to hash one tuple (hash joins, partitioning).
    cpu_hash: float = 0.0002
    #: CPU seconds per comparison (sorts, merge joins).
    cpu_compare: float = 0.0002
    #: CPU seconds charged per index-level traversed during an index probe.
    cpu_index_level: float = 0.001


@dataclass(frozen=True)
class PlannerConfig:
    """Optimizer knobs, mirroring PostgreSQL's ``enable_*`` flags."""

    enable_hashjoin: bool = True
    enable_mergejoin: bool = True
    enable_nestloop: bool = True
    enable_indexscan: bool = True
    #: Selectivity assigned to predicates with no usable statistics.
    default_selectivity: float = DEFAULT_UNKNOWN_SELECTIVITY
    #: Number of buckets built by ANALYZE's equi-depth histograms.
    histogram_buckets: int = 20
    #: Assumed I/O seconds per page used to convert optimizer I/O counts
    #: into the "optimizer's estimate of query running time" baseline
    #: (the dotted line in the paper's Figures 6, 11 and 15).  The paper
    #: notes this is "a little bit different from the monitored query
    #: execution speed"; we keep a deliberate mild miscalibration.
    #: (True sequential reads cost 0.16 s/page in the simulated cost model;
    #: the optimizer's assumption is deliberately a bit off, as in Fig. 6.)
    assumed_seconds_per_io: float = 0.20


@dataclass(frozen=True)
class ProgressConfig:
    """Progress-indicator knobs (paper Sections 3, 4.6)."""

    #: Seconds between user-visible progress reports ("acceptable pacing").
    update_interval: float = 10.0
    #: Length T of the sliding window used to estimate current speed.
    speed_window: float = 10.0
    #: Granularity at which cumulative work samples are recorded for the
    #: speed window.  Must divide ``speed_window`` evenly for exact windows.
    speed_sample_interval: float = 1.0
    #: Simulated seconds of processing the indicator "watches" before it is
    #: willing to produce its first remaining-time estimate (Section 4.1).
    warmup: float = 2.0
    #: Which speed estimator to use: "window" (the paper's), "decay"
    #: (the exponentially-decaying average suggested as future work in
    #: Section 4.6), or "global" (whole-history mean; ablation baseline).
    speed_estimator: str = "window"
    #: Decay factor per sample for the "decay" estimator.
    decay_alpha: float = 0.3
    #: Output-cardinality refinement mode: "paper" (E = p*E2 + (1-p)*E1),
    #: "optimizer" (never extrapolate from observed outputs), or
    #: "extrapolate" (raw y/p, no smoothing).  Ablation knob.
    refine_mode: str = "paper"
    #: Which registered progress estimator runs each query: "paper" (the
    #: default §4.5 blend), "dne", "tgn", "history", any name added via
    #: :func:`repro.estimators.register_estimator`, or "ensemble" (race
    #: every registered candidate and let the online selector pick).
    #: ``Session.submit(estimator=...)`` overrides per query.  When this
    #: is left at "paper", a non-default ``refine_mode`` still maps onto
    #: the matching estimator for backward compatibility.
    estimator: str = "paper"
    #: How scans report bytes to the tracker: "tuple" (as each tuple is
    #: processed — the paper's semantics, required for smooth progress on
    #: CPU-bound consumers like Q5) or "page" (whole pages at read time;
    #: ablation knob showing why tuple granularity matters).
    scan_granularity: str = "tuple"
    #: Pre-execution plan/segment invariant gate (repro.analysis.gate):
    #: "off", "warn" (default: verify and warn on violations), or
    #: "strict" (raise before executing).  The REPRO_VERIFY environment
    #: variable overrides this; tests/CI run strict.
    verify_mode: str = "warn"
    #: Which executor engine runs queries: "batch" (default — the fused
    #: batch-at-a-time engine: each query plan is compiled into tight
    #: per-pipeline loops that move :class:`repro.executor.batch.Batch`
    #: objects to the driver) or "row" (the reference volcano engine,
    #: one tuple per generator hop).  Both engines charge the identical
    #: sequence of virtual-clock costs and tracker updates, so results,
    #: ProgressLog and U totals are bit-identical; "batch" only changes
    #: real (wall-clock) time.  Paths that must observe individual
    #: operator pulses (the analysis cross-check probe, EXPLAIN ANALYZE
    #: row counting) always use the row engine regardless of this knob.
    engine: str = "batch"
    #: Rows per :class:`~repro.executor.batch.Batch` handed to the driver
    #: by the batch engine.  Batches also flush at every PULSE boundary
    #: (flushing is clock-silent), so any value produces bit-identical
    #: results; 1 degenerates to row-at-a-time transport.
    batch_rows: int = 256
    #: Structured tracing (repro.obs): when True, every monitored run
    #: records typed TraceBus events (segment spans, refinement
    #: provenance, speed samples, page counters).  Off by default — the
    #: disabled path is a single ``is not None`` test per call site.  The
    #: REPRO_TRACE environment variable overrides this: "1"/"on" enables,
    #: "0"/"off" disables, and any other value enables tracing *and*
    #: names the directory where trace artifacts are written.
    trace_enabled: bool = False


@dataclass(frozen=True)
class ServiceConfig:
    """Multi-tenant service knobs (:mod:`repro.service`, paper §6 automated).

    The defaults are deliberately **permissive** — no saturation limit,
    no tenant budgets, shedding off — so a plain
    :class:`~repro.api.Session` (which routes every submission through a
    service front-end for admission accounting) behaves exactly like the
    raw scheduler.  Production-shaped deployments tighten the knobs::

        cfg = SystemConfig().with_service(
            max_inflight=32, shedding=True,
            tenant_cost_budget_pages=5_000.0,
        )
    """

    #: Maximum concurrently admitted (in-flight) queries; past it new
    #: submissions wait in the admission queue.  ``None`` = unbounded.
    max_inflight: Optional[int] = None
    #: Bounded admission-queue capacity; a submission arriving with this
    #: many already waiting gets the explicit ``ADMISSION_REJECTED``
    #: outcome (no task is ever created for it).
    admission_queue_limit: int = 10_000
    #: Default per-tenant budget for the summed *predicted* cost (U
    #: pages) of its concurrently admitted queries; a submission pushing
    #: the tenant past it queues until the tenant's own queries drain
    #: (``tenant_throttled``).  ``None`` = unlimited.  Per-tenant
    #: overrides via :meth:`repro.service.QueryService.register_tenant`.
    tenant_cost_budget_pages: Optional[float] = None
    #: Fair-share weight assigned to tenants never explicitly registered.
    default_tenant_weight: float = 1.0
    #: Whether the load-shedding policy loop acts on deadline-bearing
    #: queries (deprioritize, then evict).  Off, the watchdog alone
    #: enforces deadlines — queries die *at* the deadline instead of
    #: being evicted early once predicted to miss it.
    shedding: bool = False
    #: A query is *flagged* when its predicted overrun — (now + estimated
    #: remaining) − deadline — exceeds this fraction of its total
    #: deadline budget (deadline − first slice) ...
    shed_overrun_fraction: float = 0.10
    #: ... and recovers (strikes reset, demotions lifted) only when the
    #: overrun drops below this fraction.  The band between the two is
    #: the hysteresis dead zone: estimator noise oscillating inside it
    #: changes nothing (König et al.: estimate error is worst exactly
    #: when these decisions matter, so single-sample actions are banned).
    shed_recover_fraction: float = 0.0
    #: Consecutive flagged policy checks before the query is demoted
    #: (its effective fair-share weight halves per demotion).
    deprioritize_after: int = 1
    #: Consecutive flagged policy checks before the query is evicted
    #: (terminal ``shed`` state, ``query_shed`` trace event).
    shed_after: int = 3
    #: Minimum virtual seconds between shedding evaluations of one query
    #: — the policy samples at slice boundaries, this rate-limits it.
    policy_interval: float = 5.0


@dataclass(frozen=True)
class SystemConfig:
    """Complete engine configuration."""

    page_size: int = DEFAULT_PAGE_SIZE
    #: Buffer pool capacity in pages.
    buffer_pool_pages: int = 2048
    #: Memory budget for one hash table or sort, in pages.  When a hash
    #: join's build side exceeds this, it partitions to disk (hybrid hash);
    #: when a sort's input exceeds it, runs spill to disk (external sort).
    work_mem_pages: int = 256
    cost: CostModelConfig = field(default_factory=CostModelConfig)
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    progress: ProgressConfig = field(default_factory=ProgressConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def with_planner(self, **kwargs) -> "SystemConfig":
        """Return a copy with planner flags replaced."""
        return replace(self, planner=replace(self.planner, **kwargs))

    def with_progress(self, **kwargs) -> "SystemConfig":
        """Return a copy with progress-indicator knobs replaced."""
        return replace(self, progress=replace(self.progress, **kwargs))

    def with_cost(self, **kwargs) -> "SystemConfig":
        """Return a copy with cost-model constants replaced."""
        return replace(self, cost=replace(self.cost, **kwargs))

    def with_service(self, **kwargs) -> "SystemConfig":
        """Return a copy with multi-tenant service knobs replaced."""
        return replace(self, service=replace(self.service, **kwargs))
