"""The top-level database facade.

One :class:`Database` is a complete simulated RDBMS instance: virtual
clock, disk, buffer pool, catalog, optimizer and executor.  Experiments
build one, load tables, ANALYZE, and run queries — optionally with a
progress indicator attached, which is the monitored path the paper's
Section 5 evaluates.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - analysis/fault/obs imported lazily
    from repro.analysis.invariants import Violation
    from repro.api import Session
    from repro.fault.injector import FaultInjector
    from repro.fault.plan import FaultPlan
    from repro.obs.bus import SealedTrace, TraceBus
    from repro.service.service import QueryService

from repro.catalog.analyze import analyze_table
from repro.catalog.catalog import Catalog, Table
from repro.config import ServiceConfig, SystemConfig
from repro.core.history import ProgressLog
from repro.core.indicator import ProgressIndicator
from repro.estimators.history import HistoryStore
from repro.executor.base import ExecContext
from repro.executor.runtime import QueryResult, run_query
from repro.planner.optimizer import Optimizer, PlannedQuery
from repro.sim.clock import VirtualClock
from repro.sim.load import LoadProfile
from repro.sql.binder import Binder
from repro.sql.parser import parse_select
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.schema import Schema


@dataclass
class MonitoredResult:
    """Result of a query executed with a progress indicator attached.

    Superseded by :class:`repro.api.QueryHandle`; kept as the bundle the
    deprecated facade (and ``QueryHandle.monitored()``) returns.
    """

    result: QueryResult
    log: ProgressLog
    indicator: ProgressIndicator
    #: Sealed, read-only view of the recorded trace when tracing was on
    #: for this run, else None.  (Earlier versions leaked the live
    #: TraceBus here; callers who passed their own bus still hold it.)
    trace: Optional["SealedTrace"] = None


class Database:
    """A simulated database instance on a virtual clock."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        load: Optional[LoadProfile] = None,
    ):
        self.config = config or SystemConfig()
        self.clock = VirtualClock(load)
        self.disk = SimulatedDisk(self.clock, self.config.cost)
        self.buffer_pool = BufferPool(
            self.disk, self.config.buffer_pool_pages, self.config.cost
        )
        self.catalog = Catalog(self.disk, self.config.page_size)
        #: Cross-query estimate-correction memory for the "history"
        #: estimator (and the ensemble's history candidate): finished
        #: monitored queries record estimated-vs-actual cardinalities
        #: per plan signature here.  Instance-scoped on purpose — two
        #: Database objects never share learned state, so rebuilding a
        #: database replays identically.  Survives :meth:`restart` (a
        #: buffer-pool cold start does not erase what the DBA learned).
        self.history_store = HistoryStore()

    # ------------------------------------------------------------------
    # schema & data

    def create_table(
        self, name: str, schema: Schema, rows: Optional[Iterable[Sequence]] = None
    ) -> Table:
        """Create a table; optionally bulk-load rows (no I/O charged)."""
        table = self.catalog.create_table(name, schema)
        if rows is not None:
            table.heap.bulk_load(rows)
        return table

    def create_index(self, table: str, column: str):
        """Build a B-tree index on one column of an existing table."""
        return self.catalog.create_index(table, column)

    def analyze(self, table: Optional[str] = None) -> None:
        """Run the statistics collector (Section 5.1 does this pre-test)."""
        buckets = self.config.planner.histogram_buckets
        if table is not None:
            analyze_table(self.catalog.get_table(table), buckets)
            return
        for t in self.catalog.tables():
            analyze_table(t, buckets)

    def restart(self) -> None:
        """Cold-start the buffer pool (the paper restarts before each test)."""
        self.buffer_pool.clear()

    def set_load(self, load: LoadProfile) -> None:
        """Install a run-time load profile (interference windows)."""
        self.clock.set_load(load)

    # ------------------------------------------------------------------
    # fault injection (the robustness layer)

    def install_faults(self, plan: "FaultPlan") -> "FaultInjector":
        """Arm deterministic fault injection on this instance's storage.

        The returned :class:`~repro.fault.FaultInjector` draws from
        ``random.Random(plan.seed)``, so the same plan over the same
        execution replays the identical fault schedule.  Installing a new
        plan replaces the previous injector (and resets its stream).
        """
        from repro.fault.injector import FaultInjector

        injector = FaultInjector(plan, self.clock)
        self.disk.set_faults(injector)
        self.buffer_pool.set_faults(injector)
        return injector

    def clear_faults(self) -> None:
        """Disarm fault injection; storage hooks return to the ~zero path."""
        self.disk.set_faults(None)
        self.buffer_pool.set_faults(None)

    @property
    def faults(self) -> "Optional[FaultInjector]":
        """The installed fault injector, if any."""
        return self.disk.faults

    # ------------------------------------------------------------------
    # sessions (the stable query API)

    def connect(
        self,
        policy: str = "round_robin",
        quantum_pages: Optional[int] = None,
    ) -> "Session":
        """Open a :class:`repro.api.Session` — the stable query surface.

        Queries submitted through one session run cooperatively
        interleaved (see :mod:`repro.sched`); ``policy`` and
        ``quantum_pages`` configure its scheduler.
        """
        from repro.api import Session
        from repro.sched.scheduler import DEFAULT_QUANTUM_PAGES

        return Session(
            self,
            policy=policy,
            quantum_pages=DEFAULT_QUANTUM_PAGES
            if quantum_pages is None
            else quantum_pages,
        )

    def service(
        self,
        config: Optional["ServiceConfig"] = None,
        policy: str = "weighted_fair",
        quantum_pages: Optional[int] = None,
        trace: Union[None, bool, "TraceBus"] = None,
    ) -> "QueryService":
        """Open a :class:`repro.service.QueryService` — the multi-tenant
        front-end with admission control, load shedding and fair share.

        ``config`` defaults to this database's
        :attr:`SystemConfig.service` knobs (``with_service(...)``).
        """
        from repro.sched.scheduler import DEFAULT_QUANTUM_PAGES
        from repro.service.service import QueryService

        return QueryService(
            self,
            config=config,
            policy=policy,
            quantum_pages=DEFAULT_QUANTUM_PAGES
            if quantum_pages is None
            else quantum_pages,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # queries

    def prepare(self, sql: str) -> PlannedQuery:
        """Parse, bind and optimize one SELECT statement."""
        statement = parse_select(sql)
        bound = Binder(self.catalog).bind(statement)
        return Optimizer(self.config).plan(bound)

    def verify(self, sql: str) -> "list[Violation]":
        """Statically verify a statement's plan/segment invariants.

        Returns the list of :class:`repro.analysis.invariants.Violation`
        found (empty for a clean plan) without executing anything.
        """
        from repro.analysis.invariants import verify_plan

        _specs, violations = verify_plan(self.prepare(sql).root)
        return violations

    def _gate_unmonitored(self, planned: PlannedQuery, label: str) -> None:
        """Pre-execution invariant gate for the unmonitored fast path.

        The monitored path is always gated by the indicator (warn-only by
        default); the fast path skips segment building entirely, so it is
        only verified in strict mode (tests/debug, ``REPRO_VERIFY=strict``)
        where correctness checking outranks overhead.
        """
        from repro.analysis.gate import gate_segments, resolve_verify_mode
        from repro.core.segments import build_segments

        if resolve_verify_mode(self.config) != "strict":
            return
        gate_segments(
            planned.root, build_segments(planned.root), mode="strict", label=label
        )

    def execute(
        self, sql: str, keep_rows: bool = True, max_rows: Optional[int] = None
    ) -> QueryResult:
        """Run a query without progress monitoring.

        .. deprecated::
            Use ``db.connect()`` and
            ``session.submit(sql, monitor=False).result()`` (or the
            ``session.execute`` convenience).  This shim stays for
            source compatibility only.
        """
        warnings.warn(
            "Database.execute() is deprecated; use Database.connect() and "
            "Session.submit(sql, monitor=False).result()",
            DeprecationWarning,
            stacklevel=2,
        )
        return (
            self.connect()
            .submit(
                sql,
                name=sql.strip() or "query",
                monitor=False,
                keep_rows=keep_rows,
                max_rows=max_rows,
            )
            .result()
        )

    def explain(self, sql: str) -> str:
        """EXPLAIN: the annotated plan without executing it."""
        from repro.planner.explain import explain as render

        return render(self.prepare(sql).root)

    def explain_analyze(self, sql: str) -> str:
        """EXPLAIN ANALYZE: run the query and show actual vs estimated rows.

        The performance-tuning companion of the paper's Section 6: after a
        monitored run reveals a wrong cost estimate, this pinpoints which
        operator's cardinality estimate was off.
        """
        from repro.planner.explain import explain as render

        planned = self.prepare(sql)
        self._gate_unmonitored(planned, label=sql.strip())
        ctx = ExecContext(
            self.clock,
            self.disk,
            self.buffer_pool,
            self.config,
            tracker=None,
            count_rows=True,
        )
        result = run_query(planned, ctx, keep_rows=False)
        plan_text = render(planned.root, actual_rows=ctx.actual_rows)
        return (
            plan_text
            + f"\nExecution: {result.row_count} rows in "
            + f"{result.elapsed:.2f} simulated seconds"
        )

    def execute_with_progress(
        self,
        sql: str,
        keep_rows: bool = False,
        max_rows: Optional[int] = None,
        on_report=None,
        trace: "Optional[TraceBus]" = None,
    ) -> MonitoredResult:
        """Run a query with a progress indicator attached.

        .. deprecated::
            Use ``db.connect()`` and ``session.submit(sql)`` — the
            returned :class:`repro.api.QueryHandle` carries progress,
            result and (sealed) trace.  This shim stays for source
            compatibility only.
        """
        warnings.warn(
            "Database.execute_with_progress() is deprecated; use "
            "Database.connect() and Session.submit(sql) — see repro.api",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_monitored_shim(
            self.prepare(sql),
            keep_rows=keep_rows,
            max_rows=max_rows,
            on_report=on_report,
            trace=trace,
            label=sql.strip(),
        )

    def run_planned_with_progress(
        self,
        planned: PlannedQuery,
        keep_rows: bool = False,
        max_rows: Optional[int] = None,
        on_report=None,
        trace: "Optional[TraceBus]" = None,
        label: str = "query",
    ) -> MonitoredResult:
        """Run an already-prepared plan with a progress indicator attached.

        .. deprecated::
            Use ``db.connect()`` and ``session.submit(planned)`` — the
            session surface accepts prepared plans directly.  This shim
            stays for source compatibility only.
        """
        warnings.warn(
            "Database.run_planned_with_progress() is deprecated; use "
            "Database.connect() and Session.submit(planned) — see repro.api",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_monitored_shim(
            planned,
            keep_rows=keep_rows,
            max_rows=max_rows,
            on_report=on_report,
            trace=trace,
            label=label,
        )

    def _run_monitored_shim(
        self,
        planned: PlannedQuery,
        keep_rows: bool,
        max_rows: Optional[int],
        on_report,
        trace: "Union[None, TraceBus]",
        label: str,
    ) -> MonitoredResult:
        """Shared body of the deprecated monitored facade: one-query
        session, legacy bundle out (``trace`` sealed, not live)."""
        handle = self.connect().submit(
            planned,
            name=label or "query",
            monitor=True,
            trace=trace,
            keep_rows=keep_rows,
            max_rows=max_rows,
            on_report=on_report,
        )
        return handle.monitored()
