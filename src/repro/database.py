"""The top-level database facade.

One :class:`Database` is a complete simulated RDBMS instance: virtual
clock, disk, buffer pool, catalog, optimizer and executor.  Experiments
build one, load tables, ANALYZE, and run queries — optionally with a
progress indicator attached, which is the monitored path the paper's
Section 5 evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - analysis/obs are imported lazily
    from repro.analysis.invariants import Violation
    from repro.obs.bus import TraceBus

from repro.catalog.analyze import analyze_table
from repro.catalog.catalog import Catalog, Table
from repro.config import SystemConfig
from repro.core.history import ProgressLog
from repro.core.indicator import ProgressIndicator
from repro.executor.base import ExecContext
from repro.executor.runtime import QueryResult, run_query
from repro.planner.optimizer import Optimizer, PlannedQuery
from repro.sim.clock import VirtualClock
from repro.sim.load import LoadProfile
from repro.sql.binder import Binder
from repro.sql.parser import parse_select
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.schema import Schema


@dataclass
class MonitoredResult:
    """Result of a query executed with a progress indicator attached."""

    result: QueryResult
    log: ProgressLog
    indicator: ProgressIndicator
    #: The recorded TraceBus when tracing was on for this run, else None.
    trace: Optional["TraceBus"] = None


class Database:
    """A simulated database instance on a virtual clock."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        load: Optional[LoadProfile] = None,
    ):
        self.config = config or SystemConfig()
        self.clock = VirtualClock(load)
        self.disk = SimulatedDisk(self.clock, self.config.cost)
        self.buffer_pool = BufferPool(
            self.disk, self.config.buffer_pool_pages, self.config.cost
        )
        self.catalog = Catalog(self.disk, self.config.page_size)

    # ------------------------------------------------------------------
    # schema & data

    def create_table(
        self, name: str, schema: Schema, rows: Optional[Iterable[Sequence]] = None
    ) -> Table:
        """Create a table; optionally bulk-load rows (no I/O charged)."""
        table = self.catalog.create_table(name, schema)
        if rows is not None:
            table.heap.bulk_load(rows)
        return table

    def create_index(self, table: str, column: str):
        """Build a B-tree index on one column of an existing table."""
        return self.catalog.create_index(table, column)

    def analyze(self, table: Optional[str] = None) -> None:
        """Run the statistics collector (Section 5.1 does this pre-test)."""
        buckets = self.config.planner.histogram_buckets
        if table is not None:
            analyze_table(self.catalog.get_table(table), buckets)
            return
        for t in self.catalog.tables():
            analyze_table(t, buckets)

    def restart(self) -> None:
        """Cold-start the buffer pool (the paper restarts before each test)."""
        self.buffer_pool.clear()

    def set_load(self, load: LoadProfile) -> None:
        """Install a run-time load profile (interference windows)."""
        self.clock.set_load(load)

    # ------------------------------------------------------------------
    # queries

    def prepare(self, sql: str) -> PlannedQuery:
        """Parse, bind and optimize one SELECT statement."""
        statement = parse_select(sql)
        bound = Binder(self.catalog).bind(statement)
        return Optimizer(self.config).plan(bound)

    def verify(self, sql: str) -> "list[Violation]":
        """Statically verify a statement's plan/segment invariants.

        Returns the list of :class:`repro.analysis.invariants.Violation`
        found (empty for a clean plan) without executing anything.
        """
        from repro.analysis.invariants import verify_plan

        _specs, violations = verify_plan(self.prepare(sql).root)
        return violations

    def _gate_unmonitored(self, planned: PlannedQuery, label: str) -> None:
        """Pre-execution invariant gate for the unmonitored fast path.

        The monitored path is always gated by the indicator (warn-only by
        default); the fast path skips segment building entirely, so it is
        only verified in strict mode (tests/debug, ``REPRO_VERIFY=strict``)
        where correctness checking outranks overhead.
        """
        from repro.analysis.gate import gate_segments, resolve_verify_mode
        from repro.core.segments import build_segments

        if resolve_verify_mode(self.config) != "strict":
            return
        gate_segments(
            planned.root, build_segments(planned.root), mode="strict", label=label
        )

    def execute(
        self, sql: str, keep_rows: bool = True, max_rows: Optional[int] = None
    ) -> QueryResult:
        """Run a query without progress monitoring (the fast path)."""
        planned = self.prepare(sql)
        self._gate_unmonitored(planned, label=sql.strip())
        ctx = ExecContext(
            self.clock, self.disk, self.buffer_pool, self.config, tracker=None
        )
        return run_query(planned, ctx, keep_rows=keep_rows, max_rows=max_rows)

    def explain(self, sql: str) -> str:
        """EXPLAIN: the annotated plan without executing it."""
        from repro.planner.explain import explain as render

        return render(self.prepare(sql).root)

    def explain_analyze(self, sql: str) -> str:
        """EXPLAIN ANALYZE: run the query and show actual vs estimated rows.

        The performance-tuning companion of the paper's Section 6: after a
        monitored run reveals a wrong cost estimate, this pinpoints which
        operator's cardinality estimate was off.
        """
        from repro.planner.explain import explain as render

        planned = self.prepare(sql)
        self._gate_unmonitored(planned, label=sql.strip())
        ctx = ExecContext(
            self.clock,
            self.disk,
            self.buffer_pool,
            self.config,
            tracker=None,
            count_rows=True,
        )
        result = run_query(planned, ctx, keep_rows=False)
        plan_text = render(planned.root, actual_rows=ctx.actual_rows)
        return (
            plan_text
            + f"\nExecution: {result.row_count} rows in "
            + f"{result.elapsed:.2f} simulated seconds"
        )

    def execute_with_progress(
        self,
        sql: str,
        keep_rows: bool = False,
        max_rows: Optional[int] = None,
        on_report=None,
        trace: "Optional[TraceBus]" = None,
    ) -> MonitoredResult:
        """Run a query with a progress indicator attached."""
        planned = self.prepare(sql)
        return self.run_planned_with_progress(
            planned,
            keep_rows=keep_rows,
            max_rows=max_rows,
            on_report=on_report,
            trace=trace,
            label=sql.strip(),
        )

    def run_planned_with_progress(
        self,
        planned: PlannedQuery,
        keep_rows: bool = False,
        max_rows: Optional[int] = None,
        on_report=None,
        trace: "Optional[TraceBus]" = None,
        label: str = "query",
    ) -> MonitoredResult:
        """Run an already-prepared plan with a progress indicator attached.

        ``trace`` attaches an explicit :class:`repro.obs.bus.TraceBus`;
        when None, one is created automatically if tracing is enabled via
        ``ProgressConfig.trace_enabled`` or the ``REPRO_TRACE`` env var.
        The bus observes this run only: the shared disk/buffer-pool hooks
        are attached for the duration of the query and restored after.
        """
        if trace is None:
            from repro.obs import resolve_trace_enabled

            if resolve_trace_enabled(self.config):
                from repro.obs import TraceBus as _TraceBus

                trace = _TraceBus()
        indicator = ProgressIndicator(
            planned, self.clock, self.config, on_report=on_report,
            trace=trace, label=label,
        )
        ctx = ExecContext(
            self.clock,
            self.disk,
            self.buffer_pool,
            self.config,
            tracker=indicator.tracker,
            trace=trace,
        )
        previous = (self.disk.trace, self.buffer_pool.trace)
        if trace is not None:
            self.disk.trace = trace
            self.buffer_pool.trace = trace
        try:
            result = run_query(planned, ctx, keep_rows=keep_rows, max_rows=max_rows)
        finally:
            self.disk.trace, self.buffer_pool.trace = previous
        log = indicator.finalize()
        return MonitoredResult(
            result=result, log=log, indicator=indicator, trace=trace
        )
