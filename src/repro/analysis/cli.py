"""``python -m repro.analysis`` / ``repro-analyze`` — the analysis CLI.

Subcommands:

* ``verify`` — plan the paper's built-in workload queries (Q1-Q5 by
  default, or any SQL via ``--sql``), run the segment builder, and check
  every plan/segment invariant.  Exit code 0 when all plans are clean,
  1 otherwise.
* ``lint`` — run the repo-specific AST lint pass over files/directories
  (default ``src``).  Exit code 0 when no findings, 1 otherwise.
* ``races`` — interprocedural yield-point atomicity analysis (REPRO10x):
  shared-state writes outside owner methods, read-modify-write spans
  crossing a suspension point.  ``--strict`` fails on any finding not
  covered by the committed baseline (and on stale baseline entries).
* ``effects`` — determinism-effect checker (REPRO11x): functions in the
  engine core that reach a nondeterminism source (wall clock, unseeded
  random, environment, ...).  Same ``--strict`` / baseline contract.
* ``crosscheck`` — validate the static may-yield summaries against
  pulses observed in a real run (or a recorded JSONL trace): a class
  observed originating pulses must be statically an originator.

Examples::

    python -m repro.analysis verify --query Q2 --scale 0.01
    repro-analyze lint --rule REPRO004 src
    repro-analyze races --strict
    repro-analyze effects --update-baseline
    repro-analyze crosscheck --strict
    repro-analyze crosscheck --record traces/q5.jsonl --query Q5
    repro-analyze crosscheck --trace traces/q5.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from repro.analysis.invariants import Violation, verify_plan
from repro.analysis.lint import lint_paths
from repro.analysis.report import render_findings, render_violations
from repro.analysis.rules import LINT_RULES
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - keeps CLI import light
    from repro.analysis.flow.findings import FlowFinding
    from repro.database import Database


def _build_database(query: str, scale: float, work_mem: int) -> "Database":
    """The workload database a paper query runs against (Q3 needs the
    correlated generator; everything else uses plain TPC-R)."""
    from repro.config import SystemConfig
    from repro.workloads import correlated, tpcr

    config = SystemConfig(work_mem_pages=work_mem)
    builder = correlated if query == "Q3" else tpcr
    return builder.build_database(scale=scale, config=config)


def cmd_verify(args: argparse.Namespace) -> int:
    """Verify the built-in workloads' plans (or ad-hoc SQL)."""
    from repro.workloads import queries

    if args.sql is not None:
        targets = {"sql": args.sql}
    elif args.query is not None:
        name = args.query.upper()
        if name not in queries.PAPER_QUERIES:
            print(f"unknown query {args.query!r}; choose from Q1..Q5",
                  file=sys.stderr)
            return 2
        targets = {name: queries.PAPER_QUERIES[name]}
    else:
        targets = dict(queries.PAPER_QUERIES)

    results: dict[str, list[Violation]] = {}
    for name, sql in targets.items():
        db = _build_database(name, args.scale, args.work_mem)
        try:
            planned = db.prepare(sql)
        except ReproError as exc:
            print(f"{name}: cannot plan: {exc}", file=sys.stderr)
            return 2
        _specs, violations = verify_plan(planned.root)
        results[name] = violations
    print(render_violations(results))
    total = sum(len(v) for v in results.values())
    if total:
        print(f"\n{total} violation(s) across {len(results)} plan(s)")
        return 1
    print(f"\nall {len(results)} plan(s) verified")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Lint files/directories with the repo-specific rules."""
    rules = set(args.rule) if args.rule else None
    if rules is not None:
        unknown = rules - set(LINT_RULES)
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(LINT_RULES))}",
                file=sys.stderr,
            )
            return 2
    findings = lint_paths(args.paths, rules=rules)
    print(render_findings(findings))
    return 1 if findings else 0


def _run_flow_analysis(args: argparse.Namespace, which: str) -> int:
    """Shared body of ``races`` and ``effects``: build the call graph,
    run the pass, apply the baseline, render."""
    from repro.analysis.flow import (
        analyze_effects,
        analyze_races,
        build_callgraph,
        find_repo_root,
    )
    from repro.analysis.flow.baseline import (
        BASELINE_FILENAME,
        Baseline,
        update_baseline,
    )
    from repro.analysis.flow.findings import render_flow_findings

    repo_root = find_repo_root()
    package_dir = Path(args.package) if args.package else None
    if package_dir is None:
        import repro

        package_dir = Path(repro.__file__).resolve().parent
    graph = build_callgraph(package_dir)
    root_for_paths = repo_root or Path.cwd()
    analyzer = analyze_races if which == "races" else analyze_effects
    findings: "list[FlowFinding]" = analyzer(graph, root_for_paths)

    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    elif repo_root is not None and (repo_root / BASELINE_FILENAME).is_file():
        baseline_path = repo_root / BASELINE_FILENAME

    if getattr(args, "update_baseline", False):
        target = baseline_path or (
            (repo_root or Path.cwd()) / BASELINE_FILENAME
        )
        previous = Baseline.load(target) if target.is_file() else None
        # Keep the other pass's suppressions: merge by re-reading and only
        # replacing entries whose rule family this pass owns.
        own_prefix = "REPRO10" if which == "races" else "REPRO11"
        kept = [
            e
            for e in (previous.entries if previous else [])
            if not e.rule.startswith(own_prefix)
        ]
        n = update_baseline(findings, target, previous)
        if kept:
            import json as _json

            doc = _json.loads(target.read_text(encoding="utf-8"))
            for e in kept:
                doc["suppressions"].append(
                    {
                        "rule": e.rule,
                        "path": e.path,
                        "function": e.function,
                        "count": e.count,
                        "justification": e.justification,
                    }
                )
            doc["suppressions"].sort(
                key=lambda s: (s["rule"], s["path"], s["function"])
            )
            target.write_text(
                _json.dumps(doc, indent=2) + "\n", encoding="utf-8"
            )
            n = len(doc["suppressions"])
        print(f"wrote {n} suppression(s) to {target}")
        return 0

    baseline = (
        Baseline.load(baseline_path)
        if baseline_path is not None and baseline_path.is_file()
        else Baseline.empty()
    )
    unsuppressed, suppressed, stale = baseline.filter(findings)
    print(render_flow_findings(unsuppressed))
    if suppressed:
        print(f"({len(suppressed)} finding(s) suppressed by baseline)")
    failed = bool(unsuppressed)
    if args.strict:
        for entry in stale:
            # Only police entries this pass can re-derive.
            own_prefix = "REPRO10" if which == "races" else "REPRO11"
            if entry.rule.startswith(own_prefix):
                print(
                    f"stale baseline entry: {entry.rule} {entry.path} "
                    f"[{entry.function}] matches nothing — remove it"
                )
                failed = True
    return 1 if failed else 0


def cmd_races(args: argparse.Namespace) -> int:
    """Yield-point atomicity analysis (REPRO10x)."""
    return _run_flow_analysis(args, "races")


def cmd_effects(args: argparse.Namespace) -> int:
    """Determinism-effect analysis (REPRO11x)."""
    return _run_flow_analysis(args, "effects")


def cmd_crosscheck(args: argparse.Namespace) -> int:
    """Validate static may-yield summaries against observed pulses."""
    from repro.analysis.flow import crosscheck as cc

    if args.record is not None:
        n = cc.record_trace(
            args.record,
            query=(args.query or "Q5").upper(),
            scale=args.scale,
            work_mem=args.work_mem,
        )
        print(f"recorded {n} probe event(s) to {args.record}")
        return 0
    if args.trace is not None:
        report = cc.check_trace(args.trace, strict_complete=False)
    else:
        queries = [q.upper() for q in args.query.split(",")] if args.query else None
        report = cc.run_crosscheck(
            queries=queries,
            scale=args.scale,
            work_mem=args.work_mem,
            strict_complete=args.strict,
            synthetic=args.query is None,
        )
    print(report.render())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Static analysis: plan invariant verifier + AST lint",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="verify plan/segment invariants")
    verify.add_argument("--query", default=None,
                        help="one paper query (Q1..Q5); default: all")
    verify.add_argument("--sql", default=None,
                        help="verify an ad-hoc SELECT against the TPC-R data")
    verify.add_argument("--scale", type=float, default=0.005,
                        help="TPC-R scale factor (default 0.005)")
    verify.add_argument("--work-mem", type=int, default=24,
                        help="work_mem in pages (default 24; small values "
                        "force multi-batch joins and external sorts)")
    verify.set_defaults(func=cmd_verify)

    lint = sub.add_parser("lint", help="run the repo-specific AST lint pass")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories (default: src)")
    lint.add_argument("--rule", action="append", default=None,
                      metavar="REPROxxx",
                      help="restrict to one rule id (repeatable)")
    lint.set_defaults(func=cmd_lint)

    def _flow_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--package", default=None,
                       help="package directory to analyze "
                       "(default: the installed repro package)")
        p.add_argument("--baseline", default=None,
                       help="baseline file (default: analysis-baseline.json "
                       "at the repo root, when present)")
        p.add_argument("--strict", action="store_true",
                       help="also fail on stale baseline entries")
        p.add_argument("--update-baseline", action="store_true",
                       help="rewrite the baseline to cover current findings "
                       "(preserving existing justifications)")

    races = sub.add_parser(
        "races",
        help="interprocedural yield-point atomicity analysis (REPRO10x)",
    )
    _flow_args(races)
    races.set_defaults(func=cmd_races)

    effects = sub.add_parser(
        "effects",
        help="determinism-effect analysis for the engine core (REPRO11x)",
    )
    _flow_args(effects)
    effects.set_defaults(func=cmd_effects)

    crosscheck = sub.add_parser(
        "crosscheck",
        help="validate static may-yield summaries against observed pulses",
    )
    crosscheck.add_argument("--query", default=None,
                            help="paper queries to run, comma-separated "
                            "(default: Q1..Q5 plus synthetic coverage "
                            "queries)")
    crosscheck.add_argument("--scale", type=float, default=0.005,
                            help="TPC-R scale factor (default 0.005)")
    crosscheck.add_argument("--work-mem", type=int, default=4,
                            help="work_mem in pages (default 4; small values "
                            "force spilling joins and external sorts)")
    crosscheck.add_argument("--strict", action="store_true",
                            help="also fail when a static originator was "
                            "instantiated but never observed originating")
    crosscheck.add_argument("--record", default=None, metavar="PATH",
                            help="record one query's probe events to a JSONL "
                            "trace instead of validating")
    crosscheck.add_argument("--trace", default=None, metavar="PATH",
                            help="validate a previously recorded JSONL trace "
                            "instead of running queries")
    crosscheck.set_defaults(func=cmd_crosscheck)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
