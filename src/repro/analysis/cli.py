"""``python -m repro.analysis`` / ``repro-analyze`` — the analysis CLI.

Subcommands:

* ``verify`` — plan the paper's built-in workload queries (Q1-Q5 by
  default, or any SQL via ``--sql``), run the segment builder, and check
  every plan/segment invariant.  Exit code 0 when all plans are clean,
  1 otherwise.
* ``lint`` — run the repo-specific AST lint pass over files/directories
  (default ``src``).  Exit code 0 when no findings, 1 otherwise.

Examples::

    python -m repro.analysis verify
    python -m repro.analysis verify --query Q2 --scale 0.01
    python -m repro.analysis lint src tests
    repro-analyze lint --rule REPRO004 src
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Optional, Sequence

from repro.analysis.invariants import Violation, verify_plan
from repro.analysis.lint import lint_paths
from repro.analysis.report import render_findings, render_violations
from repro.analysis.rules import LINT_RULES
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - keeps CLI import light
    from repro.database import Database


def _build_database(query: str, scale: float, work_mem: int) -> "Database":
    """The workload database a paper query runs against (Q3 needs the
    correlated generator; everything else uses plain TPC-R)."""
    from repro.config import SystemConfig
    from repro.workloads import correlated, tpcr

    config = SystemConfig(work_mem_pages=work_mem)
    builder = correlated if query == "Q3" else tpcr
    return builder.build_database(scale=scale, config=config)


def cmd_verify(args: argparse.Namespace) -> int:
    """Verify the built-in workloads' plans (or ad-hoc SQL)."""
    from repro.workloads import queries

    if args.sql is not None:
        targets = {"sql": args.sql}
    elif args.query is not None:
        name = args.query.upper()
        if name not in queries.PAPER_QUERIES:
            print(f"unknown query {args.query!r}; choose from Q1..Q5",
                  file=sys.stderr)
            return 2
        targets = {name: queries.PAPER_QUERIES[name]}
    else:
        targets = dict(queries.PAPER_QUERIES)

    results: dict[str, list[Violation]] = {}
    for name, sql in targets.items():
        db = _build_database(name, args.scale, args.work_mem)
        try:
            planned = db.prepare(sql)
        except ReproError as exc:
            print(f"{name}: cannot plan: {exc}", file=sys.stderr)
            return 2
        _specs, violations = verify_plan(planned.root)
        results[name] = violations
    print(render_violations(results))
    total = sum(len(v) for v in results.values())
    if total:
        print(f"\n{total} violation(s) across {len(results)} plan(s)")
        return 1
    print(f"\nall {len(results)} plan(s) verified")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Lint files/directories with the repo-specific rules."""
    rules = set(args.rule) if args.rule else None
    if rules is not None:
        unknown = rules - set(LINT_RULES)
        if unknown:
            print(
                f"unknown rule(s): {', '.join(sorted(unknown))}; "
                f"available: {', '.join(sorted(LINT_RULES))}",
                file=sys.stderr,
            )
            return 2
    findings = lint_paths(args.paths, rules=rules)
    print(render_findings(findings))
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Static analysis: plan invariant verifier + AST lint",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="verify plan/segment invariants")
    verify.add_argument("--query", default=None,
                        help="one paper query (Q1..Q5); default: all")
    verify.add_argument("--sql", default=None,
                        help="verify an ad-hoc SELECT against the TPC-R data")
    verify.add_argument("--scale", type=float, default=0.005,
                        help="TPC-R scale factor (default 0.005)")
    verify.add_argument("--work-mem", type=int, default=24,
                        help="work_mem in pages (default 24; small values "
                        "force multi-batch joins and external sorts)")
    verify.set_defaults(func=cmd_verify)

    lint = sub.add_parser("lint", help="run the repo-specific AST lint pass")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories (default: src)")
    lint.add_argument("--rule", action="append", default=None,
                      metavar="REPROxxx",
                      help="restrict to one rule id (repeatable)")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
