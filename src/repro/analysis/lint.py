"""Lint driver: parse files, run every registered rule, honor ``noqa``.

The driver is rule-agnostic — all repo-specific logic lives in
:mod:`repro.analysis.rules`.  Findings on lines carrying a ``# noqa``
comment (bare, or naming the rule id) are suppressed, matching the
convention other linters use.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.analysis.rules import LINT_RULES, LintContext, LintFinding

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


def _suppressed(finding: LintFinding, lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    match = _NOQA_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # bare "# noqa" silences everything on the line
    wanted = {c.strip().upper() for c in codes.split(",")}
    return finding.rule.upper() in wanted


def _package_parts(path: Path) -> tuple[str, ...]:
    """Directory names between the file and the nearest package root.

    These are what rules dispatch on ("is this module under ``core/``?",
    "which layer does it sit in?").  Works both for the installed tree
    (``src/repro/core/x.py``) and for bare fixture trees in tests
    (``tmp/core/x.py``).
    """
    parts = path.resolve().parent.parts
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1 :]
    elif "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # Outside any known root: keep at most the last two directories so
        # fixture layouts like tmp123/core/bad.py still classify.
        parts = parts[-2:]
    return tuple(parts)


def lint_source(
    source: str, path: Union[str, Path] = "<string>"
) -> list[LintFinding]:
    """Lint one module's source text; syntax errors become findings."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            LintFinding(
                rule="REPRO000",
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = LintContext(path=str(path), packages=_package_parts(path))
    findings: list[LintFinding] = []
    for _name, rule in LINT_RULES.values():
        findings.extend(rule(tree, ctx))
    lines = source.splitlines()
    findings = [f for f in findings if not _suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Union[str, Path]) -> list[LintFinding]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            found.update(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            found.add(entry)
    return sorted(found)


def lint_paths(
    paths: Iterable[Union[str, Path]], rules: Optional[set[str]] = None
) -> list[LintFinding]:
    """Lint every ``.py`` file under ``paths``; optionally filter rules."""
    findings: list[LintFinding] = []
    for path in iter_python_files(paths):
        for finding in lint_file(path):
            if rules is None or finding.rule in rules:
                findings.append(finding)
    return findings
