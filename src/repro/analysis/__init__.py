"""Static analysis for the progress-indicator engine.

Three pillars, all dependency-free (stdlib only):

* :mod:`repro.analysis.invariants` — a plan/segment **invariant
  verifier**: given an annotated physical plan and the
  :class:`~repro.core.segments.SegmentSpec` list the segment builder
  derived from it, statically check the structural properties the
  paper's estimator silently assumes (Sections 4.2, 4.3 and 4.5).
  :mod:`repro.analysis.gate` wires it in front of query execution.

* :mod:`repro.analysis.lint` — a repo-specific **AST lint pass** built
  on :mod:`ast` with rules that encode this codebase's conventions
  (virtual clock only, no float-equality on progress fractions, no
  mutable default arguments, one-way package layering, no unseeded
  randomness).

* :mod:`repro.analysis.flow` — an **interprocedural flow analyzer** for
  the cooperative engine: a call graph with transitive may-yield
  summaries, yield-point atomicity diagnostics over the shared-state
  ownership registry (REPRO10x), a determinism-effect checker for the
  engine core (REPRO11x), and a hybrid cross-check that validates the
  static summaries against pulses observed in a real run.

Run them from the command line::

    python -m repro.analysis verify        # check Q1-Q5 plans
    python -m repro.analysis lint src      # lint the tree
    python -m repro.analysis races --strict
    python -m repro.analysis effects --strict
    python -m repro.analysis crosscheck --strict
"""

from repro.analysis.gate import (
    VERIFY_MODES,
    PlanVerificationError,
    PlanVerificationWarning,
    gate_segments,
    resolve_verify_mode,
)
from repro.analysis.invariants import (
    INVARIANT_RULES,
    Violation,
    collect_nodes,
    verify_plan,
    verify_segments,
)
from repro.analysis.lint import LintFinding, lint_file, lint_paths, lint_source
from repro.analysis.rules import LINT_RULES

__all__ = [
    "INVARIANT_RULES",
    "LINT_RULES",
    "VERIFY_MODES",
    "LintFinding",
    "PlanVerificationError",
    "PlanVerificationWarning",
    "Violation",
    "collect_nodes",
    "gate_segments",
    "lint_file",
    "lint_paths",
    "lint_source",
    "resolve_verify_mode",
    "verify_plan",
    "verify_segments",
]
