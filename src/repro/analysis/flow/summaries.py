"""Transitive may-yield summaries over the call graph.

Generator-coroutine semantics drive every definition here:

* a frame **suspends** only at a ``yield`` / ``yield from`` in its *own*
  body — a plain call never suspends the caller;
* a ``yield PULSE`` whose yield sits under an ``if <x> is PULSE:`` guard
  is the *forwarding* idiom (``pull``, the counting wrapper, every
  pass-through operator); an unguarded one **originates** a pulse — it is
  a bounded-work boundary the scheduler may use to suspend the query;
* a function **may reach** a pulse if its own frame originates one, or if
  any resolvable callee (plain call, iterated generator, ``yield from``)
  may — the may-analysis closure the hybrid trace cross-check validates
  against observed pulse events.

Class-level summaries aggregate a class's methods *and* their nested
``def``s (a run-merge's inner ``read_run`` belongs to ``SortOp``), which
is the granularity the dynamic pulse probe attributes at.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.flow.callgraph import CallGraph


@dataclass(frozen=True)
class YieldSummary:
    """Per-function yield/pulse facts."""

    qualname: str
    is_generator: bool
    #: Unguarded ``yield PULSE`` in this frame: a pulse origin.
    origin: bool
    #: This frame yields the PULSE marker at all (origin or forward).
    yields_pulse: bool
    #: May surface the PULSE marker to its consumer: yields it (origin or
    #: forward) or transitively reaches a function that does.
    may_pulse: bool


@dataclass(frozen=True)
class ClassPulseSummary:
    """Per-class aggregate of its methods' yield summaries."""

    class_key: str
    #: Some method (or nested def) of the class originates pulses.
    origin: bool
    #: Some method of the class may transitively reach a pulse origin.
    may_pulse: bool


def compute_summaries(graph: CallGraph) -> dict[str, YieldSummary]:
    """Fixpoint of may-pulse over the call graph's resolvable edges."""
    origin = {
        q: info.has_origin_yield() for q, info in graph.functions.items()
    }
    # Seed from every pulse yield — origins AND forwards (``pull``, the
    # pass-through operators): a forwarder surfaces pulses to whoever
    # iterates it, so its callers are may-pulse too.
    may_pulse = {
        q: origin[q] or any(y.yields_pulse for y in info.yields)
        for q, info in graph.functions.items()
    }
    # Propagate reachability backwards until stable.  The graph is small
    # (one pass per edge level); a worklist keeps it near-linear.
    worklist = [q for q, seeded in may_pulse.items() if seeded]
    seen_in_list = set(worklist)
    while worklist:
        target = worklist.pop()
        seen_in_list.discard(target)
        for caller in graph.callers(target):
            if not may_pulse.get(caller, False):
                may_pulse[caller] = True
                if caller not in seen_in_list:
                    worklist.append(caller)
                    seen_in_list.add(caller)
    return {
        q: YieldSummary(
            qualname=q,
            is_generator=info.is_generator,
            origin=origin[q],
            yields_pulse=any(y.yields_pulse for y in info.yields),
            may_pulse=may_pulse[q],
        )
        for q, info in graph.functions.items()
    }


def class_pulse_summaries(
    graph: CallGraph,
    summaries: "dict[str, YieldSummary] | None" = None,
) -> dict[str, ClassPulseSummary]:
    """Aggregate function summaries per class (nested defs included)."""
    if summaries is None:
        summaries = compute_summaries(graph)
    out: dict[str, ClassPulseSummary] = {}
    for key in graph.classes:
        origin = False
        may_pulse = False
        for info in graph.methods_of(key):
            s = summaries[info.qualname]
            origin = origin or s.origin
            may_pulse = may_pulse or s.may_pulse
        out[key] = ClassPulseSummary(
            class_key=key, origin=origin, may_pulse=may_pulse
        )
    return out


def operator_pulse_summaries(
    graph: CallGraph, base: str = "repro.executor.base.Operator"
) -> dict[str, ClassPulseSummary]:
    """Class summaries restricted to the ``Operator`` hierarchy, keyed by
    bare class name (the granularity the runtime pulse probe records)."""
    per_class = class_pulse_summaries(graph)
    out: dict[str, ClassPulseSummary] = {}
    for key, cls in graph.classes.items():
        # Walk the resolvable base chain to check hierarchy membership.
        seen: set[str] = set()
        stack = [key]
        in_hierarchy = False
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current == base:
                in_hierarchy = True
                break
            info = graph.classes.get(current)
            if info is not None:
                stack.extend(info.resolved_bases)
        if in_hierarchy:
            out[cls.name] = per_class[key]
    return out
