"""Interprocedural flow analysis for the cooperative engine.

The per-plan verifier (:mod:`repro.analysis.invariants`) and the per-file
lint pass (:mod:`repro.analysis.lint`) both reason about one artifact at a
time.  Since the executor became a coroutine over a cooperative scheduler,
the correctness story spans *interleavings*: monotone progress and
deterministic replay hold only if no read-modify-write on shared engine
state straddles a scheduling point, and nothing reachable from ``core/``
or ``executor/`` can introduce nondeterminism.  This package proves both
statically, from the stdlib :mod:`ast` alone:

* :mod:`~repro.analysis.flow.callgraph` — a call graph over ``src/repro``
  (name/self/alias/unique-method resolution, virtual dispatch over the
  ``Operator`` hierarchy).
* :mod:`~repro.analysis.flow.summaries` — transitive **may-yield**
  summaries: which functions can reach a ``PULSE`` origin, and which
  merely forward pulses.
* :mod:`~repro.analysis.flow.shared_state` — the ownership registry of
  shared mutable engine objects (buffer pool, disk, clock, trace bus,
  catalog, scheduler task table).
* :mod:`~repro.analysis.flow.atomicity` — REPRO100..102 hazards with
  call-path witnesses.
* :mod:`~repro.analysis.flow.effects` — REPRO110/111: the determinism
  effect checker for ``core/`` + ``executor/``.
* :mod:`~repro.analysis.flow.baseline` — the committed suppression file
  (every entry carries a written justification).
* :mod:`~repro.analysis.flow.crosscheck` — the hybrid check validating
  static may-yield summaries against pulse events in a recorded trace.
"""

from __future__ import annotations

from repro.analysis.flow.atomicity import analyze_races
from repro.analysis.flow.baseline import Baseline, BaselineEntry, find_repo_root
from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, build_callgraph
from repro.analysis.flow.effects import analyze_effects
from repro.analysis.flow.findings import FlowFinding, render_flow_findings
from repro.analysis.flow.shared_state import SHARED_STATE_REGISTRY, SharedObject
from repro.analysis.flow.summaries import (
    ClassPulseSummary,
    YieldSummary,
    class_pulse_summaries,
    compute_summaries,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "ClassPulseSummary",
    "FlowFinding",
    "FunctionInfo",
    "SHARED_STATE_REGISTRY",
    "SharedObject",
    "YieldSummary",
    "analyze_effects",
    "analyze_races",
    "build_callgraph",
    "class_pulse_summaries",
    "compute_summaries",
    "find_repo_root",
    "render_flow_findings",
]
