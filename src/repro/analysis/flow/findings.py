"""The finding type shared by the interprocedural passes.

Flow findings differ from per-file :class:`~repro.analysis.rules.LintFinding`
in two ways: they name the *function* they occur in (baseline suppressions
match on it), and they may carry a call-path **witness** — the chain of
calls that makes an interprocedural claim checkable by a human.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FlowFinding:
    """One interprocedural diagnostic at a source location."""

    rule: str
    #: Repo-relative posix path of the file.
    path: str
    #: Qualified name of the containing function ("repro.sched.scheduler.
    #: CooperativeScheduler._run_slice"), or the module name for
    #: module-level findings.
    function: str
    line: int
    message: str
    #: Call chain demonstrating the claim, outermost first.  Empty when
    #: the finding is self-contained.
    witness: tuple[str, ...] = field(default=())

    def format(self) -> str:
        lines = [f"{self.path}:{self.line}: {self.rule} [{self.function}] "
                 f"{self.message}"]
        if self.witness:
            lines.append("    via " + " -> ".join(self.witness))
        return "\n".join(lines)


def sort_findings(findings: list[FlowFinding]) -> list[FlowFinding]:
    """Deterministic report order (golden tests pin the rendered output)."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.function))


def render_flow_findings(findings: list[FlowFinding]) -> str:
    """Ruff-style report: one block per finding plus a per-rule summary."""
    ordered = sort_findings(findings)
    if not ordered:
        return "no findings"
    lines = [f.format() for f in ordered]
    by_rule: dict[str, int] = {}
    for f in ordered:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    lines.append("")
    lines.append(f"{len(ordered)} finding(s)")
    for rule in sorted(by_rule):
        lines.append(f"  {rule}: {by_rule[rule]}")
    return "\n".join(lines)
