"""The committed suppression baseline for flow findings.

``analysis-baseline.json`` at the repo root records the few findings
that are *justified* — every entry must carry a written justification,
and the loader rejects entries without one.  Matching is by
``(rule, path, function)`` with ``"*"`` as a function wildcard (a whole
module is vouched for, e.g. the thread-based concurrent workload whose
nondeterminism is wall-clock-only by design).  ``count`` caps how many
findings one entry may absorb (``null`` = unlimited, wildcard entries
only).

Strict mode fails on *stale* entries too: a suppression that no longer
matches anything is debt — the hazard was fixed, so the entry must go.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.analysis.flow.findings import FlowFinding

BASELINE_FILENAME = "analysis-baseline.json"


def find_repo_root(start: Optional[Path] = None) -> Optional[Path]:
    """Walk up from ``start`` (default: the installed package) to the
    directory containing ``pyproject.toml``."""
    if start is None:
        import repro

        module_file = repro.__file__
        if module_file is None:
            return None
        start = Path(module_file).resolve().parent
    current = start.resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return None


@dataclass
class BaselineEntry:
    """One justified suppression."""

    rule: str
    path: str
    #: Function qualname, or ``"*"`` to vouch for the whole file.
    function: str
    #: Max findings this entry absorbs; ``None`` = unlimited (wildcards).
    count: Optional[int]
    justification: str
    #: Findings absorbed during the current filter pass.
    used: int = 0

    def matches(self, finding: FlowFinding) -> bool:
        if self.rule != finding.rule or self.path != finding.path:
            return False
        if self.function != "*" and self.function != finding.function:
            return False
        return self.count is None or self.used < self.count


class Baseline:
    """The loaded suppression set."""

    def __init__(self, entries: list[BaselineEntry], path: Optional[Path]):
        self.entries = entries
        self.path = path

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([], None)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        p = Path(path)
        raw = json.loads(p.read_text(encoding="utf-8"))
        if not isinstance(raw, dict) or "suppressions" not in raw:
            raise ValueError(
                f"{p}: baseline must be an object with a 'suppressions' list"
            )
        entries: list[BaselineEntry] = []
        for i, item in enumerate(raw["suppressions"]):
            justification = str(item.get("justification", "")).strip()
            if not justification:
                raise ValueError(
                    f"{p}: suppression #{i} ({item.get('rule')}, "
                    f"{item.get('path')}) has no written justification — "
                    f"every baseline entry must say why it is safe"
                )
            count = item.get("count")
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    function=str(item.get("function", "*")),
                    count=None if count is None else int(count),
                    justification=justification,
                )
            )
        return cls(entries, p)

    def filter(
        self, findings: list[FlowFinding]
    ) -> tuple[list[FlowFinding], list[FlowFinding], list[BaselineEntry]]:
        """Split findings into (unsuppressed, suppressed); also return the
        stale entries that matched nothing."""
        for entry in self.entries:
            entry.used = 0
        unsuppressed: list[FlowFinding] = []
        suppressed: list[FlowFinding] = []
        for finding in findings:
            entry = next(
                (e for e in self.entries if e.matches(finding)), None
            )
            if entry is None:
                unsuppressed.append(finding)
            else:
                entry.used += 1
                suppressed.append(finding)
        stale = [e for e in self.entries if e.used == 0]
        return unsuppressed, suppressed, stale


def update_baseline(
    findings: list[FlowFinding],
    path: Union[str, Path],
    previous: Optional[Baseline] = None,
) -> int:
    """Rewrite the baseline to cover exactly the current findings.

    Existing justifications are preserved where an entry still matches;
    new entries get a placeholder the loader will reject until a human
    writes the real reason.  Returns the number of entries written.
    """
    groups: dict[tuple[str, str, str], int] = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.function)
        groups[key] = groups.get(key, 0) + 1

    def _prior_justification(rule: str, fpath: str, function: str) -> str:
        if previous is None:
            return ""
        for entry in previous.entries:
            if entry.rule == rule and entry.path == fpath and (
                entry.function in (function, "*")
            ):
                return entry.justification
        return ""

    suppressions = []
    for (rule, fpath, function), count in sorted(groups.items()):
        justification = _prior_justification(rule, fpath, function) or (
            "TODO: write a justification or fix the finding"
        )
        suppressions.append(
            {
                "rule": rule,
                "path": fpath,
                "function": function,
                "count": count,
                "justification": justification,
            }
        )
    doc = {
        "_comment": (
            "Justified suppressions for `repro-analyze races|effects`. "
            "Every entry needs a real justification; strict mode fails on "
            "stale entries. See docs/static_analysis.md."
        ),
        "suppressions": suppressions,
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return len(suppressions)
