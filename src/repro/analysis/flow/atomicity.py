"""Atomicity hazards: REPRO100, REPRO101, REPRO102.

The cooperative engine is single-threaded, so the only way state can
change "under" a function is across one of its *own* suspension points —
a ``yield`` / ``yield from`` in its frame (generator semantics; a plain
call never suspends the caller).  Three hazard shapes follow:

``REPRO100`` **unmediated-shared-write** — a raw attribute store to a
registered shared object from outside its owner class.  Even when such a
store is safe today, it bypasses the owner's invariants (restore
pairing, monotonic timestamps, counter consistency) and the analyzer
cannot see the pairing discipline; route it through a mediating owner
method (``set_owner`` / ``set_trace`` / ``set_faults`` / ``set_gate``)
or carry a justified baseline entry.

``REPRO101`` **rmw-across-yield** — inside one generator frame, a read
of a registered shared attribute, then a yield, then a write to the same
attribute with no re-read in between: the classic stale-read-modify-
write.  An augmented assignment (``x.attr += 1``) re-reads at the write
site and is therefore not flagged.  Positions are compared by line
number — a deliberate, documented approximation that ignores control
flow (sound for the straight-line accounting code it guards, cheap
enough to run in CI on every push).

``REPRO102`` **yield-in-owner** — a generator method of an owner class
that stores to one of its own registered attributes: the owner's
invariant window is held open across a suspension its callers cannot
see.  Owner mutation must be atomic (plain methods).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, FunctionNode
from repro.analysis.flow.findings import FlowFinding, sort_findings
from repro.analysis.flow.shared_state import (
    SHARED_STATE_REGISTRY,
    SharedObject,
    owner_for_store,
)


@dataclass(frozen=True)
class _Access:
    """One load/store of a registered shared attribute in a frame."""

    line: int
    #: (owner class key, attribute) — the shared location.
    location: tuple[str, str]
    is_store: bool
    #: The store re-reads at the write site (augmented assignment).
    rmw_safe: bool
    receiver: str


def _attr_chain(node: ast.AST) -> Optional[list[str]]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _classify(node: ast.AST) -> Optional[tuple[SharedObject, str, str]]:
    """(owner, attr, receiver text) when ``node`` is ``<...>.alias.attr``."""
    chain = _attr_chain(node)
    if chain is None or len(chain) < 2:
        return None
    receiver_tail, attr = chain[-2], chain[-1]
    owner = owner_for_store(receiver_tail, attr)
    if owner is None:
        return None
    return owner, attr, ".".join(chain[:-1])


class _AccessScanner(ast.NodeVisitor):
    """Collects shared-attribute accesses of one frame (no nested defs)."""

    def __init__(self) -> None:
        self.accesses: list[_Access] = []
        #: Attributes stored through a bare ``self`` receiver (REPRO102).
        self.self_stores: list[tuple[int, str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- stores ---------------------------------------------------------

    def _record_store(self, target: ast.AST, line: int, rmw_safe: bool) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, line, rmw_safe)
            return
        if isinstance(target, ast.Starred):
            self._record_store(target.value, line, rmw_safe)
            return
        node = target
        if isinstance(node, ast.Subscript):
            # ``X.attr[...] = v`` mutates the container behind the attr.
            node = node.value
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                self.self_stores.append((line, node.attr))
            hit = _classify(node)
            if hit is not None:
                owner, attr, receiver = hit
                self.accesses.append(
                    _Access(
                        line=line,
                        location=(owner.cls, attr),
                        is_store=True,
                        rmw_safe=rmw_safe,
                        receiver=receiver,
                    )
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target, node.lineno, rmw_safe=False)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store(node.target, node.lineno, rmw_safe=False)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target, node.lineno, rmw_safe=True)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_store(target, node.lineno, rmw_safe=False)

    # -- loads ----------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            hit = _classify(node)
            if hit is not None:
                owner, attr, receiver = hit
                self.accesses.append(
                    _Access(
                        line=node.lineno,
                        location=(owner.cls, attr),
                        is_store=False,
                        rmw_safe=False,
                        receiver=receiver,
                    )
                )
        self.generic_visit(node)


def _scan_frame(node: FunctionNode) -> _AccessScanner:
    scanner = _AccessScanner()
    for stmt in node.body:
        scanner.visit(stmt)
    return scanner


def _rel_path(path: str, repo_root: Optional[Path]) -> str:
    p = Path(path)
    if repo_root is not None:
        try:
            return p.relative_to(repo_root).as_posix()
        except ValueError:
            pass
    return p.as_posix()


def _is_owner_frame(info: FunctionInfo, owner: SharedObject) -> bool:
    return info.cls == owner.class_name and info.module == owner.module


def _check_unmediated_stores(
    info: FunctionInfo,
    scanner: _AccessScanner,
    graph: CallGraph,
    path: str,
) -> list[FlowFinding]:
    out: list[FlowFinding] = []
    for access in scanner.accesses:
        if not access.is_store:
            continue
        owner_key, attr = access.location
        owner = next(o for o in SHARED_STATE_REGISTRY if o.cls == owner_key)
        if _is_owner_frame(info, owner):
            continue
        out.append(
            FlowFinding(
                rule="REPRO100",
                path=path,
                function=info.qualname,
                line=access.line,
                message=(
                    f"unmediated store to shared "
                    f"{owner.class_name}.{attr} (via {access.receiver!r}) "
                    f"from outside its owner; use the owner's mediating API"
                ),
                witness=graph.witness_to_root(info.qualname),
            )
        )
    return out


def _check_rmw_across_yield(
    info: FunctionInfo,
    scanner: _AccessScanner,
    path: str,
) -> list[FlowFinding]:
    if not info.is_generator:
        return []
    yield_lines = sorted(y.line for y in info.yields)
    out: list[FlowFinding] = []
    by_location: dict[tuple[str, str], list[_Access]] = {}
    for access in scanner.accesses:
        by_location.setdefault(access.location, []).append(access)
    for location, accesses in sorted(by_location.items()):
        loads = sorted(a.line for a in accesses if not a.is_store)
        stores = [a for a in accesses if a.is_store and not a.rmw_safe]
        for store in sorted(stores, key=lambda a: a.line):
            crossing = [
                y
                for y in yield_lines
                if y < store.line and any(load < y for load in loads)
            ]
            if not crossing:
                continue
            yield_line = max(crossing)
            revalidated = any(
                yield_line < load < store.line for load in loads
            )
            if revalidated:
                continue
            owner_key, attr = location
            owner = next(
                o for o in SHARED_STATE_REGISTRY if o.cls == owner_key
            )
            out.append(
                FlowFinding(
                    rule="REPRO101",
                    path=path,
                    function=info.qualname,
                    line=store.line,
                    message=(
                        f"read of shared {owner.class_name}.{attr} crosses "
                        f"the yield at line {yield_line} before this write "
                        f"with no re-validation (stale read-modify-write)"
                    ),
                )
            )
    return out


def _check_yield_in_owner(
    info: FunctionInfo,
    scanner: _AccessScanner,
    path: str,
) -> list[FlowFinding]:
    if not info.is_generator or info.cls is None:
        return []
    for owner in SHARED_STATE_REGISTRY:
        if not _is_owner_frame(info, owner):
            continue
        touched = sorted(
            {attr for _, attr in scanner.self_stores if attr in owner.attrs}
        )
        if touched:
            return [
                FlowFinding(
                    rule="REPRO102",
                    path=path,
                    function=info.qualname,
                    line=info.line,
                    message=(
                        f"generator method of owner {owner.class_name} "
                        f"stores to registered state "
                        f"({', '.join(touched)}) across its own suspension "
                        f"points; owner mutation must be atomic"
                    ),
                )
            ]
    return []


def analyze_races(
    graph: CallGraph, repo_root: Optional[Path] = None
) -> list[FlowFinding]:
    """Run REPRO100..102 over every function frame in the graph."""
    findings: list[FlowFinding] = []
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        if info.node is None:
            continue
        scanner = _scan_frame(info.node)
        if not scanner.accesses and not scanner.self_stores:
            continue
        path = _rel_path(info.path, repo_root)
        findings.extend(_check_unmediated_stores(info, scanner, graph, path))
        findings.extend(_check_rmw_across_yield(info, scanner, path))
        findings.extend(_check_yield_in_owner(info, scanner, path))
    return sort_findings(findings)
