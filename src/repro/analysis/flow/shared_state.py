"""The ownership registry of shared mutable engine objects.

A *shared object* is one that several in-flight queries (or the scheduler
and a query) observe concurrently in virtual time: the buffer pool, the
simulated disk, the virtual clock, a trace bus, the catalog, and the
scheduler's task table.  Each entry names

* the owning class — the only code allowed to store to the object's
  registered attributes (everyone else must go through the owner's
  mediating API: ``set_owner``, ``set_trace``, ``set_faults``,
  ``set_gate``, ...);
* its **receiver aliases** — the local/attribute names the codebase
  conventionally binds instances to (``ctx.buffer_pool``, ``disk``,
  ``self._clock``), which is how a purely syntactic analysis recognises
  a receiver as shared without type inference;
* the **registered attributes** whose raw mutation from outside the
  owner is an atomicity hazard (REPRO100) and whose read/write straddling
  a yield inside the owner is one too (REPRO101/102).

The alias convention is enforced socially, not mechanically: binding a
``BufferPool`` to a name like ``x`` hides it from this analysis.  The
hybrid trace cross-check (:mod:`~repro.analysis.flow.crosscheck`) exists
precisely to catch the static story drifting from runtime behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SharedObject:
    """One shared mutable engine object and its ownership contract."""

    #: ClassInfo key of the owner ("repro.sim.clock.VirtualClock").
    cls: str
    #: Receiver names an instance is conventionally bound to.
    aliases: frozenset[str]
    #: Instance attributes whose unmediated external mutation is flagged.
    attrs: frozenset[str]
    description: str

    @property
    def class_name(self) -> str:
        return self.cls.rsplit(".", 1)[1]

    @property
    def module(self) -> str:
        return self.cls.rsplit(".", 1)[0]


SHARED_STATE_REGISTRY: tuple[SharedObject, ...] = (
    SharedObject(
        cls="repro.sim.clock.VirtualClock",
        aliases=frozenset({"clock", "_clock"}),
        attrs=frozenset({
            "now", "gate", "cost_charged", "_tickers", "_firing",
            "_load", "_factors", "_next_event",
        }),
        description="the virtual clock every query charges time against",
    ),
    SharedObject(
        cls="repro.storage.disk.SimulatedDisk",
        aliases=frozenset({"disk", "_disk"}),
        attrs=frozenset({
            "trace", "faults", "seq_reads", "random_reads", "writes",
            "_owner", "_owner_counters", "_files", "_ids",
        }),
        description="the simulated disk shared by all files and queries",
    ),
    SharedObject(
        cls="repro.storage.buffer.BufferPool",
        aliases=frozenset({"pool", "buffer_pool", "_pool", "_buffer_pool"}),
        attrs=frozenset({
            "trace", "faults", "hits", "misses", "_frames", "_pins",
        }),
        description="the LRU buffer pool in-flight queries contend for",
    ),
    SharedObject(
        cls="repro.obs.bus.TraceBus",
        aliases=frozenset({"trace", "bus", "trace_bus", "_trace", "_bus"}),
        attrs=frozenset({"events", "_subscribers", "_last_t", "_counts"}),
        description="a trace bus with monotonic-timestamp state",
    ),
    SharedObject(
        cls="repro.catalog.catalog.Catalog",
        aliases=frozenset({"catalog", "_catalog"}),
        attrs=frozenset({"_tables"}),
        description="the table catalog (DDL mutates it mid-workload)",
    ),
    SharedObject(
        cls="repro.sched.scheduler.CooperativeScheduler",
        aliases=frozenset({"scheduler", "sched", "_scheduler"}),
        attrs=frozenset({"tasks", "slices", "_seq"}),
        description="the cooperative scheduler's task table and slice log",
    ),
)


def receiver_type_map() -> dict[str, str]:
    """alias -> owner ClassInfo key, for call-graph receiver resolution.

    ``trace``/``bus`` style aliases are unambiguous; where two owners
    could claim an alias the registry is constructed so they do not.
    """
    out: dict[str, str] = {}
    for obj in SHARED_STATE_REGISTRY:
        for alias in obj.aliases:
            out.setdefault(alias, obj.cls)
    # Not a *shared* object, but a conventional receiver the resolver
    # benefits from knowing: the per-query work tracker.
    out.setdefault("tracker", "repro.executor.work.WorkTracker")
    return out


def owner_for_store(receiver_tail: str, attr: str) -> "SharedObject | None":
    """The registry entry a store ``<...>.<receiver_tail>.<attr> = v``
    touches, if any."""
    for obj in SHARED_STATE_REGISTRY:
        if receiver_tail in obj.aliases and attr in obj.attrs:
            return obj
    return None


def registry_entry(class_key: str) -> "SharedObject | None":
    for obj in SHARED_STATE_REGISTRY:
        if obj.cls == class_key:
            return obj
    return None
