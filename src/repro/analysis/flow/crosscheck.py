"""Hybrid validation: static may-yield summaries vs. observed pulses.

The static side (:mod:`~repro.analysis.flow.summaries`) claims, per
operator class, whether it *originates* pulses (unguarded ``yield
PULSE``) or merely forwards them.  The dynamic side instruments a real
run: the operator factory wraps every operator in a probe wrapper, and
because one pulse propagates innermost-first through every enclosing
wrapper, an operator's **origin count** is its own sightings minus its
children's.  The two sides must agree:

* **soundness** — a class observed originating pulses must be statically
  an originator (a miss here means the static analysis would let the
  scheduler story rot silently: a suspension point it cannot see);
* **consistency** — a class that saw pulses at all must be statically
  may-pulse;
* **completeness** — every statically-originating class that was
  instantiated should be observed originating somewhere in the harness
  (strict mode; origins can be mode-dependent — a single-batch hash
  join never spills, a small sort never crosses a CPU chunk — so the
  harness forces tiny ``work_mem``).

Traces: probe events (``operator_built`` / ``pulse``) are ordinary
:mod:`repro.obs` events, so a run can be recorded to JSONL with the
standard exporter and re-validated offline — that is the CI shape
(record one Q5 trace, check it against the committed source).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.analysis.flow.callgraph import build_callgraph
from repro.analysis.flow.summaries import ClassPulseSummary, operator_pulse_summaries

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy
    from repro.executor.base import Operator
    from repro.obs.bus import TraceBus
    from repro.obs.events import TraceEvent
    from repro.sim.clock import VirtualClock

#: The default harness: every paper query, at a work_mem small enough to
#: force multi-batch hash joins and external sorts (mode-dependent
#: origins must actually fire).
DEFAULT_QUERIES: tuple[str, ...] = ("Q1", "Q2", "Q3", "Q4", "Q5")
DEFAULT_WORK_MEM = 4


class PulseProbe:
    """Runtime observer handed to the executor via ``ctx.pulse_probe``."""

    def __init__(
        self,
        clock: "VirtualClock",
        bus: Optional["TraceBus"] = None,
    ) -> None:
        self._clock = clock
        self.bus = bus
        #: build index -> operator class name.
        self.builds: dict[int, str] = {}
        #: build index -> pulses seen by that operator's wrapper.
        self.pulses: dict[int, int] = {}
        #: build index -> child build indexes.
        self.children: dict[int, tuple[int, ...]] = {}
        self._index_by_node: dict[int, int] = {}
        self._next = 0

    def on_build(self, op: "Operator") -> None:
        index = self._next
        self._next += 1
        self._index_by_node[id(op.node)] = index
        name = type(op).__name__
        self.builds[index] = name
        self.pulses[index] = 0
        kids = tuple(
            self._index_by_node[id(child)]
            for child in op.node.children
            if id(child) in self._index_by_node
        )
        self.children[index] = kids
        if self.bus is not None:
            from repro.obs.events import OperatorInstantiated

            self.bus.emit(
                OperatorInstantiated(
                    t=self._clock.now, op=name, node=index, children=kids
                )
            )

    def on_pulse(self, op: "Operator") -> None:
        index = self._index_by_node[id(op.node)]
        self.pulses[index] += 1
        if self.bus is not None:
            from repro.obs.events import PulseObserved

            self.bus.emit(
                PulseObserved(t=self._clock.now, op=self.builds[index], node=index)
            )

    # ------------------------------------------------------------------

    def origin_counts(self) -> dict[int, int]:
        """Per-operator origin pulses: own sightings minus children's."""
        return {
            index: self.pulses[index]
            - sum(self.pulses[child] for child in self.children[index])
            for index in self.builds
        }


@dataclass
class ObservedPulses:
    """Aggregated dynamic facts, per operator class name."""

    instantiated: dict[str, int] = field(default_factory=dict)
    seen: dict[str, int] = field(default_factory=dict)
    origin: dict[str, int] = field(default_factory=dict)

    def absorb_probe(self, probe: PulseProbe) -> None:
        origins = probe.origin_counts()
        for index, name in probe.builds.items():
            self.instantiated[name] = self.instantiated.get(name, 0) + 1
            self.seen[name] = self.seen.get(name, 0) + probe.pulses[index]
            self.origin[name] = self.origin.get(name, 0) + max(
                0, origins[index]
            )

    def absorb_events(self, events: "list[TraceEvent]") -> None:
        """Rebuild the per-class counts from a recorded (single-run)
        probe event stream."""
        builds: dict[int, str] = {}
        children: dict[int, tuple[int, ...]] = {}
        pulses: dict[int, int] = {}
        for event in events:
            payload: dict[str, Any] = event.to_dict()
            if event.kind == "operator_built":
                index = int(payload["node"])
                builds[index] = str(payload["op"])
                children[index] = tuple(int(c) for c in payload["children"])
                pulses.setdefault(index, 0)
            elif event.kind == "pulse":
                index = int(payload["node"])
                pulses[index] = pulses.get(index, 0) + 1
        for index, name in builds.items():
            own = pulses.get(index, 0)
            origin = own - sum(
                pulses.get(child, 0) for child in children.get(index, ())
            )
            self.instantiated[name] = self.instantiated.get(name, 0) + 1
            self.seen[name] = self.seen.get(name, 0) + own
            self.origin[name] = self.origin.get(name, 0) + max(0, origin)


@dataclass
class CrosscheckReport:
    """The static/dynamic agreement verdict."""

    ok: bool
    errors: list[str]
    notes: list[str]
    observed: ObservedPulses
    static: dict[str, ClassPulseSummary]

    def render(self) -> str:
        lines: list[str] = []
        for name in sorted(self.static):
            summary = self.static[name]
            built = self.observed.instantiated.get(name, 0)
            origin = self.observed.origin.get(name, 0)
            seen = self.observed.seen.get(name, 0)
            static_kind = (
                "origin" if summary.origin
                else ("forward" if summary.may_pulse else "silent")
            )
            lines.append(
                f"  {name:<20} static={static_kind:<8} built={built:<3} "
                f"pulses={seen:<6} origin={origin}"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        for error in self.errors:
            lines.append(f"  ERROR: {error}")
        verdict = "agree" if self.ok else "DISAGREE"
        lines.append(
            f"static may-yield summaries and observed pulses {verdict}"
        )
        return "\n".join(lines)


def static_operator_summaries(
    package_dir: Optional[Path] = None,
) -> dict[str, ClassPulseSummary]:
    """May-yield summaries for the ``Operator`` hierarchy in the source
    tree this interpreter is running."""
    if package_dir is None:
        import repro

        assert repro.__file__ is not None
        package_dir = Path(repro.__file__).resolve().parent
    graph = build_callgraph(package_dir)
    return operator_pulse_summaries(graph)


def validate(
    observed: ObservedPulses,
    static: Optional[dict[str, ClassPulseSummary]] = None,
    strict_complete: bool = False,
) -> CrosscheckReport:
    """Compare observed pulse attribution against the static summaries."""
    if static is None:
        static = static_operator_summaries()
    errors: list[str] = []
    notes: list[str] = []
    for name in sorted(observed.instantiated):
        summary = static.get(name)
        if summary is None:
            # Probe wrappers themselves, or operators outside the tree.
            continue
        if observed.origin.get(name, 0) > 0 and not summary.origin:
            errors.append(
                f"{name} was observed originating "
                f"{observed.origin[name]} pulse(s) but the static summary "
                f"says it only forwards — the analyzer missed a suspension "
                f"point"
            )
        if observed.seen.get(name, 0) > 0 and not summary.may_pulse:
            errors.append(
                f"{name} saw {observed.seen[name]} pulse(s) but is "
                f"statically pulse-free"
            )
    for name in sorted(static):
        summary = static[name]
        if not summary.origin:
            continue
        built = observed.instantiated.get(name, 0)
        if built == 0:
            notes.append(f"{name} is a static originator but was not "
                         f"instantiated by this run")
            continue
        if observed.origin.get(name, 0) == 0:
            message = (
                f"{name} is a static pulse originator and was instantiated "
                f"{built} time(s) but never observed originating"
            )
            if strict_complete:
                errors.append(message)
            else:
                notes.append(message)
    return CrosscheckReport(
        ok=not errors,
        errors=errors,
        notes=notes,
        observed=observed,
        static=static,
    )


# ----------------------------------------------------------------------
# running the harness


def _build_database(query: str, scale: float, work_mem: int) -> Any:
    from repro.config import SystemConfig
    from repro.workloads import correlated, tpcr

    config = SystemConfig(work_mem_pages=work_mem)
    builder = correlated if query == "Q3" else tpcr
    return builder.build_database(scale=scale, config=config)


def _probe_query(
    db: Any, sql: str, record: bool
) -> tuple[PulseProbe, "list[TraceEvent]"]:
    """Run one query on ``db`` with the pulse probe installed."""
    from repro.executor.base import PULSE, ExecContext
    from repro.executor.runtime import execute
    from repro.obs.bus import TraceBus

    planned = db.prepare(sql)
    bus = TraceBus() if record else None
    probe = PulseProbe(db.clock, bus)
    ctx = ExecContext(
        db.clock,
        db.disk,
        db.buffer_pool,
        db.config,
        tracker=None,
        pulse_probe=probe,
    )
    for item in execute(planned, ctx):
        if item is PULSE:
            continue
    events: "list[TraceEvent]" = list(bus.events) if bus is not None else []
    return probe, events


def _synthetic_database(work_mem: int) -> Any:
    """A purpose-built instance whose plans cover operators the paper
    workload skips at small scale: ORDER BY over a 20k-row table at tiny
    work_mem forces an external sort (SortOp), disabling hash join routes
    an equi-join through MergeJoinOp, and a fat-row table makes a
    multi-leaf index *range* scan beat the sequential scan — IndexScanOp
    pulses once per leaf page (fanout entries), so the range must cross a
    leaf boundary for its origin claim to be exercised."""
    from repro.config import SystemConfig
    from repro.database import Database
    from repro.storage.schema import Column, Schema
    from repro.storage.types import INTEGER, string

    config = SystemConfig(work_mem_pages=work_mem).with_planner(
        enable_hashjoin=False
    )
    db = Database(config)
    db.create_table(
        "big",
        Schema([Column("k", INTEGER), Column("pad", string(60))]),
        [(i, "x" * 50) for i in range(20_000)],
    )
    db.create_table(
        "small",
        Schema([Column("k", INTEGER), Column("v", INTEGER)]),
        [(i * 7 % 500, i) for i in range(500)],
    )
    db.create_table(
        "wide",
        Schema([Column("k", INTEGER), Column("pad", string(1400))]),
        [(i, "x" * 1400) for i in range(15_000)],
    )
    db.analyze()
    db.create_index("big", "k")
    db.create_index("wide", "k")
    return db


#: Queries run against :func:`_synthetic_database` in the full harness.
SYNTHETIC_QUERIES: tuple[str, ...] = (
    "select k from wide where k >= 0 and k < 600",
    "select pad from big order by k desc",
    "select b.k from big b, small s where b.k = s.k",
)


def run_probe(
    query: str,
    scale: float = 0.005,
    work_mem: int = DEFAULT_WORK_MEM,
    record: bool = False,
) -> tuple[PulseProbe, "list[TraceEvent]"]:
    """Run one paper query with the pulse probe installed.

    ``record=True`` also emits the probe's events onto a TraceBus whose
    event list is returned (for JSONL export).
    """
    from repro.workloads import queries as paper_queries

    name = query.upper()
    sql = paper_queries.PAPER_QUERIES[name]
    db = _build_database(name, scale, work_mem)
    return _probe_query(db, sql, record)


def run_crosscheck(
    queries: Optional[list[str]] = None,
    scale: float = 0.005,
    work_mem: int = DEFAULT_WORK_MEM,
    strict_complete: bool = False,
    synthetic: bool = True,
) -> CrosscheckReport:
    """Run the harness queries and validate against the static summaries.

    ``synthetic`` adds the purpose-built queries that exercise operators
    the paper workload's plans skip (index scan, external sort, merge
    join); disable it when probing one specific paper query.
    """
    observed = ObservedPulses()
    for query in queries or list(DEFAULT_QUERIES):
        probe, _events = run_probe(query, scale=scale, work_mem=work_mem)
        observed.absorb_probe(probe)
    if synthetic:
        db = _synthetic_database(work_mem)
        for sql in SYNTHETIC_QUERIES:
            probe, _events = _probe_query(db, sql, record=False)
            observed.absorb_probe(probe)
    return validate(observed, strict_complete=strict_complete)


def record_trace(
    path: Union[str, Path],
    query: str = "Q5",
    scale: float = 0.005,
    work_mem: int = DEFAULT_WORK_MEM,
) -> int:
    """Record one query's probe events to a JSONL trace; returns the
    number of events written."""
    from repro.obs.exporters import write_jsonl

    _probe, events = run_probe(query, scale=scale, work_mem=work_mem, record=True)
    return write_jsonl(events, path)


def check_trace(
    path: Union[str, Path], strict_complete: bool = False
) -> CrosscheckReport:
    """Validate a recorded (single-run) probe trace against the current
    source tree's static summaries."""
    from repro.obs.exporters import read_jsonl

    observed = ObservedPulses()
    observed.absorb_events(read_jsonl(path))
    return validate(observed, strict_complete=strict_complete)
