"""Call-graph construction over the repro source tree (stdlib ``ast``).

The graph is deliberately *may*-directed: an edge means "calling this
function may transfer control there".  Resolution is best-effort and
documented — unresolved calls produce **no** edge and downstream passes
treat them as deterministic, non-yielding leaves (the assumption every
diagnostic in :mod:`~repro.analysis.flow.atomicity` and
:mod:`~repro.analysis.flow.effects` is stated under):

* bare names resolve through enclosing-function locals, module functions
  and classes, then imports;
* ``self.m()`` / ``cls.m()`` resolve through the enclosing class and its
  (resolvable) bases;
* ``mod.f()`` resolves through an imported module alias;
* ``Cls(...)`` resolves to ``Cls.__init__``;
* dotted receivers whose last component is a registered shared-state
  alias (``ctx.buffer_pool.get_page``) resolve through the ownership
  registry's receiver-type map;
* a *plain-name* receiver with a method defined exactly once in the tree
  resolves to that definition, unless the name collides with a common
  builtin-container method;
* a method defined on several classes that all live in one hierarchy
  (``op.rows()`` over the ``Operator`` subclasses) fans out to every
  override — static virtual dispatch.

Yield points are collected per *frame*: a ``yield`` suspends exactly the
function that contains it, so nested ``def``s get their own entries and a
plain call never suspends the caller (generator semantics).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names never resolved by the unique-definition shortcut: they
#: collide with builtin container/file methods, so a lone class method of
#: the same name would capture unrelated receivers.
_GENERIC_METHOD_NAMES = frozenset({
    "append", "add", "get", "pop", "popitem", "items", "keys", "values",
    "sort", "extend", "clear", "update", "copy", "close", "join", "split",
    "strip", "read", "write", "format", "encode", "decode", "index",
    "count", "insert", "remove", "setdefault", "discard", "union",
    "startswith", "endswith", "move_to_end", "reverse", "send", "throw",
})


@dataclass(frozen=True)
class YieldPoint:
    """One ``yield`` / ``yield from`` in a function's own frame."""

    line: int
    is_yield_from: bool
    #: The yield can surface the ``PULSE`` marker: either the yielded
    #: expression is ``PULSE`` itself, or it is a name the frame compares
    #: against ``PULSE`` (``if row is PULSE: ... yield row``).
    yields_pulse: bool
    #: Forwarding, not origin: the yield sits under an ``if <x> is
    #: PULSE:`` guard, or re-yields a pulse-compared name.  Only an
    #: unguarded literal ``yield PULSE`` originates pulses.
    guarded: bool


@dataclass(frozen=True)
class CallSite:
    """One call expression and the definitions it may reach."""

    line: int
    #: Dotted source text of the callee ("self._form_runs", "pull").
    text: str
    #: Resolved callee qualnames; empty means unresolved (no edge).
    targets: tuple[str, ...]
    is_yield_from: bool


@dataclass
class FunctionInfo:
    """Everything later passes need to know about one function frame."""

    qualname: str
    module: str
    #: Enclosing class name, if any (nested defs inherit it).
    cls: Optional[str]
    name: str
    path: str
    line: int
    is_generator: bool
    yields: tuple[YieldPoint, ...]
    calls: tuple[CallSite, ...] = field(default=())
    #: AST of the definition, for passes that re-walk the body.
    node: Optional[FunctionNode] = field(default=None, repr=False)

    def has_origin_yield(self) -> bool:
        """An unguarded ``yield PULSE`` in this frame."""
        return any(y.yields_pulse and not y.guarded for y in self.yields)


@dataclass
class ClassInfo:
    """One class definition and its resolvable inheritance chain."""

    key: str
    module: str
    name: str
    #: Raw dotted base expressions as written.
    bases: tuple[str, ...]
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: ClassInfo keys of resolvable bases (linked after collection).
    resolved_bases: tuple[str, ...] = field(default=())


class _ModuleIndex:
    """Per-module name tables used during call resolution."""

    def __init__(self, name: str, path: str) -> None:
        self.name = name
        self.path = path
        #: local name -> dotted target ("repro.executor.base.PULSE" for
        #: from-imports, the module path for plain imports).
        self.imports: dict[str, str] = {}
        #: local function name -> qualname.
        self.functions: dict[str, str] = {}
        #: local class name -> ClassInfo key.
        self.classes: dict[str, str] = {}


class CallGraph:
    """The resolved call graph plus its function/class indexes."""

    def __init__(
        self,
        package: str,
        functions: dict[str, FunctionInfo],
        classes: dict[str, ClassInfo],
        module_imports: Optional[dict[str, dict[str, str]]] = None,
    ) -> None:
        self.package = package
        self.functions = functions
        self.classes = classes
        #: module name -> {local name -> dotted import target}.
        self.module_imports: dict[str, dict[str, str]] = module_imports or {}
        self._callers: dict[str, list[str]] = {}
        for info in functions.values():
            for call in info.calls:
                for target in call.targets:
                    self._callers.setdefault(target, []).append(info.qualname)
        for callers in self._callers.values():
            callers.sort()

    # ------------------------------------------------------------------
    # queries

    def callees(self, qualname: str) -> list[str]:
        info = self.functions.get(qualname)
        if info is None:
            return []
        out: list[str] = []
        for call in info.calls:
            out.extend(call.targets)
        return sorted(set(out))

    def callers(self, qualname: str) -> list[str]:
        return list(self._callers.get(qualname, ()))

    def methods_of(self, class_key: str) -> list[FunctionInfo]:
        """All function frames attributed to a class, nested defs included."""
        cls = self.classes.get(class_key)
        if cls is None:
            return []
        prefix = class_key + "."
        return [
            info
            for qualname, info in sorted(self.functions.items())
            if qualname.startswith(prefix)
        ]

    def witness_to_root(self, target: str, limit: int = 12) -> tuple[str, ...]:
        """Shortest caller chain from an entry point (a function nobody in
        the tree calls) down to ``target``, outermost first."""
        seen = {target}
        queue: list[tuple[str, ...]] = [(target,)]
        while queue:
            path = queue.pop(0)
            head = path[0]
            callers = self._callers.get(head, [])
            if not callers or len(path) >= limit:
                return path
            for caller in callers:
                if caller not in seen:
                    seen.add(caller)
                    queue.append((caller, *path))
        return (target,)

    def witness_forward(
        self, start: str, goals: frozenset[str], limit: int = 12
    ) -> tuple[str, ...]:
        """Shortest callee chain from ``start`` to any of ``goals``."""
        if start in goals:
            return (start,)
        seen = {start}
        queue: list[tuple[str, ...]] = [(start,)]
        while queue:
            path = queue.pop(0)
            if len(path) >= limit:
                continue
            for callee in self.callees(path[-1]):
                if callee in seen:
                    continue
                extended = (*path, callee)
                if callee in goals:
                    return extended
                seen.add(callee)
                queue.append(extended)
        return ()


# ----------------------------------------------------------------------
# collection (pass 1)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_pulse_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "PULSE"
    if isinstance(node, ast.Attribute):
        return node.attr == "PULSE"
    return False


def _is_pulse_guard(test: ast.AST) -> bool:
    """``<expr> is PULSE`` — the forwarding idiom's guard."""
    return (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.Is)
        and _is_pulse_expr(test.comparators[0])
    )


class _FrameScanner(ast.NodeVisitor):
    """Collects yields and raw call sites of one function frame only.

    Does not descend into nested ``def`` / ``class`` / ``lambda`` — those
    are separate frames with their own scanners.
    """

    def __init__(self) -> None:
        self.yields: list[YieldPoint] = []
        #: Per-yield: the plain Name yielded, if any (parallel to yields).
        self.yield_names: list[Optional[str]] = []
        #: Names the frame compares against PULSE (``row is PULSE``) —
        #: a ``yield`` of such a name re-emits a pulse it received.
        self.pulse_names: set[str] = set()
        #: (line, dotted text or None, call node, is_yield_from)
        self.raw_calls: list[tuple[int, Optional[str], ast.Call, bool]] = []
        self.nested: list[FunctionNode] = []
        self._guard_depth = 0

    def finish(self) -> None:
        """Reclassify name-forwarding yields once the frame is fully
        scanned (the pulse comparison may appear after the yield)."""
        for i, point in enumerate(self.yields):
            name = self.yield_names[i]
            if (
                not point.yields_pulse
                and name is not None
                and name in self.pulse_names
            ):
                self.yields[i] = YieldPoint(
                    line=point.line,
                    is_yield_from=point.is_yield_from,
                    yields_pulse=True,
                    guarded=True,
                )

    # -- frame boundaries ----------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.nested.append(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.nested.append(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # methods of a nested class are out of frame and out of scope

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    # -- yields ---------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        if _is_pulse_guard(node.test):
            self._guard_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._guard_depth -= 1
        else:
            for stmt in node.body:
                self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Compare(self, node: ast.Compare) -> None:
        if len(node.ops) == 1 and isinstance(node.ops[0], (ast.Is, ast.IsNot)):
            left, right = node.left, node.comparators[0]
            if _is_pulse_expr(right) and isinstance(left, ast.Name):
                self.pulse_names.add(left.id)
            elif _is_pulse_expr(left) and isinstance(right, ast.Name):
                self.pulse_names.add(right.id)
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        pulse = node.value is not None and _is_pulse_expr(node.value)
        self.yields.append(
            YieldPoint(
                line=node.lineno,
                is_yield_from=False,
                yields_pulse=pulse,
                guarded=self._guard_depth > 0,
            )
        )
        self.yield_names.append(
            node.value.id if isinstance(node.value, ast.Name) else None
        )
        if node.value is not None:
            self.visit(node.value)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.yields.append(
            YieldPoint(
                line=node.lineno,
                is_yield_from=True,
                yields_pulse=False,
                guarded=self._guard_depth > 0,
            )
        )
        self.yield_names.append(None)
        if isinstance(node.value, ast.Call):
            self.raw_calls.append(
                (node.lineno, _dotted(node.value.func), node.value, True)
            )
            for arg in node.value.args:
                self.visit(arg)
            for kw in node.value.keywords:
                self.visit(kw.value)
        else:
            self.visit(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        self.raw_calls.append((node.lineno, _dotted(node.func), node, False))
        # Still walk the callee expression for nested calls like f(g(x)).
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            self.visit(node.func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)


def _module_name(package: str, package_dir: Path, path: Path) -> str:
    rel = path.relative_to(package_dir).with_suffix("")
    parts = [package, *rel.parts]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class _Collected:
    modules: dict[str, _ModuleIndex]
    functions: dict[str, FunctionInfo]
    classes: dict[str, ClassInfo]
    #: function qualname -> raw call sites awaiting resolution.
    raw: dict[str, list[tuple[int, Optional[str], ast.Call, bool]]]
    #: function qualname -> enclosing local def map (name -> qualname).
    local_defs: dict[str, dict[str, str]]


def _collect_function(
    node: FunctionNode,
    qual_prefix: str,
    cls: Optional[str],
    module: _ModuleIndex,
    out: _Collected,
    enclosing_locals: dict[str, str],
) -> str:
    qualname = f"{qual_prefix}.{node.name}"
    scanner = _FrameScanner()
    for stmt in node.body:
        scanner.visit(stmt)
    scanner.finish()
    info = FunctionInfo(
        qualname=qualname,
        module=module.name,
        cls=cls,
        name=node.name,
        path=module.path,
        line=node.lineno,
        is_generator=bool(scanner.yields),
        yields=tuple(scanner.yields),
        node=node,
    )
    out.functions[qualname] = info
    out.raw[qualname] = scanner.raw_calls
    nested_locals = dict(enclosing_locals)
    out.local_defs[qualname] = nested_locals
    for child in scanner.nested:
        child_qual = _collect_function(
            child, f"{qualname}.<locals>", cls, module, out, nested_locals
        )
        nested_locals[child.name] = child_qual
    return qualname


def _collect_module(tree: ast.Module, module: _ModuleIndex, out: _Collected) -> None:
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname is not None:
                    module.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    module.imports[head] = head
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                parts = module.name.split(".")
                keep = parts[: max(0, len(parts) - stmt.level)]
                base = ".".join([*keep, base]) if base else ".".join(keep)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = _collect_function(stmt, module.name, None, module, out, {})
            module.functions[stmt.name] = qualname
        elif isinstance(stmt, ast.ClassDef):
            key = f"{module.name}.{stmt.name}"
            bases = tuple(
                b for b in (_dotted(base) for base in stmt.bases) if b is not None
            )
            cls_info = ClassInfo(
                key=key, module=module.name, name=stmt.name, bases=bases
            )
            out.classes[key] = cls_info
            module.classes[stmt.name] = key
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = _collect_function(
                        item, key, stmt.name, module, out, {}
                    )
                    cls_info.methods[item.name] = qualname


# ----------------------------------------------------------------------
# resolution (pass 2)


class _Resolver:
    def __init__(
        self,
        collected: _Collected,
        receiver_types: dict[str, str],
    ) -> None:
        self.c = collected
        #: receiver alias -> ClassInfo key, from the ownership registry.
        self.receiver_types = {
            alias: key
            for alias, key in receiver_types.items()
            if key in collected.classes
        }
        #: method name -> every (class key, qualname) defining it.
        self.method_defs: dict[str, list[tuple[str, str]]] = {}
        for cls in collected.classes.values():
            for name, qualname in cls.methods.items():
                self.method_defs.setdefault(name, []).append((cls.key, qualname))
        for defs in self.method_defs.values():
            defs.sort()
        self._link_bases()

    def _link_bases(self) -> None:
        for cls in self.c.classes.values():
            module = self.c.modules[cls.module]
            resolved = []
            for base in cls.bases:
                key = self._resolve_class_name(module, base)
                if key is not None:
                    resolved.append(key)
            cls.resolved_bases = tuple(resolved)

    # -- name lookups ---------------------------------------------------

    def _resolve_class_name(
        self, module: _ModuleIndex, dotted: str
    ) -> Optional[str]:
        head, _, rest = dotted.partition(".")
        if not rest:
            if head in module.classes:
                return module.classes[head]
            target = module.imports.get(head)
            if target is not None and target in self.c.classes:
                return target
            return None
        target = module.imports.get(head)
        if target is not None:
            candidate = f"{target}.{rest}"
            if candidate in self.c.classes:
                return candidate
        return None

    def _class_root(self, key: str) -> str:
        seen = set()
        while key not in seen:
            seen.add(key)
            cls = self.c.classes.get(key)
            if cls is None or not cls.resolved_bases:
                return key
            key = cls.resolved_bases[0]
        return key

    def _lookup_method(self, class_key: str, name: str) -> Optional[str]:
        """Find ``name`` on a class or its resolvable bases."""
        seen: set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            cls = self.c.classes.get(key)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.resolved_bases)
        return None

    def _resolve_bare(
        self, module: _ModuleIndex, locals_map: dict[str, str], name: str
    ) -> tuple[str, ...]:
        if name in locals_map:
            return (locals_map[name],)
        if name in module.functions:
            return (module.functions[name],)
        class_key: Optional[str] = module.classes.get(name)
        if class_key is None:
            target = module.imports.get(name)
            if target is not None:
                if target in self.c.functions:
                    return (target,)
                if target in self.c.classes:
                    class_key = target
        if class_key is not None:
            init = self._lookup_method(class_key, "__init__")
            return (init,) if init is not None else ()
        return ()

    def _resolve_attribute(
        self,
        module: _ModuleIndex,
        cls: Optional[str],
        dotted: str,
    ) -> tuple[str, ...]:
        parts = dotted.split(".")
        receiver, meth = parts[:-1], parts[-1]
        if meth.startswith("__") and meth.endswith("__"):
            return ()
        if receiver == ["self"] or receiver == ["cls"]:
            if cls is not None:
                found = self._lookup_method(f"{module.name}.{cls}", meth)
                if found is not None:
                    return (found,)
            return ()
        if len(receiver) == 1:
            head = receiver[0]
            # Module alias: tpcr.build_database
            target = module.imports.get(head)
            if target is not None:
                candidate = f"{target}.{meth}"
                if candidate in self.c.functions:
                    return (candidate,)
                if candidate in self.c.classes:
                    init = self._lookup_method(candidate, "__init__")
                    return (init,) if init is not None else ()
                if target in self.c.classes:
                    found = self._lookup_method(target, meth)
                    if found is not None:
                        return (found,)
            # Class name: Cls.method(...)
            if head in module.classes:
                found = self._lookup_method(module.classes[head], meth)
                if found is not None:
                    return (found,)
        # Registered shared-state alias anywhere in the chain's tail:
        # ctx.buffer_pool.get_page, self._disk.read_page, ...
        owner_key = self.receiver_types.get(receiver[-1])
        if owner_key is not None:
            found = self._lookup_method(owner_key, meth)
            if found is not None:
                return (found,)
        if len(receiver) == 1 and not receiver[0].startswith("_"):
            defs = self.method_defs.get(meth, [])
            if defs:
                if len(defs) == 1 and meth not in _GENERIC_METHOD_NAMES:
                    return (defs[0][1],)
                roots = {self._class_root(key) for key, _ in defs}
                if len(roots) == 1 and len(defs) > 1:
                    # Static virtual dispatch over one hierarchy
                    # (op.rows() -> every Operator override).
                    return tuple(qualname for _, qualname in defs)
        return ()

    def resolve(self) -> None:
        for qualname, raw_calls in self.c.raw.items():
            info = self.c.functions[qualname]
            module = self.c.modules[info.module]
            locals_map = self.c.local_defs.get(qualname, {})
            sites: list[CallSite] = []
            for line, dotted, _call, is_yield_from in raw_calls:
                if dotted is None:
                    continue
                if "." in dotted:
                    targets = self._resolve_attribute(module, info.cls, dotted)
                else:
                    targets = self._resolve_bare(module, locals_map, dotted)
                sites.append(
                    CallSite(
                        line=line,
                        text=dotted,
                        targets=targets,
                        is_yield_from=is_yield_from,
                    )
                )
            info.calls = tuple(sites)


# ----------------------------------------------------------------------
# public entry point


def build_callgraph(
    package_dir: Union[str, Path],
    package: str = "repro",
    receiver_types: Optional[dict[str, str]] = None,
) -> CallGraph:
    """Parse every module under ``package_dir`` and resolve the call graph.

    ``receiver_types`` maps receiver aliases to class keys
    ("clock" -> "repro.sim.clock.VirtualClock"); it defaults to the
    ownership registry's map.
    """
    root = Path(package_dir)
    if receiver_types is None:
        from repro.analysis.flow.shared_state import receiver_type_map

        receiver_types = receiver_type_map()
    collected = _Collected(
        modules={}, functions={}, classes={}, raw={}, local_defs={}
    )
    for path in sorted(root.rglob("*.py")):
        name = _module_name(package, root, path)
        module = _ModuleIndex(name=name, path=str(path))
        collected.modules[name] = module
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        _collect_module(tree, module, collected)
    _Resolver(collected, receiver_types).resolve()
    return CallGraph(
        package=package,
        functions=collected.functions,
        classes=collected.classes,
        module_imports={
            name: dict(idx.imports) for name, idx in collected.modules.items()
        },
    )
