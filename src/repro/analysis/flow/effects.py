"""The determinism-effect checker: REPRO110 and REPRO111.

Every function in ``core/`` and ``executor/`` must be *deterministic*:
given the same virtual-clock state and inputs it performs the same
computation.  The checker infers a nondeterminism effect for every
function in the tree from its own frame, closes it transitively over the
call graph, and rejects any enforced function that can reach a source:

* **wall-clock** — ``time.time`` / ``monotonic`` / ``perf_counter`` ...,
  ``datetime.now`` / ``utcnow`` / ``today`` (REPRO001's vocabulary,
  now enforced interprocedurally);
* **unseeded-random** — module-level ``random.*`` calls, zero-argument
  ``random.Random()``, ``random.SystemRandom``, and direct calls to
  names imported from :mod:`random` (``random.Random(seed)`` is fine —
  all randomness must flow from a seed);
* **environment** — ``os.environ`` / ``os.getenv`` / ``os.urandom``;
* **uuid** / **secrets** — inherently nondeterministic stdlib modules;
* **salted-hash** — the builtin ``hash()``: ``PYTHONHASHSEED`` salts
  ``str`` hashing per process, so any value derived from ``hash()``
  (partition routing, sampling) differs across runs;
* **threading** — OS scheduling decides interleavings the virtual clock
  cannot replay.

Unresolved calls are assumed deterministic (the call graph's documented
may-edge contract); the lint pass and the trace cross-check bound the
damage of that assumption from the other side.

A transitive violation is reported at the point nondeterminism *enters*
the enforced scope: an enforced function with no own sources is flagged
only when none of its impure callees is itself enforced (otherwise the
callee's own finding — or its baseline entry — already covers the path).

``REPRO111`` (**set-iteration-order**) is frame-local: iterating a set
display, a set comprehension, or a ``set(...)`` call in enforced code
feeds set ordering into results.  Set *membership* is fine; iterate
``sorted(...)`` when order can matter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo, FunctionNode
from repro.analysis.flow.findings import FlowFinding, sort_findings

_WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "time_ns",
     "monotonic_ns", "perf_counter_ns", "localtime", "gmtime"}
)
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
_ENV_OS_ATTRS = frozenset({"getenv", "urandom"})

#: Module prefixes the effect discipline is enforced for.
_ENFORCED_PREFIXES = ("repro.core", "repro.executor")


@dataclass(frozen=True)
class EffectSource:
    """One nondeterminism source in a function's own frame."""

    line: int
    kind: str
    detail: str


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _SourceScanner(ast.NodeVisitor):
    """Finds nondeterminism sources in one frame (no nested defs)."""

    def __init__(self, random_imports: frozenset[str]) -> None:
        #: Local names bound by ``from random import <name>``.
        self._random_imports = random_imports
        self.sources: list[EffectSource] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return

    def _add(self, line: int, kind: str, detail: str) -> None:
        self.sources.append(EffectSource(line=line, kind=kind, detail=detail))

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check_call(node, dotted)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        head, _, tail = dotted.rpartition(".")
        line = node.lineno
        if head == "time" and tail in _WALL_CLOCK_TIME_ATTRS:
            self._add(line, "wall-clock", dotted)
        elif (
            tail in _WALL_CLOCK_DATETIME_ATTRS
            and head.split(".")[-1] in ("datetime", "date")
        ):
            self._add(line, "wall-clock", dotted)
        elif head == "random":
            if tail == "Random":
                if not node.args and not node.keywords:
                    self._add(line, "unseeded-random", "random.Random()")
            else:
                self._add(line, "unseeded-random", dotted)
        elif head == "os" and tail in _ENV_OS_ATTRS:
            self._add(line, "environment", dotted)
        elif head in ("uuid", "secrets"):
            self._add(line, head, dotted)
        elif head == "threading" or head.startswith("threading."):
            self._add(line, "threading", dotted)
        elif not head:
            if dotted == "hash":
                self._add(line, "salted-hash", "hash()")
            elif dotted in self._random_imports:
                if dotted == "Random":
                    if not node.args and not node.keywords:
                        self._add(line, "unseeded-random", "Random()")
                else:
                    self._add(line, "unseeded-random", f"random.{dotted}")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _dotted(node) == "os.environ":
            self._add(node.lineno, "environment", "os.environ")
        self.generic_visit(node)


def _random_imports(graph: CallGraph, module: str) -> frozenset[str]:
    imports = graph.module_imports.get(module, {})
    return frozenset(
        local
        for local, target in imports.items()
        if target.startswith("random.")
    )


def own_sources(graph: CallGraph, info: FunctionInfo) -> tuple[EffectSource, ...]:
    """Nondeterminism sources in the function's own frame."""
    if info.node is None:
        return ()
    scanner = _SourceScanner(_random_imports(graph, info.module))
    for stmt in info.node.body:
        scanner.visit(stmt)
    return tuple(sorted(scanner.sources, key=lambda s: (s.line, s.detail)))


def _enforced(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _ENFORCED_PREFIXES
    )


def _rel_path(path: str, repo_root: Optional[Path]) -> str:
    p = Path(path)
    if repo_root is not None:
        try:
            return p.relative_to(repo_root).as_posix()
        except ValueError:
            pass
    return p.as_posix()


# ----------------------------------------------------------------------
# REPRO111: frame-local set-iteration-order


def _is_set_expr(node: ast.AST, set_locals: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return isinstance(node, ast.Name) and node.id in set_locals


class _SetIterScanner(ast.NodeVisitor):
    def __init__(self) -> None:
        self.set_locals: set[str] = set()
        self.hits: list[int] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, set()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_locals.add(target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self.set_locals):
            self.hits.append(node.iter.lineno)
        self.generic_visit(node)

    def visit_comprehension_node(self, node: ast.AST) -> None:
        generators = getattr(node, "generators", [])
        for comp in generators:
            if _is_set_expr(comp.iter, self.set_locals):
                self.hits.append(comp.iter.lineno)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_node
    visit_DictComp = visit_comprehension_node
    visit_GeneratorExp = visit_comprehension_node


def _set_iteration_hits(node: FunctionNode) -> list[int]:
    scanner = _SetIterScanner()
    for stmt in node.body:
        scanner.visit(stmt)
    return sorted(scanner.hits)


# ----------------------------------------------------------------------
# the checker


def analyze_effects(
    graph: CallGraph, repo_root: Optional[Path] = None
) -> list[FlowFinding]:
    """REPRO110/111 over the enforced scope (``core/`` + ``executor/``)."""
    sources_by_fn = {
        q: own_sources(graph, info) for q, info in graph.functions.items()
    }
    impure = {q: bool(srcs) for q, srcs in sources_by_fn.items()}
    worklist = [q for q, is_impure in impure.items() if is_impure]
    pending = set(worklist)
    while worklist:
        target = worklist.pop()
        pending.discard(target)
        for caller in graph.callers(target):
            if not impure.get(caller, False):
                impure[caller] = True
                if caller not in pending:
                    worklist.append(caller)
                    pending.add(caller)

    source_fns = frozenset(q for q, srcs in sources_by_fn.items() if srcs)
    findings: list[FlowFinding] = []
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        if not _enforced(info.module):
            continue
        path = _rel_path(info.path, repo_root)
        if info.node is not None:
            for line in _set_iteration_hits(info.node):
                findings.append(
                    FlowFinding(
                        rule="REPRO111",
                        path=path,
                        function=qualname,
                        line=line,
                        message=(
                            "iteration over a set feeds its ordering into "
                            "results; iterate sorted(...) or a list/dict"
                        ),
                    )
                )
        if not impure.get(qualname, False):
            continue
        srcs = sources_by_fn[qualname]
        if srcs:
            for src in srcs:
                findings.append(
                    FlowFinding(
                        rule="REPRO110",
                        path=path,
                        function=qualname,
                        line=src.line,
                        message=(
                            f"nondeterminism source in enforced scope: "
                            f"{src.kind} ({src.detail})"
                        ),
                    )
                )
            continue
        # Transitive only: report where nondeterminism *enters* the
        # enforced scope; paths through enforced callees are covered by
        # the callee's own finding (or its baseline entry).
        impure_callees = [
            c for c in graph.callees(qualname) if impure.get(c, False)
        ]
        if any(
            _enforced(graph.functions[c].module)
            for c in impure_callees
            if c in graph.functions
        ):
            continue
        witness = graph.witness_forward(qualname, source_fns)
        if not witness:
            continue
        terminal = witness[-1]
        first = sources_by_fn[terminal][0]
        findings.append(
            FlowFinding(
                rule="REPRO110",
                path=path,
                function=qualname,
                line=info.line,
                message=(
                    f"transitively reaches nondeterminism source "
                    f"{first.kind} ({first.detail}) in {terminal}"
                ),
                witness=witness,
            )
        )
    return sort_findings(findings)
