"""Text rendering for verifier and lint results (CLI output)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.invariants import INVARIANT_RULES, Violation
from repro.analysis.rules import LINT_RULES, LintFinding


def render_violations(by_plan: Mapping[str, Sequence[Violation]]) -> str:
    """One block per verified plan: OK line or an indented violation list."""
    lines = []
    for label, violations in by_plan.items():
        if not violations:
            lines.append(f"{label}: OK")
            continue
        lines.append(f"{label}: {len(violations)} violation(s)")
        for v in violations:
            anchor = INVARIANT_RULES.get(v.rule, ("", None))[0]
            suffix = f" ({anchor})" if anchor else ""
            lines.append(f"  {v.format()}{suffix}")
    return "\n".join(lines)


def render_findings(findings: Iterable[LintFinding]) -> str:
    """ruff-style ``path:line:col: RULE message`` lines plus a summary."""
    findings = list(findings)
    lines = [f.format() for f in findings]
    if findings:
        per_rule: dict[str, int] = {}
        for f in findings:
            per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
        breakdown = ", ".join(
            f"{count} x {rule} ({LINT_RULES[rule][0]})"
            if rule in LINT_RULES
            else f"{count} x {rule}"
            for rule, count in sorted(per_rule.items())
        )
        lines.append(f"found {len(findings)} problem(s): {breakdown}")
    else:
        lines.append("no problems found")
    return "\n".join(lines)
