"""Plan/segment invariant verifier.

The refinement machinery of :mod:`repro.estimators.refinement` is only correct when
the segment decomposition produced by :mod:`repro.core.segments` obeys a
set of structural invariants that nothing at run time re-checks: ids must
be dense and topologically ordered, every blocking operator must close a
segment, dominant inputs must follow the Section 4.5 rules, and the
GCost byte accounting must count every intermediate byte exactly twice
(once as a producer output, once as a consumer input).  This module
checks those properties *statically*, before a single tuple flows.

Each invariant is a small function registered in :data:`INVARIANT_RULES`;
:func:`verify_segments` runs them all and returns the violations found.
The rule ids are stable strings used by tests, the CLI report, and
``docs/static_analysis.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.planner.physical import (
    HashAggregateNode,
    HashJoinNode,
    MergeJoinNode,
    PhysicalNode,
    SortNode,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> analysis)
    from repro.core.segments import SegmentSpec

#: Relative tolerance for the card-factor reconstruction check.
_CARD_FACTOR_RTOL = 1e-6
#: The floor the segment builder substitutes for zero input cardinalities.
_CARD_FACTOR_FLOOR = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed invariant, attributed to a rule and (usually) a segment."""

    rule: str
    message: str
    segment: Optional[int] = None

    def format(self) -> str:
        where = f"segment {self.segment}" if self.segment is not None else "plan"
        return f"[{self.rule}] {where}: {self.message}"


def collect_nodes(root: PhysicalNode) -> list[PhysicalNode]:
    """All plan nodes reachable from ``root``, pre-order."""
    nodes: list[PhysicalNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        stack.extend(reversed(node.children))
    return nodes


@dataclass
class _Context:
    """Everything a rule needs: the plan, the specs, derived indexes."""

    root: PhysicalNode
    specs: list["SegmentSpec"]
    nodes: list[PhysicalNode]
    #: segment id -> plan nodes assigned to it by the builder.
    members: dict[Optional[int], list[PhysicalNode]]

    @classmethod
    def build(cls, root: PhysicalNode, specs: list["SegmentSpec"]) -> "_Context":
        nodes = collect_nodes(root)
        members: dict[Optional[int], list[PhysicalNode]] = {}
        for node in nodes:
            members.setdefault(getattr(node, "segment_id", None), []).append(node)
        return cls(root=root, specs=specs, nodes=nodes, members=members)

    def valid_segment(self, seg_id: object) -> bool:
        return isinstance(seg_id, int) and 0 <= seg_id < len(self.specs)

    def valid_input_ref(self, ref: object) -> bool:
        if not (isinstance(ref, tuple) and len(ref) == 2):
            return False
        seg, idx = ref
        if not self.valid_segment(seg):
            return False
        return isinstance(idx, int) and 0 <= idx < len(self.specs[seg].inputs)


RuleFn = Callable[[_Context], list[Violation]]

#: rule id -> (paper anchor, check function); populated by ``@_rule``.
INVARIANT_RULES: dict[str, tuple[str, RuleFn]] = {}


def _rule(rule_id: str, anchor: str) -> Callable[[RuleFn], RuleFn]:
    def register(fn: RuleFn) -> RuleFn:
        INVARIANT_RULES[rule_id] = (anchor, fn)
        return fn

    return register


# ----------------------------------------------------------------------
# segment-list structure


@_rule("dense-ids", "§4.2")
def _check_dense_ids(ctx: _Context) -> list[Violation]:
    """Segment ids are dense 0..n-1 in list order (the refiner indexes
    tracker counters by them)."""
    if not ctx.specs:
        return [Violation("dense-ids", "plan produced no segments")]
    out = []
    for pos, spec in enumerate(ctx.specs):
        if spec.id != pos:
            out.append(
                Violation(
                    "dense-ids",
                    f"segment at position {pos} has id {spec.id}",
                    segment=spec.id,
                )
            )
    return out


@_rule("single-final", "§4.5")
def _check_single_final(ctx: _Context) -> list[Violation]:
    """Exactly one final segment, and it is the last one (its output goes
    to the user and is excluded from GCost)."""
    finals = [s for s in ctx.specs if s.final]
    if len(finals) == 1 and ctx.specs and finals[0] is ctx.specs[-1]:
        return []
    if not finals:
        return [Violation("single-final", "no segment is marked final")]
    if len(finals) > 1:
        ids = ", ".join(str(s.id) for s in finals)
        return [Violation("single-final", f"multiple final segments: {ids}")]
    return [
        Violation(
            "single-final",
            f"final segment {finals[0].id} is not the last segment",
            segment=finals[0].id,
        )
    ]


@_rule("topological-order", "§4.2")
def _check_topological_order(ctx: _Context) -> list[Violation]:
    """Every child input references an earlier (lower-id) segment; base
    inputs reference none.  Producers must close before consumers start."""
    out = []
    for spec in ctx.specs:
        for inp in spec.inputs:
            if inp.kind == "child":
                if inp.child_segment is None or not ctx.valid_segment(
                    inp.child_segment
                ):
                    out.append(
                        Violation(
                            "topological-order",
                            f"input {inp.index} references unknown segment "
                            f"{inp.child_segment!r}",
                            segment=spec.id,
                        )
                    )
                elif inp.child_segment >= spec.id:
                    out.append(
                        Violation(
                            "topological-order",
                            f"input {inp.index} references segment "
                            f"{inp.child_segment} which does not precede it",
                            segment=spec.id,
                        )
                    )
            elif inp.child_segment is not None:
                out.append(
                    Violation(
                        "topological-order",
                        f"base input {inp.index} references segment "
                        f"{inp.child_segment}",
                        segment=spec.id,
                    )
                )
    return out


# ----------------------------------------------------------------------
# dominant-input rules (§4.5)


@_rule("dominant-count", "§4.5")
def _check_dominant_count(ctx: _Context) -> list[Violation]:
    """Every segment has at least one input and exactly one dominant
    input — except merge-join segments, which have exactly two."""
    out = []
    for spec in ctx.specs:
        if not spec.inputs:
            out.append(Violation("dominant-count", "segment has no inputs", spec.id))
            continue
        dominants = sum(1 for i in spec.inputs if i.dominant)
        has_merge = any(
            isinstance(n, MergeJoinNode) for n in ctx.members.get(spec.id, [])
        )
        expected = 2 if has_merge else 1
        if dominants != expected:
            kind = "merge-join segment" if has_merge else "segment"
            out.append(
                Violation(
                    "dominant-count",
                    f"{kind} has {dominants} dominant input(s), expected "
                    f"{expected}",
                    segment=spec.id,
                )
            )
    return out


@_rule("hash-probe-dominance", "§4.5")
def _check_hash_probe_dominance(ctx: _Context) -> list[Violation]:
    """In-memory hash joins: the hash-table input of the probe segment is
    consumed up front and must not be dominant (rule 2b: the probe
    relation drives progress)."""
    out = []
    for node in ctx.nodes:
        if not isinstance(node, HashJoinNode) or node.num_batches != 1:
            continue
        ref = getattr(node, "pi_hash_input_ref", None)
        if not ctx.valid_input_ref(ref):
            continue  # annotations-present reports the missing ref
        seg, idx = ref
        inp = ctx.specs[seg].inputs[idx]
        if inp.dominant:
            out.append(
                Violation(
                    "hash-probe-dominance",
                    f"hash-table input {idx} is marked dominant",
                    segment=seg,
                )
            )
        if inp.kind != "child" or inp.child_segment != getattr(
            node, "pi_build_segment", None
        ):
            out.append(
                Violation(
                    "hash-probe-dominance",
                    f"hash-table input {idx} does not consume the build "
                    f"segment's output",
                    segment=seg,
                )
            )
    return out


# ----------------------------------------------------------------------
# blocking boundaries (§4.2) and the Figure 3 shape


@_rule("blocking-closes-segment", "§4.2")
def _check_blocking_closes_segment(ctx: _Context) -> list[Violation]:
    """Every blocking phase (hash build, partition pass, sort run
    formation, aggregate accumulation) closes its own segment, distinct
    from the segment that consumes its output."""
    out = []

    def check(node: PhysicalNode, attr: str, what: str) -> None:
        blocking_seg = getattr(node, attr, None)
        consumer_seg = getattr(node, "segment_id", None)
        if not ctx.valid_segment(blocking_seg):
            out.append(
                Violation(
                    "blocking-closes-segment",
                    f"{type(node).__name__}: {what} did not close a segment "
                    f"({attr}={blocking_seg!r})",
                    segment=consumer_seg,
                )
            )
        elif blocking_seg == consumer_seg:
            out.append(
                Violation(
                    "blocking-closes-segment",
                    f"{type(node).__name__}: {what} shares segment "
                    f"{blocking_seg} with its consumer",
                    segment=blocking_seg,
                )
            )

    for node in ctx.nodes:
        if isinstance(node, SortNode):
            check(node, "pi_sort_segment", "run formation")
        elif isinstance(node, HashAggregateNode):
            check(node, "pi_agg_segment", "aggregate accumulation")
        elif isinstance(node, HashJoinNode):
            check(node, "pi_build_segment", "hash build")
            if node.num_batches > 1:
                check(node, "pi_probe_segment", "probe partition pass")
    return out


@_rule("figure3-shape", "§4.2 Fig. 3")
def _check_figure3_shape(ctx: _Context) -> list[Violation]:
    """Multi-batch hash joins follow the paper's Figure 3: two partition
    segments (S1/S2) feed a join segment (S3) whose inputs are exactly
    PA (non-dominant) and PB (dominant)."""
    out = []
    for node in ctx.nodes:
        if not isinstance(node, HashJoinNode) or node.num_batches == 1:
            continue
        join_seg = getattr(node, "segment_id", None)
        build_seg = getattr(node, "pi_build_segment", None)
        probe_seg = getattr(node, "pi_probe_segment", None)
        if not (
            ctx.valid_segment(join_seg)
            and ctx.valid_segment(build_seg)
            and ctx.valid_segment(probe_seg)
        ):
            continue  # blocking-closes-segment reports these
        if len({join_seg, build_seg, probe_seg}) != 3:
            out.append(
                Violation(
                    "figure3-shape",
                    f"build ({build_seg}), probe ({probe_seg}) and join "
                    f"({join_seg}) segments are not distinct",
                    segment=join_seg,
                )
            )
            continue
        pa_ref = getattr(node, "pi_pa_input_ref", None)
        pb_ref = getattr(node, "pi_pb_input_ref", None)
        if not (ctx.valid_input_ref(pa_ref) and ctx.valid_input_ref(pb_ref)):
            continue  # annotations-present reports these
        pa = ctx.specs[pa_ref[0]].inputs[pa_ref[1]]
        pb = ctx.specs[pb_ref[0]].inputs[pb_ref[1]]
        if pa_ref[0] != join_seg or pb_ref[0] != join_seg:
            out.append(
                Violation(
                    "figure3-shape",
                    "partition inputs are not inputs of the join segment",
                    segment=join_seg,
                )
            )
        if pa.child_segment != build_seg or pa.dominant:
            out.append(
                Violation(
                    "figure3-shape",
                    "PA must come from the build partition pass and be "
                    "non-dominant",
                    segment=join_seg,
                )
            )
        if pb.child_segment != probe_seg or not pb.dominant:
            out.append(
                Violation(
                    "figure3-shape",
                    "PB must come from the probe partition pass and be "
                    "dominant",
                    segment=join_seg,
                )
            )
    return out


# ----------------------------------------------------------------------
# GCost accounting (§4.1 / §4.5)


@_rule("byte-conservation", "§4.5")
def _check_byte_conservation(ctx: _Context) -> list[Violation]:
    """Intermediate bytes are double-counted exactly once: every non-final
    segment's output is consumed by exactly one child input of a later
    segment; the final segment's output is consumed by none."""
    consumers: dict[int, list[int]] = {}
    for spec in ctx.specs:
        for inp in spec.inputs:
            if inp.kind == "child" and inp.child_segment is not None:
                consumers.setdefault(inp.child_segment, []).append(spec.id)
    out = []
    for spec in ctx.specs:
        uses = consumers.get(spec.id, [])
        if spec.final:
            if uses:
                out.append(
                    Violation(
                        "byte-conservation",
                        f"final segment's output is consumed by segment(s) "
                        f"{sorted(uses)}",
                        segment=spec.id,
                    )
                )
        elif len(uses) != 1:
            detail = "never consumed" if not uses else f"consumed {len(uses)} times"
            out.append(
                Violation(
                    "byte-conservation",
                    f"intermediate output is {detail} (must be exactly once)",
                    segment=spec.id,
                )
            )
    return out


@_rule("estimates-nonnegative", "§4.3")
def _check_estimates_nonnegative(ctx: _Context) -> list[Violation]:
    """All optimizer estimates seeding the indicator are finite and
    non-negative (a negative or NaN Ne poisons every later refinement)."""
    out = []

    def bad(value: float) -> bool:
        return not math.isfinite(value) or value < 0.0

    for spec in ctx.specs:
        fields = {
            "est_output_rows": spec.est_output_rows,
            "est_output_width": spec.est_output_width,
            "est_extra_bytes": spec.est_extra_bytes,
        }
        for name, value in fields.items():
            if bad(value):
                out.append(
                    Violation(
                        "estimates-nonnegative",
                        f"{name} is {value!r}",
                        segment=spec.id,
                    )
                )
        for inp in spec.inputs:
            for name, value in (
                ("est_rows", inp.est_rows),
                ("est_width", inp.est_width),
            ):
                if bad(value):
                    out.append(
                        Violation(
                            "estimates-nonnegative",
                            f"input {inp.index} {name} is {value!r}",
                            segment=spec.id,
                        )
                    )
    return out


@_rule("card-factor", "§4.5")
def _check_card_factor(ctx: _Context) -> list[Violation]:
    """``card_factor`` must reproduce the optimizer's output estimate from
    the input estimates — it is how the refiner "re-invokes the
    optimizer's cost estimation module" during upward propagation."""
    out = []
    for spec in ctx.specs:
        product = 1.0
        for inp in spec.inputs:
            product *= max(inp.est_rows, _CARD_FACTOR_FLOOR)
        reproduced = spec.card_factor * product
        tolerance = max(_CARD_FACTOR_RTOL, _CARD_FACTOR_RTOL * spec.est_output_rows)
        if not math.isfinite(reproduced) or abs(
            reproduced - spec.est_output_rows
        ) > tolerance:
            out.append(
                Violation(
                    "card-factor",
                    f"card_factor * prod(inputs) = {reproduced!r} but "
                    f"est_output_rows = {spec.est_output_rows!r}",
                    segment=spec.id,
                )
            )
    return out


# ----------------------------------------------------------------------
# executor annotations


@_rule("annotations-present", "§4.2")
def _check_annotations_present(ctx: _Context) -> list[Violation]:
    """Every plan node carries the ``pi_*`` annotations its operator
    reports progress through, and each reference points at a real
    (segment, input) slot of the right kind.  A missing annotation makes
    the operator silently skip reporting — progress freezes."""
    out = []

    def check_seg(node: PhysicalNode, attr: str) -> None:
        value = getattr(node, attr, None)
        if not ctx.valid_segment(value):
            out.append(
                Violation(
                    "annotations-present",
                    f"{type(node).__name__}.{attr} is {value!r}",
                    segment=getattr(node, "segment_id", None),
                )
            )

    def check_ref(node: PhysicalNode, attr: str, kind: str) -> None:
        ref = getattr(node, attr, None)
        if not ctx.valid_input_ref(ref):
            out.append(
                Violation(
                    "annotations-present",
                    f"{type(node).__name__}.{attr} is {ref!r}",
                    segment=getattr(node, "segment_id", None),
                )
            )
            return
        seg, idx = ref
        inp = ctx.specs[seg].inputs[idx]
        if inp.kind != kind:
            out.append(
                Violation(
                    "annotations-present",
                    f"{type(node).__name__}.{attr} points at a "
                    f"{inp.kind!r} input, expected {kind!r}",
                    segment=seg,
                )
            )

    for node in ctx.nodes:
        if not ctx.valid_segment(getattr(node, "segment_id", None)):
            out.append(
                Violation(
                    "annotations-present",
                    f"{type(node).__name__}.segment_id is "
                    f"{getattr(node, 'segment_id', None)!r}",
                )
            )
        if hasattr(node, "est_base_rows"):  # scan nodes
            check_ref(node, "pi_input_ref", "base")
        if isinstance(node, SortNode):
            check_seg(node, "pi_sort_segment")
            check_ref(node, "pi_merge_input_ref", "child")
        if isinstance(node, HashAggregateNode):
            check_seg(node, "pi_agg_segment")
            check_ref(node, "pi_groups_input_ref", "child")
        if isinstance(node, HashJoinNode):
            check_seg(node, "pi_build_segment")
            if node.num_batches == 1:
                check_ref(node, "pi_hash_input_ref", "child")
            else:
                check_seg(node, "pi_probe_segment")
                check_ref(node, "pi_pa_input_ref", "child")
                check_ref(node, "pi_pb_input_ref", "child")
    return out


@_rule("cost-consistency", "§4.1")
def _check_cost_consistency(ctx: _Context) -> list[Violation]:
    """Each segment's initial byte cost — the quantity seeding the
    indicator's U estimate — is finite and non-negative.  (Zero totals are
    legal: a query over an empty table costs nothing.)"""
    out = []
    for spec in ctx.specs:
        cost = spec.initial_cost_bytes()
        if not math.isfinite(cost) or cost < 0.0:
            out.append(
                Violation(
                    "cost-consistency",
                    f"initial_cost_bytes() is {cost!r}",
                    segment=spec.id,
                )
            )
    return out


# ----------------------------------------------------------------------
# entry points


def verify_segments(
    root: PhysicalNode, specs: list["SegmentSpec"]
) -> list[Violation]:
    """Run every registered invariant; return all violations found."""
    ctx = _Context.build(root, specs)
    violations: list[Violation] = []
    for _anchor, fn in INVARIANT_RULES.values():
        violations.extend(fn(ctx))
    return violations


def verify_plan(root: PhysicalNode) -> tuple[list["SegmentSpec"], list[Violation]]:
    """Segment ``root`` and verify the result in one step."""
    from repro.core.segments import build_segments

    specs = build_segments(root)
    return specs, verify_segments(root, specs)
