"""Repo-specific lint rules (stdlib :mod:`ast` only).

Each rule is a function ``(tree, ctx) -> list[LintFinding]`` registered in
:data:`LINT_RULES`.  Rules are deliberately narrow: they encode *this*
codebase's correctness conventions, not general style — style belongs to
ruff (configured in ``pyproject.toml``).

Rules
-----

``REPRO001`` **no-wall-clock** — modules under ``core/`` or ``executor/``
must never read the host's wall clock (``time.time()``,
``time.monotonic()``, ``datetime.now()``, ...).  All timing flows through
the virtual clock (:mod:`repro.sim.clock`); a single wall-clock read makes
experiments non-deterministic and progress speeds meaningless.

``REPRO002`` **no-float-progress-eq** — no ``==`` / ``!=`` against float
literals, or on names that look like progress fractions
(``*fraction*``, ``*progress*``, ``*percent*``, ``*_pct``).  Progress
fractions accumulate float error; exact comparison is a latent bug.
Compare with tolerances or ``math.isclose``.

``REPRO003`` **no-mutable-default** — no mutable default arguments
(list/dict/set displays, comprehensions, or ``list()``/``dict()``/
``set()`` calls).  The default is evaluated once and shared across calls.

``REPRO004`` **import-layering** — the package layering is one-way:
``storage`` → ``executor`` → ``core`` → ``bench`` (low to high).  A module
may import same-layer or lower-layer packages only; back-edges (storage
importing executor, executor importing core, ...) are structural debt the
segment verifier cannot untangle later.

``REPRO005`` **no-adhoc-logging** — modules under ``core/`` or
``executor/`` must not ``print()`` or use the :mod:`logging` module.
Diagnostics from the engine flow through the typed trace events of
:mod:`repro.obs` (emit on the attached ``TraceBus``), which keeps the
hot path silent, the output machine-readable, and the timestamps on the
virtual clock.

``REPRO006`` **no-deprecated-facade** — no new callers of the deprecated
``Database`` query facade (``execute_with_progress`` /
``run_planned_with_progress``, or ``execute`` on a receiver named
``db``/``database``).  The stable surface is ``Database.connect()`` →
:class:`repro.api.Session` → :class:`repro.api.QueryHandle`; the old
methods are shims that warn and forward.  The shim module itself and
test files are exempt.

``REPRO007`` **no-blanket-except** — modules under ``core/`` or
``executor/`` must not catch blindly: no bare ``except:``, and no
``except Exception`` / ``except BaseException`` (alone or inside a
tuple).  Handlers must name types from the :mod:`repro.errors` taxonomy
(or concrete stdlib types) so transient faults stay distinguishable from
fatal ones — a blanket handler deep in the engine can swallow an
injected :class:`~repro.errors.TransientIOError` that the disk's retry
machinery, the scheduler's containment boundary, or a test harness
needed to see.  The few *deliberate* boundaries (the indicator's
degrade-don't-die wrappers, the scheduler-adjacent worker-thread edge)
carry an explanatory ``# noqa: REPRO007``.

``REPRO008`` **no-unseeded-random** — outside ``sim/``, ``fault/`` and
test code, no unseeded randomness: zero-argument ``random.Random()``
(seeded from the OS), ``random.SystemRandom`` (always OS entropy), and
module-level ``random.*`` calls (the hidden global stream, including
``random.seed``).  Every stochastic component takes an explicit
``random.Random(seed)`` so the same configuration replays the identical
run — the determinism contract the effect checker
(:mod:`repro.analysis.flow.effects`) enforces transitively for the
engine core.  ``random.Random(seed)`` with an argument is fine anywhere.

``REPRO009`` **no-per-row-dispatch** — inside the *known-hot* driver
loops (an explicit allowlist of functions that run once per output row:
the single-query driver, the scheduler's slice loop, the concurrent
worker loop), no ``isinstance(...)`` dispatch and no deep
(three-or-more-component) attribute-chain calls inside a loop body.
Item-kind dispatch in these loops is by identity (``item is PULSE``,
``type(item) is Batch``), and loop-invariant bound methods are hoisted
to locals before the loop — the idiom that keeps the batch engine's
real-time win from leaking back out through the drivers.  Deliberate
exceptions carry ``# noqa: REPRO009``.

``REPRO010`` **no-legacy-refine-import** — no new imports of
``repro.core.refine``: the refinement layer moved behind the pluggable
estimator interface of :mod:`repro.estimators`, and ``core.refine`` is a
deprecation shim only (``ProgressEstimator`` warns on instantiation).
Import the snapshot types from ``repro.estimators`` and construct
estimators via ``make_estimator``.  The shim module itself and test
files are exempt.

``REPRO011`` **no-raw-scheduler** — no direct
``CooperativeScheduler(...)`` construction outside ``service/`` and
``sched/``.  A raw scheduler has no admission control, no tenant
accounting and no shedding loop: queries submitted to one bypass every
overload protection the service layer exists to provide.  Production
code obtains a scheduler through :class:`repro.service.QueryService`
(``db.service()``) or the :class:`repro.api.Session` facade; the
``sched`` package itself and test files are exempt.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional

#: Wall-clock attributes of the ``time`` module that REPRO001 flags.
_WALL_CLOCK_TIME_ATTRS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "time_ns",
     "monotonic_ns", "perf_counter_ns"}
)
#: Wall-clock constructors of the ``datetime`` module.
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: Packages REPRO001 applies to (the simulated-time core of the engine;
#: ``estimators`` runs inside the indicator's tick path, so the same
#: no-wall-clock / silent / typed-errors contracts apply).
_CLOCKED_PACKAGES = frozenset({"core", "executor", "estimators"})

#: Name fragments that mark a value as a progress fraction for REPRO002.
_FRACTION_NAME_HINTS = ("fraction", "progress", "percent")
_FRACTION_NAME_SUFFIXES = ("_pct",)

#: One-way package layering for REPRO004, low to high.
LAYER_ORDER = ("storage", "executor", "core", "bench")
_LAYER_RANK = {name: rank for rank, name in enumerate(LAYER_ORDER)}


@dataclass(frozen=True)
class LintFinding:
    """One lint rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintContext:
    """Per-file facts the rules dispatch on."""

    path: str
    #: The repo package directories this file sits under (e.g. ("core",)).
    packages: tuple[str, ...]

    def layer(self) -> Optional[int]:
        """The file's layering rank, or None if it is outside the layers."""
        for part in self.packages:
            if part in _LAYER_RANK:
                return _LAYER_RANK[part]
        return None


RuleFn = Callable[[ast.AST, LintContext], list[LintFinding]]

#: rule id -> (short name, check function); populated by ``@_rule``.
LINT_RULES: dict[str, tuple[str, RuleFn]] = {}


def _rule(rule_id: str, name: str) -> Callable[[RuleFn], RuleFn]:
    def register(fn: RuleFn) -> RuleFn:
        LINT_RULES[rule_id] = (name, fn)
        return fn

    return register


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# REPRO001 — no wall-clock in core/ and executor/


@_rule("REPRO001", "no-wall-clock")
def _check_wall_clock(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    if not any(p in _CLOCKED_PACKAGES for p in ctx.packages):
        return []
    out = []

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            LintFinding(
                rule="REPRO001",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=f"wall-clock read {what!r}; use the virtual clock "
                f"(sim.clock) instead",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_TIME_ATTRS:
                        flag(node, f"time.{alias.name}")
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is None:
                continue
            head, _, tail = dotted.rpartition(".")
            if head == "time" and tail in _WALL_CLOCK_TIME_ATTRS:
                flag(node, dotted)
            elif (
                tail in _WALL_CLOCK_DATETIME_ATTRS
                and head.split(".")[-1] in ("datetime", "date")
            ):
                flag(node, dotted)
    return out


# ----------------------------------------------------------------------
# REPRO002 — no float equality on progress fractions


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # -0.5 parses as UnaryOp(USub, Constant(0.5))
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


def _fraction_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    else:
        return None
    lowered = name.lower()
    if any(h in lowered for h in _FRACTION_NAME_HINTS):
        return name
    if lowered.endswith(_FRACTION_NAME_SUFFIXES):
        return name
    return None


@_rule("REPRO002", "no-float-progress-eq")
def _check_float_equality(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if _is_float_literal(side):
                    out.append(
                        LintFinding(
                            rule="REPRO002",
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message="exact equality against a float literal; "
                            "use a tolerance (math.isclose)",
                        )
                    )
                    break
                name = _fraction_name(side)
                if name is not None:
                    out.append(
                        LintFinding(
                            rule="REPRO002",
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=f"exact equality on progress fraction "
                            f"{name!r}; use a tolerance (math.isclose)",
                        )
                    )
                    break
    return out


# ----------------------------------------------------------------------
# REPRO003 — no mutable default arguments


_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


@_rule("REPRO003", "no-mutable-default")
def _check_mutable_defaults(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                name = getattr(node, "name", "<lambda>")
                out.append(
                    LintFinding(
                        rule="REPRO003",
                        path=ctx.path,
                        line=default.lineno,
                        col=default.col_offset,
                        message=f"mutable default argument in {name!r}; "
                        f"default to None (or use dataclasses.field)",
                    )
                )
    return out


# ----------------------------------------------------------------------
# REPRO004 — one-way import layering


def _imported_layer(module: str) -> Optional[tuple[str, int]]:
    """The layering rank a ``repro.X...`` import lands in, if any."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    pkg = parts[1]
    rank = _LAYER_RANK.get(pkg)
    return (pkg, rank) if rank is not None else None


@_rule("REPRO004", "import-layering")
def _check_import_layering(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    own_layer = ctx.layer()
    if own_layer is None:
        return []
    out = []

    def flag(node: ast.AST, pkg: str) -> None:
        own = LAYER_ORDER[own_layer]
        out.append(
            LintFinding(
                rule="REPRO004",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=f"layering back-edge: {own!r} must not import "
                f"{pkg!r} (allowed direction: "
                f"{' -> '.join(LAYER_ORDER)})",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                hit = _imported_layer(alias.name)
                if hit is not None and hit[1] > own_layer:
                    flag(node, hit[0])
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            hit = _imported_layer(node.module)
            if hit is None and node.module == "repro":
                for alias in node.names:
                    rank = _LAYER_RANK.get(alias.name)
                    if rank is not None and rank > own_layer:
                        flag(node, alias.name)
            elif hit is not None and hit[1] > own_layer:
                flag(node, hit[0])
    return out


# ----------------------------------------------------------------------
# REPRO005 — no print / ad-hoc logging in core/ and executor/

#: Packages REPRO005 applies to (same silent-engine core as REPRO001).
_SILENT_PACKAGES = _CLOCKED_PACKAGES


@_rule("REPRO005", "no-adhoc-logging")
def _check_adhoc_logging(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    if not any(p in _SILENT_PACKAGES for p in ctx.packages):
        return []
    out = []

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            LintFinding(
                rule="REPRO005",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=f"ad-hoc output {what!r} in the engine core; emit a "
                f"typed event on the TraceBus (repro.obs) instead",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "logging":
                    flag(node, f"import {alias.name}")
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and (
                node.module.split(".")[0] == "logging"
            ):
                flag(node, f"from {node.module} import ...")
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                flag(node, "print()")
            else:
                dotted = _dotted(node.func)
                if dotted is not None and dotted.split(".")[0] == "logging":
                    flag(node, f"{dotted}()")
    return out


# ----------------------------------------------------------------------
# REPRO006 — no new callers of the deprecated Database query facade

#: Methods that are unambiguously the deprecated facade.
_DEPRECATED_FACADE_METHODS = frozenset(
    {"execute_with_progress", "run_planned_with_progress"}
)
#: Receiver names that mark a bare ``.execute(...)`` as the facade (a
#: ``session.execute(...)`` is the supported Session convenience).
_DATABASE_RECEIVER_NAMES = frozenset({"db", "database"})


def _facade_exempt(ctx: LintContext) -> bool:
    """The shim module itself and test files may reference the facade."""
    path = ctx.path.replace("\\", "/")
    if path.endswith("/database.py") or path == "database.py":
        return True
    parts = path.split("/")
    return any(p in ("tests", "test") for p in parts) or parts[-1].startswith(
        "test_"
    )


@_rule("REPRO006", "no-deprecated-facade")
def _check_deprecated_facade(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    if _facade_exempt(ctx):
        return []
    out = []

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            LintFinding(
                rule="REPRO006",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=f"deprecated Database facade call {what!r}; use "
                f"Database.connect() and Session.submit (repro.api)",
            )
        )

    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr in _DEPRECATED_FACADE_METHODS:
            flag(node, f".{attr}()")
        elif attr == "execute":
            receiver = node.func.value
            name = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else receiver.attr
                if isinstance(receiver, ast.Attribute)
                else None
            )
            if name is not None and name.lower() in _DATABASE_RECEIVER_NAMES:
                flag(node, f"{name}.execute()")
    return out


# ----------------------------------------------------------------------
# REPRO007 — no bare / blanket except in core/ and executor/

#: Packages REPRO007 applies to (same engine core as REPRO001/REPRO005).
_TAXONOMY_PACKAGES = _CLOCKED_PACKAGES
#: Exception names that catch everything (or nearly so).
_BLANKET_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _blanket_name(node: ast.AST) -> Optional[str]:
    """The blanket exception name a handler clause names, if any."""
    if isinstance(node, ast.Name) and node.id in _BLANKET_EXCEPTION_NAMES:
        return node.id
    dotted = _dotted(node)
    if dotted is not None and dotted.split(".")[-1] in _BLANKET_EXCEPTION_NAMES:
        return dotted
    return None


@_rule("REPRO007", "no-blanket-except")
def _check_blanket_except(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    if not any(p in _TAXONOMY_PACKAGES for p in ctx.packages):
        return []
    out = []

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            LintFinding(
                rule="REPRO007",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=f"blanket handler {what}; catch types from the "
                f"repro.errors taxonomy (transient vs fatal), or mark a "
                f"deliberate boundary with '# noqa: REPRO007'",
            )
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        clause = node.type
        if clause is None:
            flag(node, "bare 'except:'")
        elif isinstance(clause, ast.Tuple):
            for element in clause.elts:
                name = _blanket_name(element)
                if name is not None:
                    flag(node, f"'except (..., {name}, ...)'")
                    break
        else:
            name = _blanket_name(clause)
            if name is not None:
                flag(node, f"'except {name}'")
    return out


# ----------------------------------------------------------------------
# REPRO008 — no unseeded randomness outside sim/, fault/ and tests

#: Packages allowed to own randomness (always behind explicit seeds).
_RANDOM_EXEMPT_PACKAGES = frozenset({"sim", "fault"})


def _random_exempt(ctx: LintContext) -> bool:
    if any(p in _RANDOM_EXEMPT_PACKAGES for p in ctx.packages):
        return True
    path = ctx.path.replace("\\", "/")
    parts = path.split("/")
    return any(p in ("tests", "test") for p in parts) or parts[-1].startswith(
        "test_"
    )


@_rule("REPRO008", "no-unseeded-random")
def _check_unseeded_random(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    if _random_exempt(ctx):
        return []
    out = []

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            LintFinding(
                rule="REPRO008",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=f"unseeded randomness {what!r}; draw from an "
                f"explicitly seeded random.Random(seed) so runs replay "
                f"deterministically",
            )
        )

    #: local name -> original name, for ``from random import ...``.
    from_random: dict[str, str] = {}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module == "random"
        ):
            for alias in node.names:
                if alias.name != "*":
                    from_random[alias.asname or alias.name] = alias.name

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        head, _, tail = dotted.rpartition(".")
        if head == "random":
            origin = tail
        elif head == "" and tail in from_random:
            origin = from_random[tail]
        else:
            continue
        if origin == "Random":
            if not node.args and not node.keywords:
                flag(node, f"{dotted}() with no seed")
        elif origin == "SystemRandom":
            flag(node, dotted)
        else:
            flag(node, f"{dotted}() on the global stream")
    return out


# ----------------------------------------------------------------------
# REPRO009 — no per-row dispatch overhead in known-hot driver loops

#: The allowlist of known-hot functions: (path suffix, function name).
#: These are the loops that execute once per output row / batch across
#: every engine — the places where one stray isinstance() or repeated
#: deep attribute lookup costs a measurable slice of the batch engine's
#: real-time win.  Extend this list when a new per-row driver loop is
#: added; the rule deliberately checks nothing outside it.
HOT_LOOP_FUNCTIONS: frozenset[tuple[str, str]] = frozenset(
    {
        # single-query drivers: the result-collection loops
        ("executor/runtime.py", "run_query"),
        ("executor/runtime.py", "execute"),
        # cooperative scheduler: the per-slice item loop
        ("sched/scheduler.py", "_run_slice"),
        # concurrent workload: the per-worker drain loop
        ("core/concurrent.py", "work"),
    }
)

#: Attribute-chain call depth from which REPRO009 demands hoisting
#: (``a.b(...)`` is fine, ``a.b.c(...)`` re-resolves two lookups per row).
_HOT_LOOP_CHAIN_DEPTH = 3


def _hot_loop_functions(tree: ast.AST, ctx: LintContext):
    """The allowlisted function bodies present in this file."""
    path = ctx.path.replace("\\", "/")
    names = {
        fn for suffix, fn in HOT_LOOP_FUNCTIONS if path.endswith(suffix)
    }
    if not names:
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in names
        ):
            yield node


@_rule("REPRO009", "no-per-row-dispatch")
def _check_hot_loop_dispatch(
    tree: ast.AST, ctx: LintContext
) -> list[LintFinding]:
    out = []

    def flag(node: ast.AST, message: str) -> None:
        out.append(
            LintFinding(
                rule="REPRO009",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=message,
            )
        )

    for fn in _hot_loop_functions(tree, ctx):
        loops = [
            n for n in ast.walk(fn) if isinstance(n, (ast.For, ast.While))
        ]
        for loop in loops:
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                ):
                    flag(
                        node,
                        f"isinstance() in the hot loop of {fn.name}(); "
                        f"dispatch on identity instead "
                        f"(item is PULSE / type(item) is Batch)",
                    )
                    continue
                dotted = _dotted(node.func)
                if (
                    dotted is not None
                    and dotted.count(".") >= _HOT_LOOP_CHAIN_DEPTH - 1
                ):
                    flag(
                        node,
                        f"per-row attribute chain {dotted!r} in the hot "
                        f"loop of {fn.name}(); hoist the bound method to "
                        f"a local before the loop",
                    )
    return out


# ----------------------------------------------------------------------
# REPRO010 — no new imports of the deprecated core.refine shim

#: The legacy module the estimator redesign left behind as a shim.
_LEGACY_REFINE_MODULE = "repro.core.refine"


def _refine_exempt(ctx: LintContext) -> bool:
    """The shim module itself and test files may import it."""
    path = ctx.path.replace("\\", "/")
    if path.endswith("core/refine.py"):
        return True
    parts = path.split("/")
    return any(p in ("tests", "test") for p in parts) or parts[-1].startswith(
        "test_"
    )


@_rule("REPRO010", "no-legacy-refine-import")
def _check_legacy_refine_import(
    tree: ast.AST, ctx: LintContext
) -> list[LintFinding]:
    if _refine_exempt(ctx):
        return []
    out = []

    def flag(node: ast.AST, what: str) -> None:
        out.append(
            LintFinding(
                rule="REPRO010",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=f"import of the deprecated refine shim {what!r}; "
                f"use repro.estimators (make_estimator, EstimateSnapshot)",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == _LEGACY_REFINE_MODULE or alias.name.startswith(
                    _LEGACY_REFINE_MODULE + "."
                ):
                    flag(node, alias.name)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == _LEGACY_REFINE_MODULE:
                flag(node, node.module)
            elif node.module == "repro.core":
                for alias in node.names:
                    if alias.name == "refine":
                        flag(node, f"repro.core.refine (via {alias.name})")
    return out


# ----------------------------------------------------------------------
# REPRO011 — no raw CooperativeScheduler construction outside the service

#: Packages allowed to construct the scheduler directly: the scheduler's
#: own package and the service layer that wraps it.
_SCHEDULER_OWNER_PACKAGES = frozenset({"sched", "service"})


def _scheduler_exempt(ctx: LintContext) -> bool:
    if any(p in _SCHEDULER_OWNER_PACKAGES for p in ctx.packages):
        return True
    path = ctx.path.replace("\\", "/")
    parts = path.split("/")
    return any(p in ("tests", "test") for p in parts) or parts[-1].startswith(
        "test_"
    )


@_rule("REPRO011", "no-raw-scheduler")
def _check_raw_scheduler(tree: ast.AST, ctx: LintContext) -> list[LintFinding]:
    if _scheduler_exempt(ctx):
        return []
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name):
            name = node.func.id
        else:
            dotted = _dotted(node.func)
            name = dotted.split(".")[-1] if dotted is not None else None
        if name == "CooperativeScheduler":
            out.append(
                LintFinding(
                    rule="REPRO011",
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message="raw CooperativeScheduler() bypasses admission "
                    "control, tenant accounting and shedding; go through "
                    "db.service() / Session (repro.service, repro.api)",
                )
            )
    return out
