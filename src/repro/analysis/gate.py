"""Pre-execution verification gate.

Execution paths call :func:`gate_segments` right after the segment
builder runs and before the first tuple flows.  Behaviour is governed by
a mode resolved from (highest priority first) the ``REPRO_VERIFY``
environment variable, then :attr:`repro.config.ProgressConfig.verify_mode`:

* ``"off"``    — skip verification entirely;
* ``"warn"``   — verify and emit a :class:`PlanVerificationWarning`
  listing the violations (the production default: a suspect estimate is
  better than a refused query);
* ``"strict"`` — verify and raise :class:`PlanVerificationError`
  (the test-suite and CI default, set in ``tests/conftest.py``).
"""

from __future__ import annotations

import os
import warnings
from typing import TYPE_CHECKING, Optional

from repro.analysis.invariants import Violation, verify_segments
from repro.config import SystemConfig
from repro.errors import ProgressError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core -> analysis)
    from repro.core.segments import SegmentSpec
    from repro.planner.physical import PhysicalNode

VERIFY_MODES = ("off", "warn", "strict")

#: Environment override consulted before the config knob.
ENV_VAR = "REPRO_VERIFY"


class PlanVerificationError(ProgressError):
    """A plan failed invariant verification in strict mode."""

    def __init__(self, label: str, violations: list[Violation]) -> None:
        detail = "; ".join(v.format() for v in violations)
        super().__init__(
            f"plan verification failed for {label}: {len(violations)} "
            f"violation(s): {detail}"
        )
        self.label = label
        self.violations = violations


class PlanVerificationWarning(UserWarning):
    """A plan failed invariant verification in warn mode."""


def resolve_verify_mode(config: Optional[SystemConfig] = None) -> str:
    """The effective gate mode for ``config`` (env var wins)."""
    mode = os.environ.get(ENV_VAR, "").strip().lower()
    if not mode and config is not None:
        mode = getattr(config.progress, "verify_mode", "warn")
    mode = mode or "warn"
    if mode not in VERIFY_MODES:
        raise ProgressError(
            f"unknown verify mode {mode!r}; expected one of {VERIFY_MODES}"
        )
    return mode


def gate_segments(
    root: "PhysicalNode",
    specs: list["SegmentSpec"],
    config: Optional[SystemConfig] = None,
    mode: Optional[str] = None,
    label: str = "query",
) -> list[Violation]:
    """Verify a segmented plan; enforce per the resolved mode.

    Returns the violations found (empty when the plan is clean or the
    gate is off) so callers can log them even in warn mode.
    """
    if mode is None:
        mode = resolve_verify_mode(config)
    if mode == "off":
        return []
    violations = verify_segments(root, specs)
    if not violations:
        return violations
    if mode == "strict":
        raise PlanVerificationError(label, violations)
    summary = "; ".join(v.format() for v in violations[:5])
    if len(violations) > 5:
        summary += f"; ... {len(violations) - 5} more"
    warnings.warn(
        f"plan verification found {len(violations)} violation(s) in "
        f"{label}: {summary}",
        PlanVerificationWarning,
        stacklevel=3,
    )
    return violations
