"""Text rendering of figure series (the benches print these)."""

from __future__ import annotations

from typing import Optional, Sequence

Series = Sequence[tuple[float, Optional[float]]]

_BARS = " .:-=+*#%@"


def render_table(
    columns: dict[str, Series], title: str = "", time_label: str = "t(s)"
) -> str:
    """Render aligned columns of one or more series sharing time points."""
    lines: list[str] = []
    if title:
        lines.append(title)
    names = list(columns)
    times: list[float] = []
    for series in columns.values():
        for t, _ in series:
            if not times or t > times[-1]:
                times.append(t)
    by_name = {name: dict(series) for name, series in columns.items()}
    header = f"{time_label:>10}  " + "  ".join(f"{n:>16}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for t in times:
        cells = []
        for name in names:
            v = by_name[name].get(t)
            cells.append(f"{v:16.1f}" if v is not None else f"{'-':>16}")
        lines.append(f"{t:10.1f}  " + "  ".join(cells))
    return "\n".join(lines)


def render_series(series: Series, title: str = "", width: int = 60) -> str:
    """A compact ASCII chart of one series (value magnitude per row)."""
    defined = [(t, v) for t, v in series if v is not None]
    lines: list[str] = []
    if title:
        lines.append(title)
    if not defined:
        lines.append("(no defined points)")
        return "\n".join(lines)
    values = [v for _, v in defined]
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    for t, v in defined:
        filled = int(round((v - lo) / span * (width - 1)))
        bar = "#" * (filled + 1)
        lines.append(f"{t:10.1f} | {bar:<{width}} {v:12.1f}")
    return "\n".join(lines)


def sparkline(series: Series) -> str:
    """One-line rendering of a series (for compact bench output)."""
    defined = [v for _, v in series if v is not None]
    if not defined:
        return ""
    lo, hi = min(defined), max(defined)
    span = hi - lo or 1.0
    return "".join(
        _BARS[int((v - lo) / span * (len(_BARS) - 1))] for v in defined
    )
