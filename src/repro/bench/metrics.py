"""Shape metrics for comparing reproduced series with the paper's figures."""

from __future__ import annotations

from typing import Optional, Sequence

Series = Sequence[tuple[float, Optional[float]]]


def _defined(series: Series) -> list[tuple[float, float]]:
    return [(t, v) for t, v in series if v is not None]


def mean_abs_error(series: Series, reference: Series) -> Optional[float]:
    """Mean |series - reference| over instants where both are defined.

    The two series must share their time points (ours always do: one
    report per update interval).
    """
    ref = {t: v for t, v in reference if v is not None}
    errors = [abs(v - ref[t]) for t, v in series if v is not None and t in ref]
    if not errors:
        return None
    return sum(errors) / len(errors)


def convergence_time(
    series: Series, target: float, tolerance: float
) -> Optional[float]:
    """First instant after which the series stays within ±tolerance·target.

    Used for statements like "the query cost estimated by the progress
    indicator reaches the exact query cost at 300 seconds and stays there".
    """
    band = abs(target) * tolerance
    points = _defined(series)
    converged_at: Optional[float] = None
    for t, v in points:
        if abs(v - target) <= band:
            if converged_at is None:
                converged_at = t
        else:
            converged_at = None
    return converged_at


def series_min(series: Series) -> float:
    """Smallest defined value in the series."""
    values = [v for _, v in _defined(series)]
    if not values:
        raise ValueError("series has no defined values")
    return min(values)


def series_max(series: Series) -> float:
    """Largest defined value in the series."""
    values = [v for _, v in _defined(series)]
    if not values:
        raise ValueError("series has no defined values")
    return max(values)


def value_near(series: Series, t: float) -> Optional[float]:
    """The defined value at the largest time <= t."""
    best = None
    for ts, v in series:
        if ts <= t and v is not None:
            best = v
        if ts > t:
            break
    return best


def is_nondecreasing(series: Series, slack: float = 1e-9) -> bool:
    """Whether the defined values never decrease (within slack)."""
    values = [v for _, v in _defined(series)]
    return all(b >= a - slack for a, b in zip(values, values[1:]))


def max_jump(series: Series) -> float:
    """Largest single-step increase (used for interference-onset checks)."""
    values = [v for _, v in _defined(series)]
    if len(values) < 2:
        return 0.0
    return max(b - a for a, b in zip(values, values[1:]))
