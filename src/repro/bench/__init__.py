"""Experiment harness: runs monitored queries and extracts figure series.

Each benchmark in ``benchmarks/`` builds a database, runs one of the
paper's queries under a load profile via :func:`run_experiment`, and
prints the same series the corresponding paper figure plots (estimated
cost, execution speed, estimated/actual/optimizer remaining time,
completed percentage) plus shape metrics recorded in EXPERIMENTS.md.
"""

from repro.bench.figures import render_series, render_table
from repro.bench.harness import ExperimentResult, run_experiment
from repro.bench.metrics import (
    convergence_time,
    mean_abs_error,
    series_max,
    series_min,
    value_near,
)
from repro.bench.perf import PERF_CASES, PerfCase, SuiteResult, run_suite

__all__ = [
    "run_experiment",
    "ExperimentResult",
    "PerfCase",
    "PERF_CASES",
    "SuiteResult",
    "run_suite",
    "render_series",
    "render_table",
    "mean_abs_error",
    "convergence_time",
    "series_min",
    "series_max",
    "value_near",
]
