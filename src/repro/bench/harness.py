"""Run one monitored query and package everything the figures need."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.baseline import OptimizerBaseline, StepBaseline
from repro.core.history import ProgressLog
from repro.database import Database
from repro.sim.load import LoadProfile

if TYPE_CHECKING:  # pragma: no cover - obs is imported lazily
    from repro.obs.bus import SealedTrace


@dataclass
class ExperimentResult:
    """Everything one figure/bench needs from a monitored run."""

    name: str
    sql: str
    log: ProgressLog
    optimizer_baseline: OptimizerBaseline
    total_elapsed: float
    row_count: int
    num_segments: int
    segment_boundaries: list[tuple[int, float]] = field(default_factory=list)
    #: Sealed view of the recorded trace when tracing was on, else None.
    trace: Optional["SealedTrace"] = None

    # -- figure series --------------------------------------------------

    def estimated_cost_series(self) -> list[tuple[float, float]]:
        """Figures 4/9/13/17/18: estimated query cost (U) over time."""
        return self.log.estimated_cost_series()

    def speed_series(self) -> list[tuple[float, Optional[float]]]:
        """Figures 5/10/14: execution speed (U/s) over time."""
        return self.log.speed_series()

    def percent_series(self) -> list[tuple[float, float]]:
        """Figures 7/12/16: completed percentage over time."""
        return self.log.percent_series()

    def remaining_series(self) -> list[tuple[float, Optional[float]]]:
        """Figures 6/11/15/19/20: estimated remaining seconds over time."""
        return self.log.remaining_series()

    def actual_remaining_series(self) -> list[tuple[float, float]]:
        """The dashed ground-truth line: true remaining seconds over time."""
        return [
            (t, max(0.0, self.total_elapsed - t))
            for t, _ in self.log.remaining_series()
        ]

    def optimizer_remaining_series(self) -> list[tuple[float, float]]:
        """The dotted baseline: the optimizer's remaining-time estimate."""
        return [
            (t, self.optimizer_baseline.remaining(t))
            for t, _ in self.log.remaining_series()
        ]

    @property
    def exact_cost_pages(self) -> float:
        """The exact query cost in U, known once the query completed."""
        return self.log.final().est_cost_pages


def run_experiment(
    name: str,
    db: Database,
    sql: str,
    load: Optional[LoadProfile] = None,
    keep_rows: bool = False,
) -> ExperimentResult:
    """Run ``sql`` on ``db`` under ``load`` with a progress indicator.

    Mirrors the paper's protocol (Section 5.1): the buffer pool starts
    cold, the load profile models any concurrent job, and the indicator's
    outputs are stored for post-processing.

    Tracing follows ``ProgressConfig.trace_enabled`` / ``REPRO_TRACE``;
    when ``REPRO_TRACE`` names a directory, the recorded trace is also
    exported there as ``<name>.trace.jsonl`` + ``<name>.trace.json``.
    """
    db.restart()
    if load is not None:
        db.set_load(load)
    monitored = db.connect().submit(
        sql, name=name, keep_rows=keep_rows
    ).monitored()
    if monitored.trace is not None:
        _export_trace_artifacts(name, monitored.trace)

    tracker = monitored.indicator.tracker
    step = StepBaseline(monitored.indicator.segments, tracker)
    boundaries = [
        (seg.segment_id, seg.finished_at)
        for seg in tracker.segments
        if seg.finished_at is not None
    ]
    return ExperimentResult(
        name=name,
        sql=sql,
        log=monitored.log,
        optimizer_baseline=OptimizerBaseline(
            monitored.indicator.segments, db.config
        ),
        total_elapsed=monitored.result.elapsed,
        row_count=monitored.result.row_count,
        num_segments=step.total_steps,
        segment_boundaries=boundaries,
        trace=monitored.trace,
    )


def _export_trace_artifacts(name: str, trace: "SealedTrace") -> None:
    """Write JSONL + Chrome trace files when REPRO_TRACE names a dir."""
    from repro.obs import trace_artifact_dir, write_chrome_trace, write_jsonl

    out_dir = trace_artifact_dir()
    if out_dir is None:
        return
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = name.lower().replace(" ", "_").replace("/", "_")
    write_jsonl(trace.events, out_dir / f"{stem}.trace.jsonl")
    write_chrome_trace(trace.events, out_dir / f"{stem}.trace.json")
