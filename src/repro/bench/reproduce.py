"""One-shot reproduction runner: every Section 5 experiment, summarized.

Used by ``python -m repro reproduce`` and importable for scripting.  Runs
the five queries under their paper regimes (unloaded, I/O interference,
CPU interference) on fresh databases, then prints a compact paper-vs-
measured summary — the table EXPERIMENTS.md records in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.bench.harness import ExperimentResult, run_experiment
from repro.bench.metrics import convergence_time, mean_abs_error
from repro.config import SystemConfig
from repro.sim.load import LoadProfile
from repro.workloads import correlated, queries, tpcr


@dataclass(frozen=True)
class ExperimentRow:
    """One line of the reproduction summary."""

    experiment: str
    figures: str
    result: ExperimentResult

    def indicator_error(self) -> Optional[float]:
        """Mean |estimated - actual| remaining seconds for the indicator."""
        return mean_abs_error(
            self.result.remaining_series(), self.result.actual_remaining_series()
        )

    def optimizer_error(self) -> Optional[float]:
        """Mean |estimated - actual| remaining seconds for the baseline."""
        return mean_abs_error(
            self.result.optimizer_remaining_series(),
            self.result.actual_remaining_series(),
        )

    def cost_convergence(self) -> Optional[float]:
        """When the cost estimate reached the exact value (2% band)."""
        return convergence_time(
            self.result.estimated_cost_series(),
            self.result.exact_cost_pages,
            tolerance=0.02,
        )


def run_all(
    scale: float = 0.01,
    config: Optional[SystemConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> list[ExperimentRow]:
    """Run every paper experiment; returns one summary row per run.

    Interference onsets are placed *relative to the measured unloaded
    durations* (the paper's copy started about a third into Q2's life and
    its CPU hog just past half of Q5's), so the summary works at any
    scale factor.
    """
    config = config or SystemConfig(work_mem_pages=24)

    def plain_db():
        return tpcr.build_database(scale=scale, config=config)

    def correlated_db():
        return correlated.build_database(scale=scale, config=config)

    def run(name: str, figures: str, builder, sql, load=None) -> ExperimentRow:
        if progress is not None:
            progress(f"running {name} ...")
        result = run_experiment(name, builder(), sql, load=load)
        row = ExperimentRow(name, figures, result)
        rows.append(row)
        return row

    rows: list[ExperimentRow] = []
    run("Q1 unloaded", "Fig 4-7", plain_db, queries.Q1)
    q2 = run("Q2 unloaded", "Fig 9-12", plain_db, queries.Q2)
    t2 = q2.result.total_elapsed
    run(
        "Q2 I/O interference",
        "Fig 13-16",
        plain_db,
        queries.Q2,
        load=LoadProfile.file_copy(0.33 * t2, 1.1 * t2, 3.0),
    )
    run("Q3 correlated", "Fig 17", correlated_db, queries.Q3)
    run("Q4 two errors", "Fig 18", plain_db, queries.Q4)
    q5 = run("Q5 unloaded", "Fig 19", plain_db, queries.Q5)
    t5 = q5.result.total_elapsed
    run(
        "Q5 CPU interference",
        "Fig 20",
        plain_db,
        queries.Q5,
        load=LoadProfile.cpu_hog(0.55 * t5, slowdown=2.5),
    )
    return rows


def render_summary(rows: list[ExperimentRow], scale: float) -> str:
    """The reproduction summary table."""
    lines = [
        f"Reproduction summary (scale {scale}, one run per experiment)",
        "",
        f"{'experiment':<22} {'figures':<9} {'run (s)':>8} "
        f"{'init/exact cost':>16} {'conv (s)':>9} "
        f"{'err ind (s)':>12} {'err opt (s)':>12}",
        "-" * 95,
    ]
    for row in rows:
        r = row.result
        initial = r.estimated_cost_series()[0][1]
        ratio = initial / r.exact_cost_pages if r.exact_cost_pages else 1.0
        conv = row.cost_convergence()
        conv_text = f"{conv:.0f}" if conv is not None else "-"
        ind = row.indicator_error()
        opt = row.optimizer_error()
        lines.append(
            f"{row.experiment:<22} {row.figures:<9} {r.total_elapsed:>8.0f} "
            f"{ratio:>15.0%} {conv_text:>9} "
            f"{ind:>12.1f} {opt:>12.1f}"
        )
    lines += [
        "",
        "init/exact cost: the optimizer's initial estimate over the exact",
        "  cost (100% = optimizer already right, as for Q1).",
        "conv: when the cost estimate reaches the exact value (2% band).",
        "err: mean |estimated - actual| remaining seconds — the refined",
        "  indicator vs the trivial optimizer-based one (dotted line).",
    ]
    return "\n".join(lines)
