"""Engine performance suite: row engine vs. fused batch engine.

Every other bench in this repository measures *virtual* time — the
simulated clock the progress indicator reasons about.  This module
measures *real* (wall-clock) time, because the batch engine's entire
reason to exist is real-time overhead: both engines charge bit-identical
virtual costs, produce bit-identical rows and ProgressLogs, and differ
only in how many Python-level operations each output row costs.

The suite is a registry of :class:`PerfCase` workloads.  Each case runs
under both engines on identically-built databases (same scale, same
seed), timed with ``time.perf_counter`` over several runs; the *median*
per-engine real time is the recorded number (medians because CI machines
and laptops alike suffer multi-10% load noise — never trust one run).

Three targets, checked by :func:`check_suite` and gated in CI through
``python -m repro.bench perfcheck``:

* suite-wide geometric-mean speedup (batch over row) of at least
  :data:`GEOMEAN_FLOOR`;
* at least :data:`SCAN_FLOOR` on every case marked ``scan_dominated``
  (wide scans and filters, where per-row interpreter overhead dominates);
* no case where the batch engine is *slower* than the row engine by more
  than :data:`REGRESSION_BUDGET`.

The committed reference numbers live in
``benchmarks/results/perf_baseline.json`` (rendered to human form in
``benchmarks/PERF_SHEET.md``); ``perfcheck`` re-times the suite and
compares against that baseline within a noise tolerance.
"""

from __future__ import annotations

import json
import math
import pathlib
import statistics
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import SystemConfig
from repro.workloads import queries, tpcr

#: Schema tag of the machine-readable baseline document.
PERF_SCHEMA = "repro.bench.perf/1"

#: TPC-R scale factor the suite times at (~60k lineitem rows).
DEFAULT_SCALE = 0.01

#: Timed runs per (case, engine); the median is recorded.  One untimed
#: warm-up run precedes these (buffer-pool warm-up and, for the batch
#: engine, plan compilation).
DEFAULT_RUNS = 5

#: Required suite-wide geometric-mean speedup of batch over row.
GEOMEAN_FLOOR = 3.0

#: Required speedup on every ``scan_dominated`` case.
SCAN_FLOOR = 5.0

#: Maximum tolerated per-case slowdown of batch relative to row (0.10 =
#: the batch engine may never be more than 10% slower on any case).
REGRESSION_BUDGET = 0.10

#: Default fractional tolerance ``perfcheck`` grants fresh timings
#: relative to the committed baseline (real-time noise, not semantics).
DEFAULT_TOLERANCE = 0.35

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
BASELINE_PATH = _REPO_ROOT / "benchmarks" / "results" / "perf_baseline.json"
SHEET_PATH = _REPO_ROOT / "benchmarks" / "PERF_SHEET.md"


@dataclass(frozen=True)
class PerfCase:
    """One suite workload, run identically under both engines."""

    name: str
    sql: str
    #: Wide-scan / filter-dominated cases held to :data:`SCAN_FLOOR`.
    scan_dominated: bool = False
    #: Attach a full progress indicator (shows both engines pay the same
    #: accounting cost, not just that bare pipelines got faster).
    monitor: bool = False


#: The registry.  Names are stable — the committed baseline keys on them.
PERF_CASES: tuple[PerfCase, ...] = (
    # Wide scans: the row engine rebuilds every 16-column tuple through a
    # generator expression per operator; the fused engine elides identity
    # projections entirely.  Held to the SCAN_FLOOR bar.
    PerfCase("scan_wide", queries.Q1, scan_dominated=True),
    PerfCase(
        "scan_wide_filter",
        "select * from lineitem where quantity > 25.0",
        scan_dominated=True,
    ),
    PerfCase(
        "scan_expr_filter",
        "select orderkey from lineitem "
        "where extendedprice * (1.0 - discount) > 1500.0",
        scan_dominated=True,
    ),
    # Narrow projections and aggregates: per-row work the fused engine
    # must still do (tuple building, hash grouping) caps the ratio lower.
    PerfCase("project_narrow", "select orderkey, quantity from lineitem"),
    PerfCase(
        "filter_count",
        "select count(*) from lineitem where quantity > 25.0",
    ),
    PerfCase(
        "agg_group",
        "select returnflag, count(*), sum(quantity) from lineitem "
        "group by returnflag",
    ),
    # Monitored paper queries: full indicator attached, so the identical
    # per-row tracker accounting both engines pay compresses the ratio.
    PerfCase("q1_monitored", queries.Q1, monitor=True),
    PerfCase("q5_monitored", queries.Q5, monitor=True),
)


def cases_by_name() -> dict[str, PerfCase]:
    return {c.name: c for c in PERF_CASES}


def select_cases(names: Optional[Sequence[str]]) -> list[PerfCase]:
    """Resolve ``--cases`` selectors against the registry."""
    if not names:
        return list(PERF_CASES)
    registry = cases_by_name()
    unknown = [n for n in names if n not in registry]
    if unknown:
        known = ", ".join(registry)
        raise ValueError(f"unknown perf case(s) {unknown}; known: {known}")
    return [registry[n] for n in names]


@dataclass(frozen=True)
class CaseResult:
    """Median real time of one case under both engines."""

    name: str
    scan_dominated: bool
    monitor: bool
    row_s: float
    batch_s: float

    @property
    def speedup(self) -> float:
        return self.row_s / self.batch_s


@dataclass(frozen=True)
class SuiteResult:
    """One full timing sweep of the suite."""

    scale: float
    runs: int
    cases: tuple[CaseResult, ...]

    @property
    def geomean_speedup(self) -> float:
        logs = [math.log(c.speedup) for c in self.cases]
        return math.exp(sum(logs) / len(logs))

    def case(self, name: str) -> Optional[CaseResult]:
        for c in self.cases:
            if c.name == name:
                return c
        return None


def _time_case(db, case: PerfCase, engine: str, runs: int) -> float:
    """Median real seconds of ``runs`` executions (after one warm-up)."""
    samples = []
    for i in range(runs + 1):
        t0 = time.perf_counter()
        db.connect().submit(
            case.sql,
            name=f"perf-{case.name}-{engine}-{i}",
            monitor=case.monitor,
            keep_rows=False,
        ).result()
        if i > 0:  # run 0 is the warm-up
            samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def run_suite(
    cases: Optional[Sequence[PerfCase]] = None,
    scale: float = DEFAULT_SCALE,
    runs: int = DEFAULT_RUNS,
    progress=None,
) -> SuiteResult:
    """Time every case under both engines; one database per engine."""
    cases = list(cases) if cases is not None else list(PERF_CASES)
    timings: dict[tuple[str, str], float] = {}
    for engine in ("row", "batch"):
        config = SystemConfig().with_progress(engine=engine)
        db = tpcr.build_database(scale=scale, config=config)
        for case in cases:
            if progress is not None:
                progress(f"timing {case.name} [{engine}] ...")
            timings[(engine, case.name)] = _time_case(db, case, engine, runs)
    results = tuple(
        CaseResult(
            name=c.name,
            scan_dominated=c.scan_dominated,
            monitor=c.monitor,
            row_s=timings[("row", c.name)],
            batch_s=timings[("batch", c.name)],
        )
        for c in cases
    )
    return SuiteResult(scale=scale, runs=runs, cases=results)


# ----------------------------------------------------------------------
# target + baseline checks


def check_suite(suite: SuiteResult) -> list[str]:
    """Violations of the suite's absolute targets (empty = all met)."""
    problems = []
    if suite.geomean_speedup < GEOMEAN_FLOOR:
        problems.append(
            f"suite geomean speedup {suite.geomean_speedup:.2f}x is below "
            f"the {GEOMEAN_FLOOR:.1f}x floor"
        )
    for c in suite.cases:
        if c.scan_dominated and c.speedup < SCAN_FLOOR:
            problems.append(
                f"scan-dominated case {c.name}: {c.speedup:.2f}x is below "
                f"the {SCAN_FLOOR:.1f}x floor"
            )
        if c.batch_s > c.row_s * (1.0 + REGRESSION_BUDGET):
            problems.append(
                f"case {c.name}: batch engine is slower than row by more "
                f"than {REGRESSION_BUDGET:.0%} "
                f"({c.batch_s * 1e3:.1f}ms vs {c.row_s * 1e3:.1f}ms)"
            )
    return problems


def compare_to_baseline(
    fresh: SuiteResult,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Violations of the fresh run against the committed baseline.

    Real-time numbers are noisy, so the comparison is on *speedups* (the
    row engine times on the same machine cancel out machine speed) with a
    fractional ``tolerance``.  Only cases present in both the fresh run
    and the baseline are compared, so ``--cases`` smoke subsets work.
    """
    problems = []
    base_cases = {c["name"]: c for c in baseline.get("cases", [])}
    compared = []
    for c in fresh.cases:
        base = base_cases.get(c.name)
        if base is None:
            problems.append(f"case {c.name} missing from the baseline")
            continue
        compared.append(c)
        floor = base["speedup"] * (1.0 - tolerance)
        if c.speedup < floor:
            problems.append(
                f"case {c.name}: fresh speedup {c.speedup:.2f}x fell below "
                f"baseline {base['speedup']:.2f}x - {tolerance:.0%} "
                f"tolerance ({floor:.2f}x)"
            )
    if compared:
        logs = [math.log(c.speedup) for c in compared]
        fresh_geo = math.exp(sum(logs) / len(logs))
        logs = [math.log(base_cases[c.name]["speedup"]) for c in compared]
        base_geo = math.exp(sum(logs) / len(logs))
        floor = base_geo * (1.0 - tolerance)
        if fresh_geo < floor:
            problems.append(
                f"geomean speedup over compared cases {fresh_geo:.2f}x fell "
                f"below baseline {base_geo:.2f}x - {tolerance:.0%} "
                f"tolerance ({floor:.2f}x)"
            )
    return problems


# ----------------------------------------------------------------------
# serialization


def suite_to_doc(suite: SuiteResult) -> dict:
    """The machine-readable baseline document for ``suite``."""
    return {
        "schema": PERF_SCHEMA,
        "scale": suite.scale,
        "runs": suite.runs,
        "targets": {
            "geomean_floor": GEOMEAN_FLOOR,
            "scan_floor": SCAN_FLOOR,
            "regression_budget": REGRESSION_BUDGET,
        },
        "geomean_speedup": round(suite.geomean_speedup, 4),
        "cases": [
            {
                "name": c.name,
                "scan_dominated": c.scan_dominated,
                "monitor": c.monitor,
                "row_s": round(c.row_s, 6),
                "batch_s": round(c.batch_s, 6),
                "speedup": round(c.speedup, 4),
            }
            for c in suite.cases
        ],
    }


def load_baseline(path: Optional[pathlib.Path] = None) -> dict:
    path = path or BASELINE_PATH
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != PERF_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {PERF_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    return doc


def write_baseline(suite: SuiteResult, path: Optional[pathlib.Path] = None):
    path = path or BASELINE_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(suite_to_doc(suite), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# rendering


def render_suite(suite: SuiteResult) -> str:
    """The plain-text timing table ``python -m repro.bench perf`` prints."""
    lines = [
        f"{'case':<18} {'row (ms)':>10} {'batch (ms)':>11} "
        f"{'speedup':>8}  flags",
        "-" * 62,
    ]
    for c in suite.cases:
        flags = []
        if c.scan_dominated:
            flags.append("scan")
        if c.monitor:
            flags.append("monitored")
        lines.append(
            f"{c.name:<18} {c.row_s * 1e3:>10.1f} {c.batch_s * 1e3:>11.1f} "
            f"{c.speedup:>7.2f}x  {','.join(flags)}"
        )
    lines.append("-" * 62)
    lines.append(
        f"geomean speedup {suite.geomean_speedup:.2f}x "
        f"(scale {suite.scale}, median of {suite.runs} runs)"
    )
    return "\n".join(lines)


def render_sheet(suite: SuiteResult) -> str:
    """The human-readable ``benchmarks/PERF_SHEET.md``."""
    rows = []
    for c in suite.cases:
        flags = "scan-dominated" if c.scan_dominated else ""
        if c.monitor:
            flags = (flags + ", monitored").lstrip(", ")
        rows.append(
            f"| {c.name} | {c.row_s * 1e3:.1f} | {c.batch_s * 1e3:.1f} "
            f"| **{c.speedup:.2f}x** | {flags} |"
        )
    scan_cases = [c for c in suite.cases if c.scan_dominated]
    scan_min = min(c.speedup for c in scan_cases) if scan_cases else None
    scan_line = (
        f"* **≥{SCAN_FLOOR:.0f}x on every scan/filter-dominated case** — "
        f"met (minimum {scan_min:.2f}x)."
        if scan_min is not None and scan_min >= SCAN_FLOOR
        else f"* **≥{SCAN_FLOOR:.0f}x on every scan/filter-dominated case**."
    )
    return f"""# Engine performance sheet: row vs. fused batch engine

Real (wall-clock) execution time of the perf suite
(`src/repro/bench/perf.py`) under both executor engines.  Both engines
produce **bit-identical results** — same rows in the same order, same
ProgressLog, same virtual-clock charge sequence (see
`docs/architecture.md`); only real time differs, which is the entire
point of the batch engine.

## Method

* TPC-R scale {suite.scale} (~60k `lineitem` rows), one database build
  per engine, identical seeds.
* Per case and engine: one untimed warm-up run (buffer-pool warm-up and
  batch-engine plan compilation), then {suite.runs} timed runs;
  the **median** real time is recorded.  Medians because single runs on
  shared machines carry multi-10% load noise.
* `monitored` cases attach the full progress indicator; both engines pay
  the identical per-row accounting, which compresses their ratio — that
  compression is itself a result (batching does not cheat on accounting).

## Results

| case | row (ms) | batch (ms) | speedup | notes |
|---|---:|---:|---:|---|
{chr(10).join(rows)}

**Suite geometric-mean speedup: {suite.geomean_speedup:.2f}x**

## Targets

* **≥{GEOMEAN_FLOOR:.0f}x suite geomean** — met
  ({suite.geomean_speedup:.2f}x).
{scan_line}
* **Zero regression budget**: no case may run more than
  {REGRESSION_BUDGET:.0%} slower under the batch engine — met (every
  case is faster).

## Regenerating

```sh
PYTHONPATH=src python -m repro.bench perf --write-baseline
```

rewrites `benchmarks/results/perf_baseline.json` (the machine-readable
form of this table) and this sheet.  CI re-times a smoke subset on every
PR and gates with

```sh
PYTHONPATH=src python -m repro.bench perfcheck --tolerance {DEFAULT_TOLERANCE}
```

which compares fresh *speedups* (not absolute times — machine speed
cancels out of the row/batch ratio) against the committed baseline.
"""
