"""CLI for the real-time performance suite.

Two subcommands::

    python -m repro.bench perf [--write-baseline] [--runs N] [--cases a,b]
    python -m repro.bench perfcheck [--tolerance F] [--runs N] [--cases a,b]

``perf`` times the suite (row vs. batch engine) and prints the table;
with ``--write-baseline`` it also rewrites
``benchmarks/results/perf_baseline.json`` and ``benchmarks/PERF_SHEET.md``.

``perfcheck`` is the CI gate: it re-times the suite (or a ``--cases``
smoke subset), compares fresh speedups against the committed baseline
within ``--tolerance``, checks the absolute floors, and exits non-zero
on any violation.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench import perf


def _parse_cases(text):
    if not text:
        return None
    return [name.strip() for name in text.split(",") if name.strip()]


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--scale",
        type=float,
        default=perf.DEFAULT_SCALE,
        help=f"TPC-R scale factor (default {perf.DEFAULT_SCALE})",
    )
    sub.add_argument(
        "--runs",
        type=int,
        default=perf.DEFAULT_RUNS,
        help=f"timed runs per case+engine (default {perf.DEFAULT_RUNS})",
    )
    sub.add_argument(
        "--cases",
        type=_parse_cases,
        default=None,
        metavar="A,B,...",
        help="comma-separated case subset (default: the full registry)",
    )
    sub.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="also write the fresh timings as JSON to FILE",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="real-time engine performance suite",
    )
    subs = parser.add_subparsers(dest="command", required=True)

    run_p = subs.add_parser("perf", help="time the suite and print the table")
    _add_common(run_p)
    run_p.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite benchmarks/results/perf_baseline.json and "
        "benchmarks/PERF_SHEET.md from this run (full registry only)",
    )

    check_p = subs.add_parser(
        "perfcheck", help="re-time and gate against the committed baseline"
    )
    _add_common(check_p)
    check_p.add_argument(
        "--tolerance",
        type=float,
        default=perf.DEFAULT_TOLERANCE,
        help="fractional speedup tolerance vs. the baseline "
        f"(default {perf.DEFAULT_TOLERANCE})",
    )
    check_p.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help=f"baseline JSON (default {perf.BASELINE_PATH})",
    )

    args = parser.parse_args(argv)
    try:
        cases = perf.select_cases(args.cases)
    except ValueError as exc:
        parser.error(str(exc))

    suite = perf.run_suite(
        cases=cases,
        scale=args.scale,
        runs=args.runs,
        progress=lambda msg: print(msg, file=sys.stderr),
    )
    print(perf.render_suite(suite))

    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(perf.suite_to_doc(suite), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.command == "perf":
        if args.write_baseline:
            if args.cases:
                parser.error("--write-baseline requires the full registry")
            path = perf.write_baseline(suite)
            perf.SHEET_PATH.write_text(perf.render_sheet(suite))
            print(f"wrote {path}")
            print(f"wrote {perf.SHEET_PATH}")
            problems = perf.check_suite(suite)
            for p in problems:
                print(f"WARNING: {p}")
        return 0

    # perfcheck
    baseline = perf.load_baseline(args.baseline)
    problems = perf.compare_to_baseline(
        suite, baseline, tolerance=args.tolerance
    )
    # Absolute floors apply (with the same noise tolerance) only when the
    # full registry ran; a --cases smoke subset skews the geomean.
    if not args.cases:
        scaled_geo = perf.GEOMEAN_FLOOR * (1.0 - args.tolerance)
        if suite.geomean_speedup < scaled_geo:
            problems.append(
                f"geomean {suite.geomean_speedup:.2f}x below the absolute "
                f"{perf.GEOMEAN_FLOOR:.1f}x floor - {args.tolerance:.0%} "
                f"tolerance"
            )
    for problem in problems:
        print(f"FAIL: {problem}")
    print(f"perf gate: {'FAIL' if problems else 'PASS'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
