"""Command-line interface: ``python -m repro``.

Subcommands:

* ``demo`` — run one of the paper's queries (Q1–Q5) with a live progress
  display, optionally under I/O or CPU interference, and print the
  per-segment breakdown at the end.
* ``sql`` — run an arbitrary SQL statement against the generated TPC-R
  data set with progress monitoring.
* ``figures`` — regenerate a figure's series straight to stdout.

Examples::

    python -m repro demo --query Q2 --interference io
    python -m repro sql "select count(*) from lineitem" --scale 0.005
    python -m repro figures --query Q2
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import render_table
from repro.bench.harness import run_experiment
from repro.config import SystemConfig
from repro.core.units import format_duration
from repro.planner.explain import explain
from repro.sim.load import LoadProfile
from repro.workloads import correlated, queries, tpcr


def _build_db(args, for_query: str | None = None):
    config = SystemConfig(work_mem_pages=args.work_mem)
    builder = correlated if for_query == "Q3" else tpcr
    return builder.build_database(scale=args.scale, config=config)


def _load_profile(kind: str):
    if kind == "io":
        return LoadProfile.file_copy(120.0, 400.0, slowdown=3.0)
    if kind == "cpu":
        return LoadProfile.cpu_hog(120.0, slowdown=2.5)
    return None


def cmd_demo(args) -> int:
    """Run one paper query with live progress and a segment breakdown."""
    name = args.query.upper()
    if name not in queries.PAPER_QUERIES:
        print(f"unknown query {args.query!r}; choose from Q1..Q5", file=sys.stderr)
        return 2
    db = _build_db(args, for_query=name)
    load = _load_profile(args.interference)
    if load is not None:
        db.set_load(load)

    planned = db.prepare(queries.PAPER_QUERIES[name])
    print(f"Plan for {name}:")
    print(explain(planned.root))
    print("\nRunning with progress indicator:\n")
    handle = db.connect().submit(
        planned,
        name=name,
        keep_rows=False,
        on_report=lambda r: print("  " + r.format_line()),
    )
    monitored = handle.monitored()
    print(
        f"\n{name} finished: {monitored.result.row_count} rows in "
        f"{format_duration(monitored.log.total_elapsed)} (virtual)."
    )
    print("\nSegment breakdown:")
    print(monitored.indicator.describe_segments())
    return 0


def cmd_sql(args) -> int:
    """Run arbitrary SQL against the generated data set, monitored."""
    db = _build_db(args)
    handle = db.connect().submit(
        args.statement,
        keep_rows=True,
        max_rows=args.max_rows,
        on_report=lambda r: print("  " + r.format_line()),
    )
    result = handle.result()
    print(f"\n{result.row_count} row(s); showing up to {args.max_rows}:")
    print("  " + " | ".join(result.names))
    for row in result.rows:
        print("  " + " | ".join(str(v) for v in row))
    return 0


def cmd_figures(args) -> int:
    """Print one query's full figure series as an aligned table."""
    name = args.query.upper()
    if name not in queries.PAPER_QUERIES:
        print(f"unknown query {args.query!r}; choose from Q1..Q5", file=sys.stderr)
        return 2
    db = _build_db(args, for_query=name)
    result = run_experiment(
        name, db, queries.PAPER_QUERIES[name], load=_load_profile(args.interference)
    )
    print(
        render_table(
            {
                "estimated cost (U)": result.estimated_cost_series(),
                "speed (U/s)": result.speed_series(),
                "remaining est (s)": result.remaining_series(),
                "remaining actual (s)": result.actual_remaining_series(),
                "completed %": result.percent_series(),
            },
            title=f"{name} series (scale {args.scale}, "
            f"interference={args.interference})",
        )
    )
    return 0


def cmd_reproduce(args) -> int:
    """Run every Section 5 experiment and print the summary table."""
    from repro.bench.reproduce import render_summary, run_all

    config = SystemConfig(work_mem_pages=args.work_mem)
    rows = run_all(scale=args.scale, config=config, progress=print)
    print()
    print(render_summary(rows, args.scale))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Progress-indicator reproduction (SIGMOD 2004) CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--scale", type=float, default=0.005,
                       help="TPC-R scale factor (default 0.005)")
        p.add_argument("--work-mem", type=int, default=24,
                       help="work_mem in pages (default 24)")

    demo = sub.add_parser("demo", help="run one of the paper's queries")
    demo.add_argument("--query", default="Q2", help="Q1..Q5 (default Q2)")
    demo.add_argument(
        "--interference", choices=["none", "io", "cpu"], default="none"
    )
    common(demo)
    demo.set_defaults(func=cmd_demo)

    sql = sub.add_parser("sql", help="run arbitrary SQL with monitoring")
    sql.add_argument("statement", help="a SELECT statement")
    sql.add_argument("--max-rows", type=int, default=20)
    common(sql)
    sql.set_defaults(func=cmd_sql)

    figures = sub.add_parser("figures", help="print one query's figure series")
    figures.add_argument("--query", default="Q2")
    figures.add_argument(
        "--interference", choices=["none", "io", "cpu"], default="none"
    )
    common(figures)
    figures.set_defaults(func=cmd_figures)

    reproduce = sub.add_parser(
        "reproduce", help="run every Section 5 experiment and summarize"
    )
    reproduce.add_argument("--scale", type=float, default=0.01)
    reproduce.add_argument("--work-mem", type=int, default=24)
    reproduce.set_defaults(func=cmd_reproduce)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
