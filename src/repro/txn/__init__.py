"""Minimal transactions with undo logging.

Exists to make the paper's Section 2 rollback integration concrete: "[15]
proposed a method for monitoring the progress of long-running rollback
operations ... This method can be integrated into the progress indicators
for RDBMSs."  A :class:`~repro.txn.transaction.Transaction` applies
updates/deletes while writing undo records; rolling it back replays the
records in reverse while a :class:`~repro.core.rollback.RollbackMonitor`
estimates the remaining rollback time from the observed undo speed —
the same window-speed machinery the query indicator uses.
"""

from repro.txn.transaction import Transaction, UndoRecord

__all__ = ["Transaction", "UndoRecord"]
