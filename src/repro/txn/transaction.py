"""Update/delete transactions over heap tables, with monitored rollback.

Scope is deliberately small — enough substrate for the rollback-progress
story, not a full transaction manager: one transaction at a time, no
concurrency control, physical undo records.  DML invalidates a table's
indexes (they address rows by position) and marks its statistics stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.rollback import RollbackMonitor
from repro.database import Database
from repro.errors import ExecutionError
from repro.sim.load import CPU, IO


@dataclass(frozen=True)
class UndoRecord:
    """One physical undo record.

    ``kind`` is "update" (restore ``row`` at slot) or "delete" (re-insert
    ``row`` at slot).  Records are replayed strictly last-to-first, so each
    restore sees exactly the state the operation left behind.
    """

    kind: str
    table: str
    page_no: int
    slot: int
    row: tuple


class Transaction:
    """A single-writer transaction with undo-based rollback."""

    #: Undo records per simulated log page (for I/O charging).
    _RECORDS_PER_LOG_PAGE = 64

    def __init__(self, db: Database):
        self._db = db
        self._undo: list[UndoRecord] = []
        self._state = "active"

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def undo_records(self) -> int:
        return len(self._undo)

    def _require_active(self) -> None:
        if self._state != "active":
            raise ExecutionError(f"transaction is {self._state}, not active")

    def _charge_row(self) -> None:
        cost = self._db.config.cost
        self._db.clock.advance(cost.cpu_tuple + cost.cpu_operator, CPU)

    def _charge_log(self) -> None:
        cost = self._db.config.cost
        self._db.clock.advance(cost.cpu_tuple, CPU)
        if len(self._undo) % self._RECORDS_PER_LOG_PAGE == 0:
            self._db.clock.advance(cost.page_write, IO)

    def _charge_page_write(self) -> None:
        self._db.clock.advance(self._db.config.cost.page_write, IO)

    # ------------------------------------------------------------------
    # DML

    def update(
        self,
        table_name: str,
        set_values: dict[str, Callable[[tuple], Any]],
        where: Optional[Callable[[tuple], bool]] = None,
    ) -> int:
        """Update matching rows; returns the number updated.

        ``set_values`` maps column names to ``row -> new value`` callables
        (pass ``lambda row: constant`` for plain assignments).
        """
        self._require_active()
        table = self._db.catalog.get_table(table_name)
        schema = table.heap.schema
        slots = {name: schema.index_of(name) for name in set_values}
        updated = 0
        for page_no, page in enumerate(table.heap.iter_pages()):
            dirty = False
            for slot, row in enumerate(page.rows):
                self._charge_row()
                if where is not None and not where(row):
                    continue
                new_row = list(row)
                for name, fn in set_values.items():
                    new_row[slots[name]] = fn(row)
                new_tuple = tuple(new_row)
                if new_tuple == row:
                    continue
                self._undo.append(
                    UndoRecord("update", table.name, page_no, slot, row)
                )
                self._charge_log()
                page.bytes_used += schema.row_width(new_tuple) - schema.row_width(row)
                page.rows[slot] = new_tuple
                table.heap.total_bytes += (
                    schema.row_width(new_tuple) - schema.row_width(row)
                )
                dirty = True
                updated += 1
            if dirty:
                self._charge_page_write()
        if updated:
            self._mark_modified(table)
        return updated

    def delete(
        self,
        table_name: str,
        where: Optional[Callable[[tuple], bool]] = None,
    ) -> int:
        """Delete matching rows; returns the number deleted."""
        self._require_active()
        table = self._db.catalog.get_table(table_name)
        schema = table.heap.schema
        deleted = 0
        for page_no, page in enumerate(table.heap.iter_pages()):
            victims = []
            for slot, row in enumerate(page.rows):
                self._charge_row()
                if where is None or where(row):
                    victims.append(slot)
            if not victims:
                continue
            # Remove in descending slot order (and log in that order) so
            # reverse-order undo re-inserts ascending, reconstructing the
            # original layout exactly.
            for slot in reversed(victims):
                row = page.rows[slot]
                self._undo.append(
                    UndoRecord("delete", table.name, page_no, slot, row)
                )
                self._charge_log()
                del page.rows[slot]
                width = schema.row_width(row)
                page.bytes_used -= width
                table.heap.total_bytes -= width
                table.heap.num_tuples -= 1
                deleted += 1
            self._charge_page_write()
        if deleted:
            self._mark_modified(table)
        return deleted

    # ------------------------------------------------------------------
    # termination

    def commit(self) -> None:
        """Make the transaction's changes permanent and drop the undo log."""
        self._require_active()
        self._undo.clear()
        self._state = "committed"

    def rollback(
        self,
        monitor: Optional[RollbackMonitor] = None,
        on_record: Optional[Callable[[RollbackMonitor], None]] = None,
    ) -> RollbackMonitor:
        """Undo everything, reporting progress through a rollback monitor.

        Returns the monitor (a fresh one is created when none is passed),
        whose remaining-time estimates evolve as records are undone —
        the [15] technique the paper says integrates with its indicators.
        """
        self._require_active()
        if monitor is None:
            monitor = RollbackMonitor(len(self._undo), self._db.clock)
        cost = self._db.config.cost
        touched_pages: set[tuple[str, int]] = set()
        for record in reversed(self._undo):
            table = self._db.catalog.get_table(record.table)
            page = table.heap.handle.pages[record.page_no]
            schema = table.heap.schema
            width = schema.row_width(record.row)
            self._db.clock.advance(cost.cpu_tuple + cost.cpu_operator, CPU)
            if record.kind == "update":
                old = page.rows[record.slot]
                page.bytes_used += width - schema.row_width(old)
                table.heap.total_bytes += width - schema.row_width(old)
                page.rows[record.slot] = record.row
            elif record.kind == "delete":
                page.rows.insert(record.slot, record.row)
                page.bytes_used += width
                table.heap.total_bytes += width
                table.heap.num_tuples += 1
            else:
                raise ExecutionError(f"unknown undo kind {record.kind!r}")
            key = (record.table, record.page_no)
            if key not in touched_pages:
                touched_pages.add(key)
                self._db.clock.advance(cost.page_write, IO)
            monitor.record_rolled_back(1)
            if on_record is not None:
                on_record(monitor)
        self._undo.clear()
        self._state = "rolled back"
        return monitor

    # ------------------------------------------------------------------

    def _mark_modified(self, table) -> None:
        """DML side effects: positional indexes and statistics go stale."""
        table.indexes.clear()
        table.statistics = None
        self._db.buffer_pool.invalidate_file(table.heap.handle)


def rows_matching(
    db: Database, table_name: str, where: Callable[[tuple], bool]
) -> list[tuple]:
    """Convenience: collect rows of a table matching a Python predicate."""
    return [
        row
        for row in db.catalog.get_table(table_name).heap.iter_rows()
        if where(row)
    ]
