"""repro — a reproduction of "Toward a Progress Indicator for Database
Queries" (Luo, Naughton, Ellmann, Watzke; SIGMOD 2004).

The package contains a complete simulated RDBMS substrate (storage, buffer
pool, statistics, SQL front end, cost-based optimizer, volcano executor on
a virtual clock) and, on top of it, the paper's contribution: a query
progress indicator that segments plans at blocking operators, measures
work in pages of bytes processed (U), continuously refines the optimizer's
cost estimate from run-time observations, and converts remaining U to time
through the observed execution speed.

Quick start::

    from repro import Database, SystemConfig
    from repro.workloads import tpcr

    db = tpcr.build_database(scale=0.01)
    session = db.connect()
    handle = session.submit("select * from lineitem")
    result = handle.result()
    for report in handle.log:
        print(report.format_line())

Several ``submit`` calls on one session run interleaved on the shared
virtual clock — each with its own progress indicator (see
:mod:`repro.sched` and :mod:`repro.api`).
"""

from repro.api import QueryHandle, Session
from repro.config import (
    CostModelConfig,
    PlannerConfig,
    ProgressConfig,
    SystemConfig,
)
from repro.core.indicator import ProgressIndicator
from repro.core.report import ProgressReport
from repro.database import Database, MonitoredResult
from repro.errors import ReproError
from repro.sim.load import CPU, IO, InterferenceWindow, LoadProfile

__version__ = "1.1.0"

__all__ = [
    "Database",
    "MonitoredResult",
    "Session",
    "QueryHandle",
    "SystemConfig",
    "CostModelConfig",
    "PlannerConfig",
    "ProgressConfig",
    "ProgressIndicator",
    "ProgressReport",
    "LoadProfile",
    "InterferenceWindow",
    "IO",
    "CPU",
    "ReproError",
    "__version__",
]
