"""The paper's five test queries (Section 5.1), verbatim.

The only dialect difference: the paper writes ``absolute(...)``, which we
register as a SQL function exactly so these queries parse unchanged.  Its
predicates (``absolute(x) > 0``) are always true but unestimatable, forcing
PostgreSQL's — and our — default selectivity of 1/3.
"""

from __future__ import annotations

#: Q1: a pure table scan; the optimizer's estimate is accurate (Figures 4-7).
Q1 = "select * from lineitem"

#: Q2: two joins with one unestimatable lineitem predicate (Figures 9-16).
Q2 = """
select c.custkey, c.acctbal, o.orderkey, o.totalprice,
       l.discount, l.extendedprice
from customer c, orders o, lineitem l
where c.custkey = o.custkey
  and o.orderkey = l.orderkey
  and absolute(l.partkey) > 0
"""

#: Q3: a self-join whose first join cardinality is wrecked by correlation
#: between customer.nationkey and the per-customer order count (Figure 17).
Q3 = """
select c.custkey, c.acctbal, o1.orderkey, o1.totalprice, o2.totalprice
from customer c, orders o1, orders o2
where c.custkey = o1.custkey
  and o1.orderkey = o2.orderkey
  and c.nationkey < 10
"""

#: Q4: Q2 plus a second unestimatable predicate on orders, so *both* join
#: cost estimates are wrong and the indicator adjusts twice (Figure 18).
Q4 = """
select c.custkey, c.acctbal, o.orderkey, o.totalprice, o.shippriority,
       l.discount, l.extendedprice
from customer c, orders o, lineitem l
where c.custkey = o.custkey
  and o.orderkey = l.orderkey
  and absolute(o.totalprice) > 0
  and absolute(l.partkey) > 0
"""

#: Q5: a CPU-bound nested-loops join over the two customer subsets
#: (Figures 19-20).
Q5 = """
select *
from customer_subset1 c1, customer_subset2 c2
where c1.custkey <> c2.custkey
"""

PAPER_QUERIES: dict[str, str] = {
    "Q1": Q1,
    "Q2": Q2,
    "Q3": Q3,
    "Q4": Q4,
    "Q5": Q5,
}
