"""Workload generators and the paper's test queries.

:mod:`repro.workloads.tpcr` generates the TPC-R-schema data set of the
paper's Table 1 (scaled), :mod:`repro.workloads.correlated` produces the
Q3 variant with nationkey-correlated order counts, and
:mod:`repro.workloads.queries` holds queries Q1-Q5 verbatim (modulo our
SQL dialect).
"""

from repro.workloads.queries import Q1, Q2, Q3, Q4, Q5, PAPER_QUERIES
from repro.workloads.tpcr import TpcrTables, build_database, generate_tables

__all__ = [
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "Q5",
    "PAPER_QUERIES",
    "build_database",
    "generate_tables",
    "TpcrTables",
]
