"""Scaled TPC-R-schema data generator (the paper's Table 1 data set).

The paper's test data (Section 5.1):

=================  ==========  ==========
relation           tuples      total size
=================  ==========  ==========
customer           0.15M       23 MB
orders             1.5M        114 MB
lineitem           6M          755 MB
customer_subset1   3K          0.46 MB
customer_subset2   3K          0.46 MB
=================  ==========  ==========

with, on average, 10 orders per customer (on ``custkey``) and 4 lineitems
per order (on ``orderkey``).  ``scale`` multiplies the big relations'
cardinalities; the subsets scale with ``subset_rows`` separately because
the Q5 nested-loops join is quadratic in them.

Generation is deterministic per seed and bulk-loads without charging
simulated I/O (the data exists before the experiment begins).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.config import SystemConfig
from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import FLOAT, INTEGER, string

#: Paper cardinalities at scale 1.0.
CUSTOMER_BASE = 150_000
ORDERS_PER_CUSTOMER = 10
LINEITEMS_PER_ORDER = 4
SUBSET_BASE = 3_000

NATION_COUNT = 25
MARKET_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
ORDER_STATUSES = ("F", "O", "P")
RETURN_FLAGS = ("A", "N", "R")
LINE_STATUSES = ("F", "O")


CUSTOMER_SCHEMA = Schema(
    [
        Column("custkey", INTEGER),
        Column("name", string(25)),
        Column("address", string(40)),
        Column("nationkey", INTEGER),
        Column("phone", string(15)),
        Column("acctbal", FLOAT),
        Column("mktsegment", string(10)),
    ]
)

ORDERS_SCHEMA = Schema(
    [
        Column("orderkey", INTEGER),
        Column("custkey", INTEGER),
        Column("orderstatus", string(1)),
        Column("totalprice", FLOAT),
        Column("orderdate", INTEGER),
        Column("shippriority", INTEGER),
    ]
)

LINEITEM_SCHEMA = Schema(
    [
        Column("orderkey", INTEGER),
        Column("partkey", INTEGER),
        Column("suppkey", INTEGER),
        Column("linenumber", INTEGER),
        Column("quantity", FLOAT),
        Column("extendedprice", FLOAT),
        Column("discount", FLOAT),
        Column("tax", FLOAT),
        Column("returnflag", string(1)),
        Column("linestatus", string(1)),
    ]
)


@dataclass
class TpcrTables:
    """Generated rows for the five relations."""

    customer: list[tuple]
    orders: list[tuple]
    lineitem: list[tuple]
    customer_subset1: list[tuple]
    customer_subset2: list[tuple]

    def row_counts(self) -> dict[str, int]:
        """Relation name -> generated row count (the Table 1 cardinalities)."""
        return {
            "customer": len(self.customer),
            "orders": len(self.orders),
            "lineitem": len(self.lineitem),
            "customer_subset1": len(self.customer_subset1),
            "customer_subset2": len(self.customer_subset2),
        }


def _customer_row(rng: random.Random, custkey: int) -> tuple:
    return (
        custkey,
        f"Customer#{custkey:09d}",
        f"{rng.randint(1, 9999)} {'x' * rng.randint(8, 24)} Street",
        rng.randrange(NATION_COUNT),
        f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
        round(rng.uniform(-999.99, 9999.99), 2),
        rng.choice(MARKET_SEGMENTS),
    )


def generate_customers(num: int, rng: random.Random, key_offset: int = 0) -> list[tuple]:
    """Customer rows with unique custkeys starting at ``key_offset + 1``."""
    return [_customer_row(rng, key_offset + i + 1) for i in range(num)]


def generate_orders(
    customers: list[tuple],
    rng: random.Random,
    orders_per_customer_fn=None,
) -> list[tuple]:
    """Orders matching customers on custkey.

    ``orders_per_customer_fn(customer_row) -> int`` controls the fan-out;
    the default is the paper's flat 10.  The correlated Q3 data set passes
    a nationkey-dependent function here.
    """
    if orders_per_customer_fn is None:
        orders_per_customer_fn = lambda _row: ORDERS_PER_CUSTOMER  # noqa: E731
    orders = []
    orderkey = 0
    for customer in customers:
        for _ in range(orders_per_customer_fn(customer)):
            orderkey += 1
            orders.append(
                (
                    orderkey,
                    customer[0],
                    rng.choice(ORDER_STATUSES),
                    round(rng.uniform(900.0, 500_000.0), 2),
                    rng.randint(8_000, 11_000),  # day number
                    rng.randint(0, 1),
                )
            )
    return orders


def generate_lineitems(orders: list[tuple], rng: random.Random) -> list[tuple]:
    """Lineitems matching orders on orderkey (4 per order)."""
    items = []
    for order in orders:
        orderkey = order[0]
        for linenumber in range(1, LINEITEMS_PER_ORDER + 1):
            price = round(rng.uniform(900.0, 100_000.0), 2)
            items.append(
                (
                    orderkey,
                    rng.randint(1, 200_000),
                    rng.randint(1, 10_000),
                    linenumber,
                    float(rng.randint(1, 50)),
                    price,
                    round(rng.uniform(0.0, 0.10), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    rng.choice(RETURN_FLAGS),
                    rng.choice(LINE_STATUSES),
                )
            )
    return items


def generate_tables(
    scale: float = 0.01,
    subset_rows: Optional[int] = None,
    seed: int = 42,
    orders_per_customer_fn=None,
) -> TpcrTables:
    """Generate the five relations of Table 1 at the given scale."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = random.Random(seed)
    num_customers = max(1, round(CUSTOMER_BASE * scale))
    if subset_rows is None:
        # Q5 is quadratic in the subsets; scale them gently (x sqrt-ish of
        # the main scale) so the paper's fixed 3K stays tractable in Python.
        subset_rows = max(50, round(SUBSET_BASE * scale * 20))

    customers = generate_customers(num_customers, rng)
    orders = generate_orders(customers, rng, orders_per_customer_fn)
    lineitems = generate_lineitems(orders, rng)
    subset1 = generate_customers(subset_rows, rng, key_offset=1_000_000)
    subset2 = generate_customers(subset_rows, rng, key_offset=2_000_000)
    return TpcrTables(customers, orders, lineitems, subset1, subset2)


def build_database(
    scale: float = 0.01,
    config: Optional[SystemConfig] = None,
    subset_rows: Optional[int] = None,
    seed: int = 42,
    orders_per_customer_fn=None,
    with_indexes: bool = False,
    analyze: bool = True,
) -> Database:
    """Create a loaded, ANALYZEd database instance for experiments."""
    tables = generate_tables(
        scale=scale,
        subset_rows=subset_rows,
        seed=seed,
        orders_per_customer_fn=orders_per_customer_fn,
    )
    db = Database(config=config)
    db.create_table("customer", CUSTOMER_SCHEMA, tables.customer)
    db.create_table("orders", ORDERS_SCHEMA, tables.orders)
    db.create_table("lineitem", LINEITEM_SCHEMA, tables.lineitem)
    db.create_table("customer_subset1", CUSTOMER_SCHEMA, tables.customer_subset1)
    db.create_table("customer_subset2", CUSTOMER_SCHEMA, tables.customer_subset2)
    if with_indexes:
        db.create_index("customer", "custkey")
        db.create_index("orders", "orderkey")
        db.create_index("orders", "custkey")
        db.create_index("lineitem", "orderkey")
    if analyze:
        db.analyze()
    return db
