"""The correlated data set of the paper's Q3 test (Section 5.4).

The orders relation is regenerated so the number of orders per customer
depends on the customer's nationkey:

* nationkey in [0, 9]   -> r = 20 orders,
* nationkey in [10, 19] -> r = 0 orders,
* nationkey in [20, 24] -> r = 10 orders.

The expected total stays 10 orders per customer (0.4*20 + 0.4*0 + 0.2*10),
so table-level statistics look identical to the uniform data set — but the
``c.nationkey < 10`` filter of Q3 selects exactly the heavy customers,
which the optimizer's independence assumption cannot see.  The progress
indicator detects the resulting join-cardinality underestimate at run time
(Figure 17).
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig
from repro.database import Database
from repro.workloads import tpcr


def correlated_orders_per_customer(customer_row: tuple) -> int:
    """The paper's r(nationkey) fan-out function."""
    nationkey = customer_row[3]
    if nationkey < 10:
        return 20
    if nationkey < 20:
        return 0
    return 10


def build_database(
    scale: float = 0.01,
    config: Optional[SystemConfig] = None,
    subset_rows: Optional[int] = None,
    seed: int = 42,
    with_indexes: bool = False,
) -> Database:
    """A TPC-R database whose orders correlate with customer.nationkey."""
    return tpcr.build_database(
        scale=scale,
        config=config,
        subset_rows=subset_rows,
        seed=seed,
        orders_per_customer_fn=correlated_orders_per_customer,
        with_indexes=with_indexes,
    )
