"""The parameterized workload grid: hundreds of named scenario variants.

The paper evaluates its estimator on five hand-picked queries; König et
al. ("A Statistical Approach Towards Robust Progress Estimation") show
that estimator quality is workload-dependent and must be measured across
a broad query population.  This module is that population: a
deterministic cross product of four axes —

* **scale** — TPC-R scale factor (``xs``/``s``/``m``), sized so the full
  tier-1 subset runs in CI time on the simulated engine;
* **skew** — the orders-per-customer fan-out as a function of
  ``customer.nationkey``, extending :mod:`repro.workloads.correlated`:
  ``uniform`` (the paper's flat 10), ``paper`` (the Figure 17
  correlation, 20/0/10), ``mild`` (14/6/10), and ``hot`` (one nation
  holds ~40% of all orders).  Every profile keeps the *expected*
  fan-out at 10, so table-level statistics look identical and only the
  run-time refinement can tell the datasets apart;
* **shape** — join shape, from a single scan through TPC-DS-style
  multi-join variants: ``scan``, ``sort`` (external sort), ``agg``
  (blocking aggregation over a join), ``join2``, ``join3`` (the Q2
  shape), ``selfjoin`` (the Q3 shape), and ``multi4`` (a 4-relation
  star-ish join);
* **selectivity** — the parameterized predicate each shape carries:
  ``full`` (~1.0), ``half`` (~0.5), ``tenth`` (~0.1), and ``unknown``
  (an ``absolute(...) > 0`` predicate that is always true but
  unestimatable, forcing the optimizer's 1/3 default — the paper's
  Section 5.3.1 error injection).

Axis values multiply to :func:`enumerate_grid`'s 336 variants, each with
a stable name like ``s-paper-join3-tenth``.  :func:`tier1_grid` is the
curated ~40-variant subset that CI scores on every PR (every axis value
appears; biased toward the small scales).  Variants sharing a dataset
cell (scale × skew) report the same :attr:`Variant.dataset_key` so a
runner can build each database once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.config import SystemConfig
from repro.database import Database
from repro.workloads import tpcr
from repro.workloads.correlated import correlated_orders_per_customer

#: Deterministic data-generation seed shared by every grid dataset (the
#: axes, not the seed, are what distinguish cells).
GRID_SEED = 42

# ----------------------------------------------------------------------
# axis: scale

#: Scale-factor axis.  Sized for the simulated engine: ``xs`` runs a
#: variant in well under a second, ``m`` in a few seconds.
SCALES: dict[str, float] = {
    "xs": 0.002,
    "s": 0.004,
    "m": 0.008,
}

# ----------------------------------------------------------------------
# axis: skew (orders-per-customer as a function of nationkey)


def _uniform(row: tuple) -> int:
    return tpcr.ORDERS_PER_CUSTOMER


def _mild(row: tuple) -> int:
    # E = 0.4*14 + 0.4*6 + 0.2*10 = 10: statistics-identical to uniform.
    nationkey = row[3]
    if nationkey < 10:
        return 14
    if nationkey < 20:
        return 6
    return 10


def _hot(row: tuple) -> int:
    # One hot nation holds ~40% of all orders; E = (106 + 24*6)/25 = 10.
    return 106 if row[3] == 0 else 6


#: Skew axis: profile name -> orders_per_customer_fn.  Every profile has
#: expected fan-out 10, so ANALYZE sees identical table cardinalities.
SKEWS: dict[str, Callable[[tuple], int]] = {
    "uniform": _uniform,
    "paper": correlated_orders_per_customer,
    "mild": _mild,
    "hot": _hot,
}

# ----------------------------------------------------------------------
# axis: selectivity

#: Selectivity axis: level name -> target selectivity (None = the
#: unestimatable ``absolute(...)`` predicate, actual ~1.0, estimated 1/3).
SELECTIVITIES: dict[str, Optional[float]] = {
    "full": 1.0,
    "half": 0.5,
    "tenth": 0.1,
    "unknown": None,
}

#: Predicate families, one per column a shape filters on.  Values were
#: chosen against the generators: ``lineitem.quantity`` is uniform on
#: [1, 50], ``orders.orderdate`` uniform on [8000, 11000], and
#: ``customer.nationkey`` uniform on [0, 24].
_PREDICATES: dict[str, dict[str, str]] = {
    "quantity": {
        "full": "l.quantity <= 50.0",
        "half": "l.quantity <= 25.0",
        "tenth": "l.quantity <= 5.0",
        "unknown": "absolute(l.quantity) > 0",
    },
    "orderdate": {
        "full": "o.orderdate <= 11000",
        "half": "o.orderdate < 9500",
        "tenth": "o.orderdate < 8300",
        "unknown": "absolute(o.orderdate) > 0",
    },
    "nationkey": {
        "full": "c.nationkey < 25",
        "half": "c.nationkey < 13",
        "tenth": "c.nationkey < 3",
        # nationkey can be 0 (absolute(0) > 0 is false); custkey starts at 1.
        "unknown": "absolute(c.custkey) > 0",
    },
}

# ----------------------------------------------------------------------
# axis: join shape


@dataclass(frozen=True)
class ShapeSpec:
    """One join shape: a SQL template with a ``{pred}`` slot."""

    key: str
    #: Number of relation instances in the FROM list.
    relations: int
    #: Whether the plan contains a blocking operator (sort/aggregate).
    blocking: bool
    #: SQL template; ``{pred}`` is replaced by the selectivity predicate.
    template: str
    #: Which predicate family the ``{pred}`` slot draws from.
    pred_family: str


SHAPES: dict[str, ShapeSpec] = {
    spec.key: spec
    for spec in (
        ShapeSpec(
            key="scan",
            relations=1,
            blocking=False,
            template="select * from lineitem l where {pred}",
            pred_family="quantity",
        ),
        ShapeSpec(
            key="sort",
            relations=1,
            blocking=True,
            template=(
                "select * from orders o where {pred} order by o.totalprice"
            ),
            pred_family="orderdate",
        ),
        ShapeSpec(
            key="agg",
            relations=2,
            blocking=True,
            template=(
                "select o.custkey, count(*) from orders o, lineitem l "
                "where o.orderkey = l.orderkey and {pred} "
                "group by o.custkey"
            ),
            pred_family="orderdate",
        ),
        ShapeSpec(
            key="join2",
            relations=2,
            blocking=False,
            template=(
                "select c.custkey, c.acctbal, o.orderkey, o.totalprice "
                "from customer c, orders o "
                "where c.custkey = o.custkey and {pred}"
            ),
            pred_family="orderdate",
        ),
        ShapeSpec(
            key="join3",
            relations=3,
            blocking=False,
            template=(
                "select c.custkey, c.acctbal, o.orderkey, o.totalprice, "
                "l.discount, l.extendedprice "
                "from customer c, orders o, lineitem l "
                "where c.custkey = o.custkey and o.orderkey = l.orderkey "
                "and {pred}"
            ),
            pred_family="orderdate",
        ),
        ShapeSpec(
            key="selfjoin",
            relations=3,
            blocking=False,
            template=(
                "select c.custkey, c.acctbal, o1.orderkey, o1.totalprice, "
                "o2.totalprice "
                "from customer c, orders o1, orders o2 "
                "where c.custkey = o1.custkey "
                "and o1.orderkey = o2.orderkey and {pred}"
            ),
            pred_family="nationkey",
        ),
        ShapeSpec(
            key="multi4",
            relations=4,
            blocking=False,
            template=(
                "select c.custkey, o.orderkey, l.extendedprice, c2.custkey "
                "from customer c, orders o, lineitem l, customer c2 "
                "where c.custkey = o.custkey and o.orderkey = l.orderkey "
                "and c.nationkey = c2.nationkey and c2.acctbal > 9000.0 "
                "and {pred}"
            ),
            pred_family="orderdate",
        ),
    )
}

# ----------------------------------------------------------------------
# variants


@dataclass(frozen=True)
class Variant:
    """One fully-specified grid cell: axes + the concrete SQL."""

    name: str
    scale_key: str
    scale: float
    skew: str
    shape: str
    selectivity_key: str
    #: Target predicate selectivity; None for the ``unknown`` level.
    selectivity: Optional[float]
    sql: str

    @property
    def dataset_key(self) -> tuple[str, str]:
        """Variants sharing this key run against the same database."""
        return (self.scale_key, self.skew)

    def build_database(self, config: Optional[SystemConfig] = None) -> Database:
        """Build this variant's dataset (see also :func:`build_dataset`)."""
        return build_dataset(self.scale_key, self.skew, config=config)


def build_dataset(
    scale_key: str,
    skew: str,
    config: Optional[SystemConfig] = None,
) -> Database:
    """Build the (scale × skew) dataset one grid cell group shares."""
    return tpcr.build_database(
        scale=SCALES[scale_key],
        config=config,
        seed=GRID_SEED,
        orders_per_customer_fn=SKEWS[skew],
    )


def _make_variant(
    scale_key: str, skew: str, shape_key: str, sel_key: str
) -> Variant:
    shape = SHAPES[shape_key]
    pred = _PREDICATES[shape.pred_family][sel_key]
    return Variant(
        name=f"{scale_key}-{skew}-{shape_key}-{sel_key}",
        scale_key=scale_key,
        scale=SCALES[scale_key],
        skew=skew,
        shape=shape_key,
        selectivity_key=sel_key,
        selectivity=SELECTIVITIES[sel_key],
        sql=shape.template.format(pred=pred),
    )


def enumerate_grid() -> list[Variant]:
    """Every grid variant, in deterministic axis order (336 cells)."""
    return [
        _make_variant(scale_key, skew, shape_key, sel_key)
        for scale_key in SCALES
        for skew in SKEWS
        for shape_key in SHAPES
        for sel_key in SELECTIVITIES
    ]


def variants_by_name() -> dict[str, Variant]:
    """Name -> variant for the full grid."""
    return {v.name: v for v in enumerate_grid()}


# ----------------------------------------------------------------------
# the curated tier-1 subset

#: The ~40-cell subset CI runs on every PR.  Curated, not sampled: every
#: shape × selectivity pair appears once at (xs, uniform); every skew
#: profile and every scale appears in several cells; the slow ``m``-scale
#: cells are limited to cheap shapes.  Order is the scoring order.
TIER1_NAMES: tuple[str, ...] = (
    # full shape × selectivity coverage at the smallest uniform dataset
    "xs-uniform-scan-full",
    "xs-uniform-scan-half",
    "xs-uniform-scan-tenth",
    "xs-uniform-scan-unknown",
    "xs-uniform-sort-full",
    "xs-uniform-sort-half",
    "xs-uniform-sort-tenth",
    "xs-uniform-sort-unknown",
    "xs-uniform-agg-full",
    "xs-uniform-agg-half",
    "xs-uniform-agg-tenth",
    "xs-uniform-agg-unknown",
    "xs-uniform-join2-full",
    "xs-uniform-join2-half",
    "xs-uniform-join2-tenth",
    "xs-uniform-join2-unknown",
    "xs-uniform-join3-full",
    "xs-uniform-join3-half",
    "xs-uniform-join3-tenth",
    "xs-uniform-join3-unknown",
    "xs-uniform-selfjoin-full",
    "xs-uniform-selfjoin-half",
    "xs-uniform-selfjoin-tenth",
    "xs-uniform-selfjoin-unknown",
    "xs-uniform-multi4-full",
    "xs-uniform-multi4-half",
    "xs-uniform-multi4-tenth",
    "xs-uniform-multi4-unknown",
    # skew coverage (the correlation the refinement must detect)
    "xs-paper-selfjoin-tenth",
    "xs-paper-join3-unknown",
    "xs-mild-selfjoin-half",
    "xs-mild-join3-tenth",
    "xs-hot-join2-half",
    "xs-hot-agg-full",
    # scale coverage
    "s-uniform-scan-full",
    "s-uniform-join3-unknown",
    "s-paper-selfjoin-tenth",
    "s-hot-sort-full",
    "m-uniform-join2-half",
    "m-paper-agg-tenth",
)


def tier1_grid() -> list[Variant]:
    """The curated tier-1 subset, resolved against the full grid."""
    by_name = variants_by_name()
    missing = [n for n in TIER1_NAMES if n not in by_name]
    if missing:
        raise ValueError(f"tier-1 names not in the grid: {missing}")
    return [by_name[n] for n in TIER1_NAMES]


def resolve_grid(grid: str) -> list[Variant]:
    """Resolve a grid selector (``tier1`` or ``full``) to its variants."""
    if grid == "tier1":
        return tier1_grid()
    if grid == "full":
        return enumerate_grid()
    raise ValueError(f"unknown grid {grid!r}; choose 'tier1' or 'full'")
