"""Concurrent query execution on one shared virtual clock.

The paper's Section 6 load-management use case presumes "a pool of
running queries" whose indicators a DBA consults.  This module provides
that pool: each query runs in its own worker thread against the shared
database, and a :class:`_ClockGate` installed on the virtual clock
arbitrates *quanta of virtual work* between the workers, round-robin.
Because arbitration happens inside ``VirtualClock.advance`` — underneath
every page I/O and CPU charge — interleaving is fine-grained even through
blocking operators (a hash join's partition pass yields the system every
quantum instead of hogging it).

The model is a fully serialized single-CPU / single-disk machine, like
the paper's one-processor laptop: queries slow each other down simply by
taking turns, so every indicator organically observes contention without
any synthetic load window.  Suspending a query (the DBA "blocking" it)
removes it from the rotation; its indicator keeps ticking, so its
remaining-time estimate degrades while blocked — exactly the feedback
loop the paper envisions.

Scheduling is deterministic: exactly one worker is runnable at any
instant, turns rotate in registration order, and the driving thread only
observes state at quiescent points (`advance` returns once every worker
is parked).  OS thread scheduling affects wall-clock timing only, never
the virtual-time interleaving.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.history import ProgressLog
from repro.core.indicator import ProgressIndicator
from repro.core.report import ProgressReport
from repro.database import Database
from repro.errors import ProgressError
from repro.executor.base import PULSE, ExecContext
from repro.executor.batch import Batch
from repro.executor.runtime import execute
from repro.sim.clock import VirtualClock


class _ClockGate:
    """Round-robin arbiter over quanta of virtual work.

    Worker threads call :meth:`before_charge` (via the clock) and block
    until they hold the turn and the driver has opened the virtual-time
    window.  The driver calls :meth:`run_until` to let the workers consume
    virtual time up to a target instant, returning when all are parked.
    """

    def __init__(self, clock: VirtualClock, quantum: float) -> None:
        if quantum <= 0:
            raise ProgressError("quantum must be positive")
        self._clock = clock
        self._quantum = quantum
        self._cond = threading.Condition()
        self._rotation: list[int] = []  # registered worker thread-ids, in order
        self._suspended: set[int] = set()
        self._turn: Optional[int] = None
        self._used = 0.0
        self._limit: float = 0.0  # workers park once clock.now >= limit
        self._parked: set[int] = set()
        self._names: dict[int, str] = {}

    # -- registration (driver thread) -----------------------------------

    def register(self, thread_id: int, name: str) -> None:
        """Add a worker thread to the rotation (driver thread only)."""
        with self._cond:
            self._rotation.append(thread_id)
            self._names[thread_id] = name
            if self._turn is None:
                self._turn = thread_id

    def finish(self, thread_id: int) -> None:
        """Worker completed: leave the rotation, pass the turn on."""
        with self._cond:
            if thread_id in self._rotation:
                self._rotation.remove(thread_id)
            self._suspended.discard(thread_id)
            if self._turn == thread_id:
                self._advance_turn_locked()
            self._cond.notify_all()

    def suspend(self, thread_id: int) -> None:
        with self._cond:
            active = [
                t for t in self._rotation if t not in self._suspended
            ]
            if active == [thread_id]:
                raise ProgressError(
                    "cannot suspend the last runnable query (deadlock)"
                )
            self._suspended.add(thread_id)
            if self._turn == thread_id:
                self._advance_turn_locked()
            self._cond.notify_all()

    def resume(self, thread_id: int) -> None:
        with self._cond:
            self._suspended.discard(thread_id)
            if self._turn is None or self._turn not in self._rotation:
                self._turn = thread_id
            self._cond.notify_all()

    # -- worker side ------------------------------------------------------

    def before_charge(self, cost: float) -> None:
        """Called by the clock before every charge: block until this worker
            holds the turn and the driver's time window is open.
        """
        me = threading.get_ident()
        cond = self._cond
        with cond:
            if me not in self._names:
                return  # not a gated worker (driver/setup work passes through)
            while True:
                open_window = self._clock.now < self._limit
                my_turn = self._turn == me and me not in self._suspended
                if open_window and my_turn:
                    break
                self._parked.add(me)
                cond.notify_all()
                cond.wait()
                self._parked.discard(me)
            self._used += cost
            if self._used >= self._quantum:
                self._advance_turn_locked()
                # Keep going: this charge is still ours; the *next* charge
                # will park if the turn moved on.

    # -- driver side ------------------------------------------------------

    def run_until(self, target: float, workers_pending: Callable[[], bool]) -> None:
        """Open the window up to ``target`` and wait for quiescence."""
        cond = self._cond
        with cond:
            self._limit = target
            if self._turn is None or self._turn not in self._rotation:
                self._advance_turn_locked()
            cond.notify_all()
            while True:
                runnable = [
                    t for t in self._rotation if t not in self._suspended
                ]
                all_parked = all(t in self._parked for t in runnable)
                if not runnable or (all_parked and not workers_pending()):
                    break
                if all_parked and self._clock.now >= self._limit:
                    break
                cond.wait(timeout=0.5)
            self._limit = 0.0  # close the window

    # -- internals ----------------------------------------------------

    def _advance_turn_locked(self) -> None:
        self._used = 0.0
        runnable = [t for t in self._rotation if t not in self._suspended]
        if not runnable:
            self._turn = None
            return
        if self._turn in runnable:
            i = runnable.index(self._turn)
            self._turn = runnable[(i + 1) % len(runnable)]
        else:
            self._turn = runnable[0]


@dataclass
class QueryRun:
    """State of one query inside a concurrent workload."""

    name: str
    sql: str
    indicator: ProgressIndicator
    started_at: float
    finished_at: Optional[float] = None
    row_count: int = 0
    suspended: bool = False
    log: Optional[ProgressLog] = None
    error: Optional[BaseException] = None
    _thread: Optional[threading.Thread] = field(default=None, repr=False)

    @property
    def done(self) -> bool:
        return self.finished_at is not None or self.error is not None

    @property
    def elapsed(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class ConcurrentWorkload:
    """Runs several monitored queries interleaved on one database.

    ``quantum`` is the slice of virtual work (in simulated seconds) each
    query consumes before the turn rotates.
    """

    def __init__(self, db: Database, quantum: float = 0.25) -> None:
        self._db = db
        self._gate = _ClockGate(db.clock, quantum)
        db.clock.set_gate(self._gate)
        self.queries: dict[str, QueryRun] = {}
        self._started = False
        #: Workers block on this until every thread is registered with the
        #: gate, so no charge can slip through ungated at startup.
        self._go = threading.Event()

    # ------------------------------------------------------------------
    # setup

    def add(self, name: str, sql: str) -> QueryRun:
        """Register a query; its worker starts parked until time advances."""
        if name in self.queries:
            raise ProgressError(f"query {name!r} already registered")
        if self._started:
            raise ProgressError("cannot add queries after the workload started")
        planned = self._db.prepare(sql)
        indicator = ProgressIndicator(planned, self._db.clock, self._db.config)
        ctx = ExecContext(
            self._db.clock,
            self._db.disk,
            self._db.buffer_pool,
            self._db.config,
            tracker=indicator.tracker,
        )
        run = QueryRun(
            name=name,
            sql=sql,
            indicator=indicator,
            started_at=self._db.clock.now,
        )

        def work() -> None:
            self._go.wait()
            try:
                for _row in execute(planned, ctx):
                    if _row is PULSE:
                        continue
                    run.row_count += len(_row) if type(_row) is Batch else 1
            except Exception as exc:  # noqa: REPRO007 - worker-thread
                # boundary: the failure is stored and re-raised on the
                # driving thread by _raise_worker_errors.  Interpreter
                # escapes (KeyboardInterrupt, SystemExit) propagate.
                run.error = exc
            else:
                run.finished_at = self._db.clock.now
                run.log = run.indicator.finalize()
            finally:
                self._gate.finish(threading.get_ident())

        thread = threading.Thread(target=work, name=f"query-{name}", daemon=True)
        run._thread = thread
        self.queries[name] = run
        return run

    # ------------------------------------------------------------------
    # control

    def suspend(self, name: str) -> None:
        """Block a query (the DBA's action from the paper's Section 6)."""
        run = self._get(name)
        if run.done or run.suspended:
            return
        if self._started:
            self._gate.suspend(run._thread.ident)
        run.suspended = True

    def resume(self, name: str) -> None:
        run = self._get(name)
        if run.done or not run.suspended:
            return
        if self._started:
            self._gate.resume(run._thread.ident)
        run.suspended = False

    def _get(self, name: str) -> QueryRun:
        try:
            return self.queries[name]
        except KeyError:
            raise ProgressError(f"no query named {name!r}") from None

    # ------------------------------------------------------------------
    # execution

    def _ensure_started(self) -> None:
        if self._started:
            return
        if not self.queries:
            raise ProgressError("workload has no queries")
        self._started = True
        for run in self.queries.values():
            run._thread.start()
        # Thread ids are final once started; register everyone with the
        # gate, apply queued suspensions, then release the workers together.
        for run in self.queries.values():
            self._gate.register(run._thread.ident, run.name)
        for run in self.queries.values():
            if run.suspended:
                self._gate.suspend(run._thread.ident)
        self._go.set()

    def _pending(self) -> bool:
        return any(not r.done and not r.suspended for r in self.queries.values())

    def advance(self, virtual_seconds: float) -> bool:
        """Let the workload consume up to ``virtual_seconds`` of clock time.

        Returns True while any unsuspended query still has work left.
        """
        if virtual_seconds <= 0:
            raise ProgressError("virtual_seconds must be positive")
        self._ensure_started()
        pending_any = any(not r.done for r in self.queries.values())
        if pending_any and not self._pending():
            raise ProgressError("deadlock: all pending queries are suspended")
        if self._pending():
            self._gate.run_until(
                self._db.clock.now + virtual_seconds, self._pending
            )
        self._raise_worker_errors()
        return self._pending()

    def step(self, virtual_seconds: float = 10.0) -> bool:
        """One scheduling slice (defaults to one report interval)."""
        return self.advance(virtual_seconds)

    def run(self) -> dict[str, QueryRun]:
        """Run every unsuspended query to completion, interleaved."""
        while self.advance(1e6):
            pass
        for run in self.queries.values():
            if run.done and run._thread is not None:
                run._thread.join(timeout=10.0)
        self._raise_worker_errors()
        return self.queries

    def _raise_worker_errors(self) -> None:
        for run in self.queries.values():
            if run.error is not None:
                raise ProgressError(
                    f"query {run.name!r} failed: {run.error!r}"
                ) from run.error

    # ------------------------------------------------------------------
    # observation

    def reports(self) -> dict[str, ProgressReport]:
        """Latest progress report of each unfinished query (for the DBA)."""
        out = {}
        for name, run in self.queries.items():
            if not run.done:
                out[name] = run.indicator.report()
        return out
