"""Execution-speed monitoring (Section 4.6).

The paper's estimator: the amount of work done in the last T seconds,
divided by T (T = 10 in their implementation).  Section 4.6 also sketches
a decaying-average improvement ("so that while the most recent execution
speed has the major impact, the overall execution speed also has an
impact") — implemented here as :class:`DecayingSpeedEstimator` and
compared in the speed-ablation benchmark.  :class:`GlobalSpeedEstimator`
(whole-history mean) is the naive baseline both beat under varying load.

All estimators consume periodic samples of ``(virtual time, cumulative
work)`` recorded by the indicator's fine-grained ticker.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ProgressError


class SpeedEstimator:
    """Interface: feed cumulative-work samples, ask for current speed."""

    #: Stable name used by the factory and by SpeedEstimated trace events.
    kind = "abstract"

    def record(self, t: float, cumulative_work: float) -> None:
        raise NotImplementedError

    def speed(self) -> Optional[float]:
        """Current speed in work-units/second; None when undetermined."""
        raise NotImplementedError


class WindowSpeedEstimator(SpeedEstimator):
    """The paper's sliding-window estimator over the last ``window`` seconds."""

    kind = "window"

    def __init__(self, window: float = 10.0) -> None:
        if window <= 0:
            raise ProgressError("speed window must be positive")
        self.window = window
        self._samples: deque[tuple[float, float]] = deque()

    def record(self, t: float, cumulative_work: float) -> None:
        self._samples.append((t, cumulative_work))
        cutoff = t - self.window
        # Keep one sample at/before the cutoff so the window stays full.
        while len(self._samples) > 2 and self._samples[1][0] <= cutoff:
            self._samples.popleft()

    def speed(self) -> Optional[float]:
        if len(self._samples) < 2:
            return None
        t0, w0 = self._samples[0]
        t1, w1 = self._samples[-1]
        if t1 <= t0:
            return None
        return (w1 - w0) / (t1 - t0)


class DecayingSpeedEstimator(SpeedEstimator):
    """Exponentially-decaying average of per-interval speeds."""

    kind = "decay"

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ProgressError("decay alpha must be in (0, 1]")
        self.alpha = alpha
        self._last: Optional[tuple[float, float]] = None
        self._ewma: Optional[float] = None

    def record(self, t: float, cumulative_work: float) -> None:
        if self._last is not None:
            t0, w0 = self._last
            if t > t0:
                rate = (cumulative_work - w0) / (t - t0)
                if self._ewma is None:
                    self._ewma = rate
                else:
                    self._ewma = self.alpha * rate + (1.0 - self.alpha) * self._ewma
        self._last = (t, cumulative_work)

    def speed(self) -> Optional[float]:
        return self._ewma


class GlobalSpeedEstimator(SpeedEstimator):
    """Whole-history mean speed (ablation baseline)."""

    kind = "global"

    def __init__(self) -> None:
        self._first: Optional[tuple[float, float]] = None
        self._last: Optional[tuple[float, float]] = None

    def record(self, t: float, cumulative_work: float) -> None:
        if self._first is None:
            self._first = (t, cumulative_work)
        self._last = (t, cumulative_work)

    def speed(self) -> Optional[float]:
        if self._first is None or self._last is None:
            return None
        t0, w0 = self._first
        t1, w1 = self._last
        if t1 <= t0:
            return None
        return (w1 - w0) / (t1 - t0)


def make_speed_estimator(kind: str, window: float, alpha: float) -> SpeedEstimator:
    """Factory keyed by :class:`repro.config.ProgressConfig`."""
    if kind == "window":
        return WindowSpeedEstimator(window)
    if kind == "decay":
        return DecayingSpeedEstimator(alpha)
    if kind == "global":
        return GlobalSpeedEstimator()
    raise ProgressError(f"unknown speed estimator kind {kind!r}")
