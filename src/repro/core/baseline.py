"""Trivial progress indicators the paper compares against (Section 1).

* :class:`OptimizerBaseline`: "if the optimizer estimates that a query
  will take t seconds, and the query has run for t' seconds, the
  remaining time is t - t'".  This is the dotted line in Figures 6, 11
  and 15.  It is wrong for two reasons the paper names: optimizer cost
  estimates contain errors, and system load varies at run time.
* :class:`StepBaseline`: the "step k of n" display some commercial
  systems offer — here, the index of the currently-running segment.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig
from repro.core.segments import SegmentSpec, initial_total_cost_bytes
from repro.executor.work import WorkTracker


class OptimizerBaseline:
    """Remaining time from the optimizer's never-refined cost estimate."""

    def __init__(self, specs: list[SegmentSpec], config: SystemConfig) -> None:
        total_bytes = initial_total_cost_bytes(specs)
        self.est_total_ios = total_bytes / config.page_size
        #: The optimizer's assumed I/O time converts its I/O count into the
        #: "estimate of the query running time" of Section 5.2.
        self.est_total_seconds = (
            self.est_total_ios * config.planner.assumed_seconds_per_io
        )

    def remaining(self, elapsed: float) -> float:
        """t - t', floored at zero once the estimate is exhausted."""
        return max(0.0, self.est_total_seconds - elapsed)


class StepBaseline:
    """Plan-step progress: which segment is running, out of how many."""

    def __init__(self, specs: list[SegmentSpec], tracker: WorkTracker) -> None:
        self._specs = specs
        self._tracker = tracker

    @property
    def total_steps(self) -> int:
        return len(self._specs)

    def current_step(self) -> int:
        """1-based index of the running segment (total+1 when finished)."""
        finished = sum(1 for s in self._tracker.segments if s.finished)
        if finished >= len(self._specs):
            return len(self._specs) + 1
        current = self._tracker.current_segment()
        if current is None:
            return finished + 1
        return current + 1

    def describe(self) -> str:
        """Human-readable 'step k of n' line for the current state."""
        step = self.current_step()
        if step > self.total_steps:
            return f"completed all {self.total_steps} steps"
        label = self._specs[step - 1].label
        return f"step {step} of {self.total_steps}: {label}"


def optimizer_remaining_series(
    baseline: OptimizerBaseline, elapsed_points: list[float]
) -> list[tuple[float, float]]:
    """The dotted-line series of Figures 6/11/15 at the given instants."""
    return [(t, baseline.remaining(t)) for t in elapsed_points]


def actual_remaining_series(
    total_elapsed: float, elapsed_points: list[float]
) -> list[tuple[float, float]]:
    """The dashed ground-truth line of Figures 6/11/15/19/20."""
    return [(t, max(0.0, total_elapsed - t)) for t in elapsed_points]


def closer_to_actual(
    estimate: Optional[float], baseline: float, actual: float
) -> bool:
    """Whether the indicator beats the baseline at one instant."""
    if estimate is None:
        return False
    return abs(estimate - actual) <= abs(baseline - actual)
