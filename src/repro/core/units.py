"""The unit of work U (paper Section 4.1).

U is one page of bytes processed.  These helpers keep the byte/page/time
conversions in one place: the estimated cost of a query is measured in U,
the speed monitor reports U/second, and remaining time is the ratio.
"""

from __future__ import annotations

from typing import Optional


def bytes_to_units(nbytes: float, page_size: int) -> float:
    """Convert bytes of work into U (pages)."""
    if page_size <= 0:
        raise ValueError("page size must be positive")
    return nbytes / page_size


def units_to_bytes(units: float, page_size: int) -> float:
    """Convert U (pages) back into bytes."""
    return units * page_size


def remaining_time(
    remaining_units: float, speed_units_per_sec: Optional[float]
) -> Optional[float]:
    """Remaining seconds = remaining U / observed speed (Section 4.6)."""
    if speed_units_per_sec is None or speed_units_per_sec <= 0:
        return None
    return remaining_units / speed_units_per_sec


def format_duration(seconds: float) -> str:
    """Render seconds the way the paper's Figure 2 does (h/min/s)."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    total = int(round(seconds))
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    parts = []
    if hours:
        parts.append(f"{hours} hour")
    if minutes or hours:
        parts.append(f"{minutes} min")
    parts.append(f"{secs} sec")
    return " ".join(parts)
