"""Load management helpers (paper Section 6, use 1).

"A progress indicator can help the DBA choose which queries to block":
given the latest report of each running query, rank them under a policy
and pick victims to suspend so a preferred query can finish sooner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.report import ProgressReport


@dataclass(frozen=True)
class MonitoredQuery:
    """One running query as the load manager sees it."""

    name: str
    report: ProgressReport


Policy = Callable[[MonitoredQuery], float]


def longest_remaining(query: MonitoredQuery) -> float:
    """Prefer blocking queries that will run the longest anyway."""
    remaining = query.report.est_remaining_seconds
    return remaining if remaining is not None else float("inf")


def least_progress(query: MonitoredQuery) -> float:
    """Prefer blocking queries that have completed the least work."""
    return -query.report.fraction_done


def most_remaining_work(query: MonitoredQuery) -> float:
    """Prefer blocking queries with the most remaining U."""
    return query.report.est_cost_pages - query.report.done_pages


def choose_victims(
    queries: list[MonitoredQuery],
    count: int,
    policy: Policy = longest_remaining,
    protect: Optional[set[str]] = None,
) -> list[MonitoredQuery]:
    """Pick up to ``count`` queries to block, highest policy score first.

    ``protect`` names queries that must never be chosen (e.g. the query
    the DBA is trying to speed up).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    protected = protect or set()
    candidates = [q for q in queries if q.name not in protected]
    candidates.sort(key=policy, reverse=True)
    return candidates[:count]


def nearly_done(queries: list[MonitoredQuery], threshold: float = 0.9) -> list[MonitoredQuery]:
    """Queries past ``threshold`` completion — poor blocking victims."""
    return [q for q in queries if q.report.fraction_done >= threshold]
