"""Progress history: the recorded output of one monitored execution.

The paper's Section 6 lists uses for progress history — DBA triggers,
performance tuning ("see whether the originally estimated query cost is
precise enough and where the time goes") — all of which consume this log.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.report import ProgressReport


@dataclass
class ProgressLog:
    """The complete report history of one query execution."""

    reports: list[ProgressReport]
    started_at: float
    finished_at: float
    #: The optimizer's never-refined initial cost estimate, in U.
    initial_cost_pages: float

    @property
    def total_elapsed(self) -> float:
        return self.finished_at - self.started_at

    def __iter__(self) -> Iterator[ProgressReport]:
        return iter(self.reports)

    def __len__(self) -> int:
        return len(self.reports)

    # ------------------------------------------------------------------
    # lookups

    def at(self, elapsed: float) -> Optional[ProgressReport]:
        """Latest report at or before ``elapsed`` seconds into the query."""
        best = None
        for report in self.reports:
            if report.elapsed <= elapsed:
                best = report
            else:
                break
        return best

    def final(self) -> ProgressReport:
        """The last (finished) report of the run."""
        return self.reports[-1]

    def actual_remaining(self, elapsed: float) -> float:
        """Ground truth: how long the query actually still had to run."""
        return max(0.0, self.total_elapsed - elapsed)

    # ------------------------------------------------------------------
    # series extraction (benchmark figures)

    def series(self, field: str) -> list[tuple[float, Optional[float]]]:
        """(elapsed, value) pairs for one report field."""
        return [(r.elapsed, getattr(r, field)) for r in self.reports]

    def estimated_cost_series(self) -> list[tuple[float, float]]:
        """Figure 4/9/13/17/18: estimated query cost (U) over time."""
        return [(r.elapsed, r.est_cost_pages) for r in self.reports]

    def speed_series(self) -> list[tuple[float, Optional[float]]]:
        """Figure 5/10/14: execution speed (U/s) over time."""
        return [(r.elapsed, r.speed_pages_per_sec) for r in self.reports]

    def remaining_series(self) -> list[tuple[float, Optional[float]]]:
        """Figure 6/11/15/19/20: estimated remaining time over time."""
        return [(r.elapsed, r.est_remaining_seconds) for r in self.reports]

    def percent_series(self) -> list[tuple[float, float]]:
        """Figure 7/12/16: completed percentage over time."""
        return [(r.elapsed, r.percent_done) for r in self.reports]

    # ------------------------------------------------------------------
    # diagnostics

    def mean_absolute_remaining_error(self) -> Optional[float]:
        """Mean |estimated - actual| remaining seconds across reports."""
        errors = [
            abs(r.est_remaining_seconds - self.actual_remaining(r.elapsed))
            for r in self.reports
            if r.est_remaining_seconds is not None
        ]
        if not errors:
            return None
        return sum(errors) / len(errors)

    def to_csv(self) -> str:
        """Render the history as CSV (performance-tuning archive format)."""
        out = io.StringIO()
        out.write(
            "elapsed,done_pages,est_cost_pages,percent_done,"
            "speed_pages_per_sec,est_remaining_seconds,current_segment\n"
        )
        for r in self.reports:
            speed = "" if r.speed_pages_per_sec is None else f"{r.speed_pages_per_sec:.3f}"
            remaining = (
                "" if r.est_remaining_seconds is None else f"{r.est_remaining_seconds:.3f}"
            )
            segment = "" if r.current_segment is None else str(r.current_segment)
            out.write(
                f"{r.elapsed:.3f},{r.done_pages:.3f},{r.est_cost_pages:.3f},"
                f"{r.percent_done:.3f},{speed},{remaining},{segment}\n"
            )
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "ProgressLog":
        """Rebuild an archived history (inverse of :meth:`to_csv`).

        The archive stores derived display fields, so the reconstructed
        log is suitable for the Section 6 uses (history inspection,
        performance tuning), not for resuming a live indicator.
        """
        lines = [line for line in text.strip().splitlines() if line]
        if not lines:
            raise ValueError("empty progress-log CSV")
        reports: list[ProgressReport] = []
        for line in lines[1:]:
            fields = line.split(",")
            if len(fields) != 7:
                raise ValueError(f"malformed progress-log CSV row: {line!r}")
            elapsed = float(fields[0])
            reports.append(
                ProgressReport(
                    time=elapsed,
                    elapsed=elapsed,
                    done_pages=float(fields[1]),
                    est_cost_pages=float(fields[2]),
                    fraction_done=float(fields[3]) / 100.0,
                    speed_pages_per_sec=float(fields[4]) if fields[4] else None,
                    est_remaining_seconds=float(fields[5]) if fields[5] else None,
                    current_segment=int(fields[6]) if fields[6] else None,
                )
            )
        if not reports:
            raise ValueError("progress-log CSV has no data rows")
        # Mark the last row as final, matching a finalized live log.
        last = reports[-1]
        reports[-1] = ProgressReport(
            time=last.time,
            elapsed=last.elapsed,
            done_pages=last.done_pages,
            est_cost_pages=last.est_cost_pages,
            fraction_done=last.fraction_done,
            speed_pages_per_sec=last.speed_pages_per_sec,
            est_remaining_seconds=last.est_remaining_seconds,
            current_segment=last.current_segment,
            finished=True,
        )
        return cls(
            reports=reports,
            started_at=0.0,
            finished_at=reports[-1].elapsed,
            initial_cost_pages=reports[0].est_cost_pages,
        )
