"""Per-segment progress breakdown ("looking inside" the plan).

The paper's future work item 4 asks "whether and when progress
indicators could be improved by looking inside the pipelined segments".
This module exposes the estimator's per-segment state as a human-readable
breakdown: each segment's status, dominant-input fraction p, refined
output estimate vs the optimizer's initial one, and byte progress — the
performance-tuning view of Section 6 ("see ... where time goes during
query execution").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.estimators.base import EstimateSnapshot
from repro.executor.work import WorkTracker


@dataclass(frozen=True)
class SegmentProgress:
    """Digest of one segment for display."""

    id: int
    label: str
    status: str
    fraction_done: float
    p: float
    done_pages: float
    est_cost_pages: float
    est_output_rows: float
    initial_output_rows: float
    started_at: Optional[float]
    finished_at: Optional[float]

    @property
    def estimate_drift(self) -> float:
        """How far the refined output estimate moved from the optimizer's
        initial one (1.0 = unchanged)."""
        if self.initial_output_rows <= 0:
            return 1.0
        return self.est_output_rows / self.initial_output_rows


def segment_progress(
    snapshot: EstimateSnapshot, page_size: int, tracker: Optional[WorkTracker] = None
) -> list[SegmentProgress]:
    """Digest a refinement snapshot into per-segment progress rows."""
    out = []
    for est in snapshot.segments:
        counters = tracker.segments[est.spec.id] if tracker is not None else None
        fraction = 0.0
        if est.est_cost_bytes > 0:
            fraction = min(1.0, est.done_bytes / est.est_cost_bytes)
        elif est.status == "finished":
            fraction = 1.0
        out.append(
            SegmentProgress(
                id=est.spec.id,
                label=est.spec.label,
                status=est.status,
                fraction_done=fraction,
                p=est.p,
                done_pages=est.done_bytes / page_size,
                est_cost_pages=est.est_cost_bytes / page_size,
                est_output_rows=est.est_output_rows,
                initial_output_rows=est.spec.est_output_rows,
                started_at=counters.started_at if counters else None,
                finished_at=counters.finished_at if counters else None,
            )
        )
    return out


def render_breakdown(rows: list[SegmentProgress]) -> str:
    """Format a breakdown as an aligned text table."""
    lines = [
        f"{'seg':>4} {'status':<9} {'done':>6} {'p':>5} "
        f"{'cost (U)':>10} {'rows est':>10} {'drift':>6}  label",
        "-" * 78,
    ]
    for r in rows:
        lines.append(
            f"{r.id:>4} {r.status:<9} {100 * r.fraction_done:>5.1f}% "
            f"{r.p:>5.2f} {r.est_cost_pages:>10.1f} {r.est_output_rows:>10.0f} "
            f"{r.estimate_drift:>5.2f}x  {r.label}"
        )
    return "\n".join(lines)


def time_breakdown(rows: list[SegmentProgress]) -> list[tuple[str, float]]:
    """(label, seconds) per finished segment — "where the time went".

    Segments overlap in pipelined plans; this reports each segment's own
    started→finished span, the paper's performance-tuning view.
    """
    out = []
    for r in rows:
        if r.started_at is not None and r.finished_at is not None:
            out.append((r.label, r.finished_at - r.started_at))
    return out


def attribute_error(rows: list[SegmentProgress]) -> Optional[SegmentProgress]:
    """The segment whose output estimate drifted the most — the likeliest
    culprit behind a wrong initial query cost (tuning aid)."""
    candidates = [r for r in rows if r.initial_output_rows > 0]
    if not candidates:
        return None
    return max(candidates, key=lambda r: abs(r.estimate_drift - 1.0))
