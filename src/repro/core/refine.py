"""Deprecated shim — the refinement layer moved to :mod:`repro.estimators`.

This module used to hold the Section 4.3/4.5 refinement math.  That code
now lives behind the pluggable estimator interface:

* the snapshot dataclasses are :mod:`repro.estimators.base`;
* the refinement core and the paper blend are
  :mod:`repro.estimators.refinement`;
* estimators are constructed by name via
  :func:`repro.estimators.make_estimator`.

``ProgressEstimator`` remains importable here for old callers: it is the
legacy ``(specs, tracker, refine_mode=...)`` constructor, delegating to
the matching registered estimator ("paper"/"tgn"/"dne") and emitting a
:class:`DeprecationWarning` on instantiation.  Lint rule REPRO010 bans
new in-repo imports of this module — import from ``repro.estimators``
instead.
"""

from __future__ import annotations

import warnings

from repro.core.segments import SegmentSpec
from repro.estimators.base import (  # noqa: F401 - re-exported for old callers
    INPUT_SOURCES,
    EstimateSnapshot,
    InputEstimate,
    SegmentEstimate,
)
from repro.estimators.refinement import (  # noqa: F401 - re-exported
    REFINE_MODES,
    RefinementEstimator,
    estimator_for_refine_mode,
)
from repro.executor.work import WorkTracker


class ProgressEstimator(RefinementEstimator):
    """Deprecated: the pre-redesign refinement entry point.

    Delegates to the registered estimator matching ``refine_mode``
    ("paper" -> the paper blend, "optimizer" -> "tgn", "extrapolate" ->
    "dne"), so behaviour is bit-identical to the old in-place math.
    """

    def __init__(
        self,
        specs: list[SegmentSpec],
        tracker: WorkTracker,
        refine_mode: str = "paper",
    ) -> None:
        # Validate first: a bad mode is a ValueError, same as before.
        name = estimator_for_refine_mode(refine_mode)
        warnings.warn(
            "repro.core.refine.ProgressEstimator is deprecated; use "
            "repro.estimators.make_estimator(name, specs, tracker)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.estimators import make_estimator

        super().__init__(specs, tracker)
        self._delegate = make_estimator(name, specs, tracker)
        self._refine_mode = refine_mode

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._delegate.name

    def _blend(self, y: float, p: float, e1: float) -> float:
        # Keep subclass-of-RefinementEstimator semantics for any old
        # caller poking at internals: forward to the delegate's rule.
        return self._delegate._blend(y, p, e1)  # type: ignore[attr-defined]

    def snapshot(self) -> EstimateSnapshot:
        return self._delegate.snapshot()
