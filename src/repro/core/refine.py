"""Continuous refinement of the query cost estimate (Sections 4.3 & 4.5).

For every segment the estimator combines:

* **Base-input refinement** (Section 4.3): keep the optimizer's Ne until
  the scan finishes (then the exact Np is known) or until the actual
  number of tuples read exceeds Ne (then use the running count).
* **Output-cardinality refinement** (Section 4.5): with dominant-input
  fraction ``p``, observed outputs ``y``, and the optimizer's (re-invoked)
  estimate ``E1``, use ``E = p*E2 + (1-p)*E1`` where ``E2 = y/p`` — which
  simplifies to ``E = y + (1-p)*E1``.  Segments with two dominant inputs
  (sort-merge joins) use ``p = max(qA, qB)``.
* **Upward propagation**: a future segment's E1 is recomputed from its
  inputs' *current* refined estimates via the multiplicative factor the
  optimizer recorded at plan time (its cost-estimation module, re-invoked).
* **Exact accounting** for finished segments.

Everything is recomputed from the tracker's counters on demand — the
estimator itself is stateless between snapshots, which keeps it trivially
consistent with whatever the executor has done so far.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.segments import SegmentSpec
from repro.executor.work import SegmentCounters, WorkTracker


#: Provenance values for :attr:`InputEstimate.source` (§4.3 / §4.5):
#: base inputs move "ne" -> "overrun" -> "exact"; child inputs are
#: "child" (propagated moving estimate) or "child_final" (producer done).
INPUT_SOURCES = ("ne", "overrun", "exact", "child", "child_final")


@dataclass
class InputEstimate:
    """Refined view of one segment input."""

    index: int
    label: str
    rows_read: int
    bytes_read: float
    est_rows: float
    est_width: float
    dominant: bool
    #: Where ``est_rows`` comes from right now (one of INPUT_SOURCES).
    source: str = "ne"

    @property
    def est_bytes(self) -> float:
        return self.est_rows * self.est_width

    @property
    def progress(self) -> float:
        """Fraction of this input processed so far (q of Section 4.5)."""
        if self.est_rows <= 0:
            return 1.0
        return min(1.0, self.rows_read / self.est_rows)


@dataclass
class SegmentEstimate:
    """Refined view of one segment."""

    spec: SegmentSpec
    status: str  # "pending" | "running" | "finished"
    inputs: list[InputEstimate]
    #: Dominant-input fraction p (0 for pending, 1 for finished).
    p: float
    #: Current output-cardinality estimate E (exact when finished).
    est_output_rows: float
    est_output_width: float
    #: Current total cost estimate of this segment, in bytes.
    est_cost_bytes: float
    done_bytes: float
    #: The optimizer's re-invoked estimate E1 (upward propagation).
    e1: float = 0.0
    #: The pure extrapolation E2 = y/p; None while p == 0.
    e2: Optional[float] = None
    #: Index of the input currently deciding p (the arg-max progress
    #: among dominant inputs), or None before any progress / when done.
    dominant_input: Optional[int] = None

    @property
    def remaining_bytes(self) -> float:
        return max(0.0, self.est_cost_bytes - self.done_bytes)


@dataclass
class EstimateSnapshot:
    """A full refinement pass at one instant."""

    segments: list[SegmentEstimate]
    est_total_bytes: float
    done_bytes: float
    current_segment: Optional[int]

    @property
    def remaining_bytes(self) -> float:
        return max(0.0, self.est_total_bytes - self.done_bytes)

    @property
    def fraction_done(self) -> float:
        if self.est_total_bytes <= 0:
            return 1.0
        return min(1.0, self.done_bytes / self.est_total_bytes)

    def pages(self, page_size: int) -> tuple[float, float, float]:
        """(done, total, remaining) in U (pages)."""
        return (
            self.done_bytes / page_size,
            self.est_total_bytes / page_size,
            self.remaining_bytes / page_size,
        )


#: Output-cardinality refinement modes (the A2 ablation):
#: "paper" is E = p*E2 + (1-p)*E1; "optimizer" never extrapolates from
#: observed outputs (E = E1, inputs still refined per Section 4.3);
#: "extrapolate" uses raw E2 = y/p with no smoothing toward E1.
REFINE_MODES = ("paper", "optimizer", "extrapolate")


class ProgressEstimator:
    """Recomputes refined estimates from tracker counters."""

    def __init__(
        self,
        specs: list[SegmentSpec],
        tracker: WorkTracker,
        refine_mode: str = "paper",
    ) -> None:
        if refine_mode not in REFINE_MODES:
            raise ValueError(f"unknown refine mode {refine_mode!r}")
        self._specs = specs
        self._tracker = tracker
        self._refine_mode = refine_mode

    @property
    def specs(self) -> list[SegmentSpec]:
        return self._specs

    def snapshot(self) -> EstimateSnapshot:
        """Run one refinement pass (Section 4.5's refining procedure)."""
        estimates: list[SegmentEstimate] = []
        # Producers close before consumers, so ids are topologically ordered
        # and each child's estimate exists before its consumers need it.
        for spec in self._specs:
            estimates.append(self._estimate_segment(spec, estimates))
        total = sum(e.est_cost_bytes for e in estimates)
        return EstimateSnapshot(
            segments=estimates,
            est_total_bytes=total,
            done_bytes=self._tracker.total_done_bytes,
            current_segment=self._tracker.current_segment(),
        )

    # ------------------------------------------------------------------

    def _estimate_segment(
        self, spec: SegmentSpec, done: list[SegmentEstimate]
    ) -> SegmentEstimate:
        counters = self._tracker.segments[spec.id]
        inputs = [
            self._estimate_input(spec, i, counters, done)
            for i in range(len(spec.inputs))
        ]

        if counters.finished:
            width = counters.avg_output_width()
            if width is None:
                width = spec.est_output_width
            exact = float(counters.output_rows)
            return SegmentEstimate(
                spec=spec,
                status="finished",
                inputs=inputs,
                p=1.0,
                est_output_rows=exact,
                est_output_width=width,
                est_cost_bytes=counters.done_bytes,
                done_bytes=counters.done_bytes,
                e1=exact,
                e2=exact,
                dominant_input=None,
            )

        # E1: the optimizer's estimate, re-invoked with refined input
        # cardinalities (upward propagation of Section 4.5).
        e1 = spec.card_factor
        for inp in inputs:
            e1 *= max(inp.est_rows, 1e-9)

        status = "running" if counters.started else "pending"
        dominants = [inp for inp in inputs if inp.dominant]
        dominant_input: Optional[int] = None
        if counters.started and dominants:
            # Two dominant inputs (sort-merge): the faster-consumed side
            # decides p (Section 4.5, citing the LEO-style rule).
            deciding = max(dominants, key=lambda inp: inp.progress)
            p = deciding.progress
            if p > 0:
                dominant_input = deciding.index
        else:
            p = 0.0

        y = float(counters.output_rows)
        if self._refine_mode == "optimizer":
            estimate = max(e1, y)
        elif self._refine_mode == "extrapolate":
            estimate = y / p if p > 0 else e1
        else:
            estimate = y + (1.0 - p) * e1  # == p*E2 + (1-p)*E1 with E2 = y/p
        width = counters.avg_output_width()
        if width is None:
            width = spec.est_output_width

        cost = sum(inp.est_bytes for inp in inputs) + spec.est_extra_bytes
        if not spec.final:
            cost += estimate * width
        # A running segment can never cost less than what it already did.
        cost = max(cost, counters.done_bytes)

        return SegmentEstimate(
            spec=spec,
            status=status,
            inputs=inputs,
            p=p,
            est_output_rows=estimate,
            est_output_width=width,
            est_cost_bytes=cost,
            done_bytes=counters.done_bytes,
            e1=e1,
            e2=(y / p) if p > 0 else None,
            dominant_input=dominant_input,
        )

    def _estimate_input(
        self,
        spec: SegmentSpec,
        index: int,
        counters: SegmentCounters,
        done: list[SegmentEstimate],
    ) -> InputEstimate:
        meta = spec.inputs[index]
        rows_read = counters.input_rows[index]
        bytes_read = counters.input_bytes[index]

        if meta.kind == "base":
            # Section 4.3: Ne until the scan finishes or overruns it.
            if counters.finished:
                est_rows = float(rows_read)
                source = "exact"
            elif float(rows_read) > float(meta.est_rows):
                est_rows = float(rows_read)
                source = "overrun"
            else:
                est_rows = float(meta.est_rows)
                source = "ne"
            if rows_read > 0:
                est_width = bytes_read / rows_read
            else:
                est_width = meta.est_width
        else:
            child = done[meta.child_segment]
            source = "child_final" if child.status == "finished" else "child"
            # Propagated (possibly still-moving) child estimate.
            est_rows = child.est_output_rows
            est_width = child.est_output_width
            est_rows = max(est_rows, float(rows_read))
            if rows_read > 0 and child.status == "finished":
                # Trust observed input width once we are actually reading.
                est_width = bytes_read / rows_read if rows_read else est_width

        return InputEstimate(
            index=index,
            label=meta.label,
            rows_read=rows_read,
            bytes_read=bytes_read,
            est_rows=est_rows,
            est_width=est_width,
            dominant=meta.dominant,
            source=source,
        )
