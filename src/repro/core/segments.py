"""Plan segmentation: pipelines, blocking boundaries, dominant inputs.

Implements Section 4.2 (segments) and the dominant-input rules of
Section 4.5:

* one input -> it is dominant;
* multiple inputs -> decided by the lowest join in the segment:
  nested loops -> the outer input, hash join -> the probe input,
  sort-merge -> *both* sorted inputs.

The builder walks the annotated physical plan bottom-up, keeping one
"open pipeline" per streaming path and closing it into a
:class:`SegmentSpec` at every blocking operator (hash build, partition
pass, sort run formation) and finally at the plan root.  Closing a
segment assigns its id (ids are dense and in execution order) and writes
the progress annotations (``pi_*`` attributes) the executor's operators
report through.

Multi-batch hash joins follow the paper's Figure 3 shape exactly: the
build and probe pipelines each close with a partition pass (producing
partition files PA/PB), and a fresh pipeline opens whose inputs are the
partitions, PB dominant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ProgressError
from repro.planner.physical import (
    DistinctNode,
    FilterNode,
    HashAggregateNode,
    HashJoinNode,
    IndexScanNode,
    LimitNode,
    MergeJoinNode,
    NestLoopNode,
    PhysicalNode,
    ProjectNode,
    SeqScanNode,
    SortNode,
)


@dataclass
class SegmentInput:
    """One input stream of a segment, with its initial estimates."""

    index: int
    kind: str  # "base" (table scan / index scan) or "child" (segment output)
    label: str
    #: Optimizer's initial cardinality estimate (the Ne of Section 4.3).
    est_rows: float
    #: Optimizer's initial average tuple width estimate in bytes.
    est_width: float
    dominant: bool
    #: Producing segment id for kind == "child"; None for base inputs.
    child_segment: Optional[int] = None


@dataclass
class SegmentSpec:
    """Static description of one segment, fixed at plan time."""

    id: int
    label: str
    inputs: list[SegmentInput]
    #: Optimizer's initial output-cardinality estimate (E1 at p=0).
    est_output_rows: float
    est_output_width: float
    #: True for the last segment: its output goes to the user and is not
    #: counted as work (Section 4.5).
    final: bool
    #: E1 = card_factor * prod(refined input cardinalities); recorded so the
    #: refiner can "re-invoke the optimizer's cost estimation module".
    card_factor: float
    #: Estimated extra multi-stage bytes (e.g. cascade merge passes).
    est_extra_bytes: float = 0.0

    def initial_cost_bytes(self) -> float:
        """The optimizer's initial byte cost of this segment."""
        total = sum(i.est_rows * i.est_width for i in self.inputs)
        if not self.final:
            total += self.est_output_rows * self.est_output_width
        return total + self.est_extra_bytes


def build_segments(root: PhysicalNode) -> list[SegmentSpec]:
    """Segment an annotated plan and attach executor annotations."""
    builder = _Builder()
    pipeline = builder.visit(root)
    builder.close(pipeline, final=True, label="output")
    return builder.specs


def initial_total_cost_bytes(specs: list[SegmentSpec]) -> float:
    """The optimizer's initial estimate of the whole query's cost in bytes.

    This is the quantity the paper seeds the indicator with ("a number of
    U equal to the optimizer's estimate of the number of I/Os").
    """
    return sum(s.initial_cost_bytes() for s in specs)


# ----------------------------------------------------------------------
# internals


@dataclass
class _PendingInput:
    """An input of a not-yet-closed pipeline."""

    kind: str
    label: str
    est_rows: float
    est_width: float
    dominant: bool
    child_segment: Optional[int] = None
    #: (node, attribute) pairs to set to (segment_id, input_index) on close.
    annotations: list[tuple[PhysicalNode, str]] = field(default_factory=list)


@dataclass
class _Pipeline:
    """An open (not yet closed) pipeline during the walk."""

    inputs: list[_PendingInput]
    est_rows: float
    est_width: float
    nodes: list[PhysicalNode]
    #: Node attributes to set to the segment id on close.
    segment_annotations: list[tuple[PhysicalNode, str]] = field(default_factory=list)
    est_extra_bytes: float = 0.0


class _Builder:
    def __init__(self) -> None:
        self.specs: list[SegmentSpec] = []

    # -- pipeline lifecycle ---------------------------------------------

    def close(self, pipeline: _Pipeline, final: bool, label: str) -> SegmentSpec:
        """Seal an open pipeline into a SegmentSpec, assigning its id and
        writing the executor annotations recorded while building it.
        """
        seg_id = len(self.specs)
        inputs = []
        for idx, pending in enumerate(pipeline.inputs):
            for node, attr in pending.annotations:
                setattr(node, attr, (seg_id, idx))
            inputs.append(
                SegmentInput(
                    index=idx,
                    kind=pending.kind,
                    label=pending.label,
                    est_rows=pending.est_rows,
                    est_width=pending.est_width,
                    dominant=pending.dominant,
                    child_segment=pending.child_segment,
                )
            )
        for node, attr in pipeline.segment_annotations:
            setattr(node, attr, seg_id)
        for node in pipeline.nodes:
            node.segment_id = seg_id

        product = 1.0
        for i in inputs:
            product *= max(i.est_rows, 1e-9)
        card_factor = pipeline.est_rows / product if product > 0 else 0.0

        spec = SegmentSpec(
            id=seg_id,
            label=label,
            inputs=inputs,
            est_output_rows=pipeline.est_rows,
            est_output_width=pipeline.est_width,
            final=final,
            card_factor=card_factor,
            est_extra_bytes=pipeline.est_extra_bytes,
        )
        self.specs.append(spec)
        return spec

    # -- node dispatch ----------------------------------------------------

    def visit(self, node: PhysicalNode) -> _Pipeline:
        """Dispatch on the plan-node type; returns the open pipeline that
        streams this subtree's output upward.
        """
        if isinstance(node, (SeqScanNode, IndexScanNode)):
            return self._visit_scan(node)
        if isinstance(node, HashJoinNode):
            return self._visit_hash_join(node)
        if isinstance(node, NestLoopNode):
            return self._visit_nest_loop(node)
        if isinstance(node, SortNode):
            return self._visit_sort(node)
        if isinstance(node, MergeJoinNode):
            return self._visit_merge_join(node)
        if isinstance(node, HashAggregateNode):
            return self._visit_aggregate(node)
        if isinstance(node, ProjectNode):
            return self._visit_passthrough(node, node.child, "pi_output_segment")
        if isinstance(node, (LimitNode, FilterNode, DistinctNode)):
            return self._visit_passthrough(node, node.child, None)
        raise ProgressError(f"cannot segment plan node {type(node).__name__}")

    def _visit_scan(self, node: SeqScanNode | IndexScanNode) -> _Pipeline:
        table = node.table
        stats = table.statistics
        base_width = stats.avg_width if stats is not None else table.heap.avg_tuple_width()
        pending = _PendingInput(
            kind="base",
            label=table.name,
            est_rows=float(node.est_base_rows),
            est_width=float(base_width) if base_width else float(node.est_width),
            dominant=True,
            annotations=[(node, "pi_input_ref")],
        )
        return _Pipeline(
            inputs=[pending],
            est_rows=node.est_rows,
            est_width=node.est_width,
            nodes=[node],
        )

    def _visit_hash_join(self, node: HashJoinNode) -> _Pipeline:
        build_pipe = self.visit(node.build)
        if node.num_batches == 1:
            build_seg = self.close(
                build_pipe, final=False, label=f"hash build [{node.build.label()}]"
            )
            node.pi_build_segment = build_seg.id
            probe_pipe = self.visit(node.probe)
            probe_pipe.inputs.append(
                _PendingInput(
                    kind="child",
                    label=f"hash table (segment {build_seg.id})",
                    est_rows=build_seg.est_output_rows,
                    est_width=build_seg.est_output_width,
                    dominant=False,
                    child_segment=build_seg.id,
                    annotations=[(node, "pi_hash_input_ref")],
                )
            )
            probe_pipe.est_rows = node.est_rows
            probe_pipe.est_width = node.est_width
            probe_pipe.nodes.append(node)
            return probe_pipe

        # Multi-batch: both sides close with a partition pass; a fresh
        # pipeline joins the partitions (paper Figure 3, segment S3).
        build_seg = self.close(
            build_pipe, final=False, label=f"partition build [{node.build.label()}]"
        )
        node.pi_build_segment = build_seg.id
        probe_pipe = self.visit(node.probe)
        probe_seg = self.close(
            probe_pipe, final=False, label=f"partition probe [{node.probe.label()}]"
        )
        node.pi_probe_segment = probe_seg.id
        pa = _PendingInput(
            kind="child",
            label=f"partitions PA (segment {build_seg.id})",
            est_rows=build_seg.est_output_rows,
            est_width=build_seg.est_output_width,
            dominant=False,
            child_segment=build_seg.id,
            annotations=[(node, "pi_pa_input_ref")],
        )
        pb = _PendingInput(
            kind="child",
            label=f"partitions PB (segment {probe_seg.id})",
            est_rows=probe_seg.est_output_rows,
            est_width=probe_seg.est_output_width,
            dominant=True,
            child_segment=probe_seg.id,
            annotations=[(node, "pi_pb_input_ref")],
        )
        return _Pipeline(
            inputs=[pa, pb],
            est_rows=node.est_rows,
            est_width=node.est_width,
            nodes=[node],
        )

    def _visit_nest_loop(self, node: NestLoopNode) -> _Pipeline:
        outer_pipe = self.visit(node.outer)
        inner_pipe = self.visit(node.inner)
        # The inner is materialized within the same segment; its inputs are
        # consumed once, up front, and are never dominant (rule 2a: the
        # outer relation is the dominant input).
        for pending in inner_pipe.inputs:
            pending.dominant = False
            outer_pipe.inputs.append(pending)
        outer_pipe.nodes.extend(inner_pipe.nodes)
        outer_pipe.est_extra_bytes += inner_pipe.est_extra_bytes
        outer_pipe.est_rows = node.est_rows
        outer_pipe.est_width = node.est_width
        outer_pipe.nodes.append(node)
        return outer_pipe

    def _visit_sort(self, node: SortNode) -> _Pipeline:
        child_pipe = self.visit(node.child)
        child_pipe.est_rows = node.est_rows  # a sort reorders, never filters
        sort_seg = self.close(
            child_pipe, final=False, label=f"sort runs [{node.child.label()}]"
        )
        node.pi_sort_segment = sort_seg.id
        runs = _PendingInput(
            kind="child",
            label=f"sorted runs (segment {sort_seg.id})",
            est_rows=sort_seg.est_output_rows,
            est_width=sort_seg.est_output_width,
            dominant=True,
            child_segment=sort_seg.id,
            annotations=[(node, "pi_merge_input_ref")],
        )
        return _Pipeline(
            inputs=[runs],
            est_rows=node.est_rows,
            est_width=node.est_width,
            nodes=[node],
        )

    def _visit_aggregate(self, node: HashAggregateNode) -> _Pipeline:
        """A hash aggregate is blocking, like a sort: the accumulate phase
        ends its child's segment (the group table is the segment output);
        the finalized groups stream into the consuming segment."""
        child_pipe = self.visit(node.child)
        child_pipe.est_rows = node.est_rows  # the segment produces groups
        child_pipe.est_width = node.est_width
        agg_seg = self.close(
            child_pipe, final=False, label=f"aggregate [{node.child.label()}]"
        )
        node.pi_agg_segment = agg_seg.id
        groups = _PendingInput(
            kind="child",
            label=f"groups (segment {agg_seg.id})",
            est_rows=agg_seg.est_output_rows,
            est_width=agg_seg.est_output_width,
            dominant=True,
            child_segment=agg_seg.id,
            annotations=[(node, "pi_groups_input_ref")],
        )
        return _Pipeline(
            inputs=[groups],
            est_rows=node.est_rows,
            est_width=node.est_width,
            nodes=[node],
        )

    def _visit_merge_join(self, node: MergeJoinNode) -> _Pipeline:
        left_pipe = self.visit(node.left)
        right_pipe = self.visit(node.right)
        # Rule 2c: both sorted inputs are dominant; the refiner combines
        # their progress with p = max(qA, qB).
        for pending in left_pipe.inputs:
            pending.dominant = True
        for pending in right_pipe.inputs:
            pending.dominant = True
        inputs = left_pipe.inputs + right_pipe.inputs
        return _Pipeline(
            inputs=inputs,
            est_rows=node.est_rows,
            est_width=node.est_width,
            nodes=left_pipe.nodes + right_pipe.nodes + [node],
            est_extra_bytes=left_pipe.est_extra_bytes + right_pipe.est_extra_bytes,
        )

    def _visit_passthrough(
        self, node: PhysicalNode, child: PhysicalNode, output_attr: Optional[str]
    ) -> _Pipeline:
        pipeline = self.visit(child)
        pipeline.est_rows = node.est_rows
        pipeline.est_width = node.est_width
        pipeline.nodes.append(node)
        if output_attr is not None:
            pipeline.segment_annotations.append((node, output_attr))
        return pipeline
