"""The progress indicator — the paper's contribution.

Pipeline:

1. :mod:`repro.core.segments` splits an annotated physical plan into
   pipelined segments at blocking-operator boundaries and picks each
   segment's dominant input(s) (Sections 4.2 and 4.5).
2. The executor reports tuple/byte counts into a
   :class:`~repro.executor.work.WorkTracker` as the query runs.
3. A pluggable :class:`~repro.estimators.Estimator`
   (:mod:`repro.estimators`; the default "paper" strategy re-estimates
   segment output cardinalities with ``E = p*E2 + (1-p)*E1``) propagates
   refined estimates upward (Sections 4.3 and 4.5).  Alternatives — DNE/
   TGN blends, history-learned corrections, the online ensemble selector
   — are chosen per query or via ``ProgressConfig.estimator``.
4. :mod:`repro.core.speed` converts U to time from observed execution
   speed over the last T seconds (Section 4.6).
5. :class:`~repro.core.indicator.ProgressIndicator` samples everything on
   a virtual-clock ticker and emits :class:`~repro.core.report.ProgressReport`
   rows — the paper's Figure 2 display fields.
"""

from repro.core.baseline import OptimizerBaseline, StepBaseline
from repro.core.breakdown import (
    SegmentProgress,
    attribute_error,
    render_breakdown,
    segment_progress,
    time_breakdown,
)
from repro.core.concurrent import ConcurrentWorkload, QueryRun
from repro.core.history import ProgressLog
from repro.core.indicator import ProgressIndicator
from repro.core.report import ProgressReport
from repro.estimators import (
    Estimator,
    EstimateSnapshot,
    SegmentEstimate,
    make_estimator,
)
from repro.core.segments import SegmentInput, SegmentSpec, build_segments
from repro.core.speed import (
    DecayingSpeedEstimator,
    GlobalSpeedEstimator,
    WindowSpeedEstimator,
    make_speed_estimator,
)
from repro.core.triggers import ProgressTrigger, slow_progress_condition

__all__ = [
    "ConcurrentWorkload",
    "QueryRun",
    "SegmentProgress",
    "segment_progress",
    "render_breakdown",
    "time_breakdown",
    "attribute_error",
    "build_segments",
    "SegmentSpec",
    "SegmentInput",
    "Estimator",
    "EstimateSnapshot",
    "SegmentEstimate",
    "make_estimator",
    "ProgressIndicator",
    "ProgressReport",
    "ProgressLog",
    "ProgressTrigger",
    "slow_progress_condition",
    "WindowSpeedEstimator",
    "DecayingSpeedEstimator",
    "GlobalSpeedEstimator",
    "make_speed_estimator",
    "OptimizerBaseline",
    "StepBaseline",
]
