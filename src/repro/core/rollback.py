"""Rollback-progress monitoring (paper Section 2, citing [15]).

The related-work technique the paper says "can be integrated into the
progress indicators": watch how many update log records remain to be
rolled back, measure the roll-back speed, and estimate the remaining
rollback time.  We reuse the same window speed estimator the query
indicator uses, so the integration is literal.
"""

from __future__ import annotations

from typing import Optional

from repro.core.speed import WindowSpeedEstimator
from repro.errors import ProgressError
from repro.sim.clock import VirtualClock


class RollbackMonitor:
    """Tracks a transaction rollback by its remaining undo-log records."""

    def __init__(
        self, total_records: int, clock: VirtualClock, window: float = 10.0
    ) -> None:
        if total_records < 0:
            raise ProgressError("total_records must be non-negative")
        self.total_records = total_records
        self._clock = clock
        self._speed = WindowSpeedEstimator(window)
        self._remaining = total_records
        self._speed.record(clock.now, 0.0)

    @property
    def remaining_records(self) -> int:
        return self._remaining

    @property
    def fraction_done(self) -> float:
        if self.total_records == 0:
            return 1.0
        return (self.total_records - self._remaining) / self.total_records

    def record_rolled_back(self, count: int) -> None:
        """Report that ``count`` more log records were undone."""
        if count < 0:
            raise ProgressError("count must be non-negative")
        self._remaining = max(0, self._remaining - count)
        self._speed.record(self._clock.now, self.total_records - self._remaining)

    def speed_records_per_sec(self) -> Optional[float]:
        return self._speed.speed()

    def est_remaining_seconds(self) -> Optional[float]:
        """Remaining records divided by the observed rollback speed."""
        speed = self._speed.speed()
        if speed is None or speed <= 0:
            return None
        return self._remaining / speed
