"""Progress reports: the fields of the paper's Figure 2 display."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ProgressReport:
    """One sample of the indicator's display state.

    Mirrors the paper's Figure 2: elapsed time, estimated remaining time,
    completed percentage, estimated cost in U, and execution speed in
    U/second (U = one page of bytes, Section 4.1).
    """

    #: Virtual-clock instant of the sample.
    time: float
    #: Seconds since the query started.
    elapsed: float
    #: Work done so far, in U (pages).
    done_pages: float
    #: Current total-cost estimate, in U.
    est_cost_pages: float
    #: Estimated completed fraction in [0, 1].
    fraction_done: float
    #: Current execution speed, U/second; None during warm-up.
    speed_pages_per_sec: Optional[float]
    #: Estimated remaining seconds; None during warm-up / zero speed.
    est_remaining_seconds: Optional[float]
    #: Id of the segment currently consuming its dominant input.
    current_segment: Optional[int]
    #: Whether the query has completed.
    finished: bool = False
    #: True when this sample is a fallback served because the refinement
    #: machinery raised (the degrade-don't-die boundary): the values come
    #: from the last good report or the optimizer's initial estimate, not
    #: from a fresh snapshot.
    degraded: bool = False
    #: Provenance of the estimate: the producing estimator's registry name
    #: ("paper", "dne", ...), or "ensemble:<name>" when the online
    #: selector served candidate <name>.  None on degraded optimizer
    #: fallbacks (no estimator produced the numbers).
    estimator: Optional[str] = None

    @property
    def percent_done(self) -> float:
        return 100.0 * self.fraction_done

    def format_line(self) -> str:
        """One-line rendering, e.g. for a console progress display."""
        remaining = (
            f"{self.est_remaining_seconds:8.1f}s left"
            if self.est_remaining_seconds is not None
            else "  (warming up)"
        )
        speed = (
            f"{self.speed_pages_per_sec:8.1f} U/s"
            if self.speed_pages_per_sec is not None
            else "       - U/s"
        )
        return (
            f"t={self.elapsed:8.1f}s  {self.percent_done:5.1f}% done  "
            f"cost={self.est_cost_pages:10.0f} U  {speed}  {remaining}"
        )
