"""Progress triggers: automatic administration (paper Section 6, use 2).

The paper's example: "send an email to the user if after a whole day's
execution, the query finishes less than 10% of the work."  A
:class:`ProgressTrigger` couples a condition over progress reports with an
action; install triggers on an indicator via ``on_report``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.report import ProgressReport

Condition = Callable[[ProgressReport], bool]
Action = Callable[[ProgressReport], None]


class ProgressTrigger:
    """Fires ``action`` when ``condition`` first holds on a report."""

    def __init__(
        self, name: str, condition: Condition, action: Action, once: bool = True
    ) -> None:
        self.name = name
        self.condition = condition
        self.action = action
        self.once = once
        self.fired = 0

    def observe(self, report: ProgressReport) -> bool:
        """Check one report; returns True when the trigger fired."""
        if self.once and self.fired:
            return False
        if self.condition(report):
            self.fired += 1
            self.action(report)
            return True
        return False


class TriggerSet:
    """A collection of triggers usable as an indicator's on_report hook."""

    def __init__(self, triggers: Optional[list[ProgressTrigger]] = None) -> None:
        self.triggers = list(triggers or [])

    def add(self, trigger: ProgressTrigger) -> None:
        """Install one more trigger."""
        self.triggers.append(trigger)

    def __call__(self, report: ProgressReport) -> None:
        for trigger in self.triggers:
            trigger.observe(report)


def slow_progress_condition(max_fraction: float, after_seconds: float) -> Condition:
    """The paper's example condition: < ``max_fraction`` done after a while."""

    def condition(report: ProgressReport) -> bool:
        return report.elapsed >= after_seconds and report.fraction_done < max_fraction

    return condition


def stalled_condition(min_speed_pages: float, after_seconds: float) -> Condition:
    """Fires when the observed speed collapses below a floor."""

    def condition(report: ProgressReport) -> bool:
        return (
            report.elapsed >= after_seconds
            and report.speed_pages_per_sec is not None
            and report.speed_pages_per_sec < min_speed_pages
        )

    return condition


def overrun_condition(factor: float) -> Condition:
    """Fires when estimated remaining work implies a blown cost estimate.

    ``factor`` is how much the current cost estimate may exceed the done
    work plus remaining estimate before we call it an overrun — useful for
    the performance-tuning use of Section 6.
    """

    def condition(report: ProgressReport) -> bool:
        if report.est_remaining_seconds is None:
            return False
        return report.est_remaining_seconds > factor * max(report.elapsed, 1.0)

    return condition
