"""The progress indicator facade.

Attach one to a planned query before execution::

    indicator = ProgressIndicator(planned, clock, config)
    ctx = ExecContext(clock, disk, pool, config, tracker=indicator.tracker)
    run_query(planned, ctx)
    log = indicator.finalize()

While the query runs, two virtual-clock tickers drive the indicator:

* a fine-grained one (default every 1 s) feeding the speed estimator with
  cumulative-work samples, and
* the user-facing one (default every 10 s, the paper's pacing) taking a
  full refinement snapshot and emitting a :class:`ProgressReport`.

Goals from Section 3: continuously revised estimates (every report
re-runs the Section 4.5 refinement), acceptable pacing (periodic ticks),
minimal overhead (counters are a handful of float adds per page/tuple;
refinement runs only at tick time).

With a :class:`repro.obs.bus.TraceBus` attached, the indicator also
explains itself: every ticker fire, speed sample, refinement snapshot
(with the full ``E = p*E2 + (1-p)*E1`` provenance per segment), §4.3
estimate-source transition, and dominant-input switch is emitted as a
typed event.  Without one (the default), every trace hook is a single
``is not None`` test.

**Degrade, don't die** (Section 3's "monitoring must not endanger the
query"): the indicator's ticker callbacks run *inside* the executing
query — the virtual clock fires them mid-``advance`` — so an exception
escaping a refinement pass would abort the query it was merely watching.
Every monitoring entry point therefore catches ``Exception`` at the
boundary: the failing sample is replaced by the last good report (or, if
none exists yet, by the optimizer's initial estimate), the report is
marked ``degraded=True``, a ``degraded`` trace event records the error,
and the query never notices.  ``degraded_count`` tallies the hits.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.config import SystemConfig
from repro.core.history import ProgressLog
from repro.core.report import ProgressReport
from repro.core.segments import build_segments, initial_total_cost_bytes
from repro.core.speed import make_speed_estimator
from repro.errors import ProgressError
from repro.estimators import (
    EstimateSnapshot,
    EstimatorContext,
    estimator_for_refine_mode,
    make_estimator,
)
from repro.estimators.history import HistoryStore
from repro.executor.work import WorkTracker
from repro.obs.bus import TraceBus
from repro.obs.events import (
    CandidateEstimated,
    CardinalityRefined,
    DominantSwitched,
    IndicatorDegraded,
    QueryCancelled,
    QueryFailed,
    QueryFinished,
    QueryShed,
    QueryStarted,
    QueryTimedOut,
    RefinementTick,
    ReportEmitted,
    SegmentMeta,
    SpeedEstimated,
    SpeedSampled,
    TickerFired,
)
from repro.obs.events import InputTrace as _InputTrace
from repro.obs.events import SegmentTrace as _SegmentTrace
from repro.planner.optimizer import PlannedQuery
from repro.sim.clock import VirtualClock


class ProgressIndicator:
    """Monitors one query execution on a virtual clock."""

    def __init__(
        self,
        planned: PlannedQuery,
        clock: VirtualClock,
        config: Optional[SystemConfig] = None,
        on_report: Optional[Callable[[ProgressReport], None]] = None,
        trace: Optional[TraceBus] = None,
        label: str = "query",
        estimator: Optional[str] = None,
        history: Optional[HistoryStore] = None,
    ) -> None:
        self._config = config or planned.config
        self._progress_cfg = self._config.progress
        self._page_size = self._config.page_size
        self._clock = clock
        self._on_report = on_report
        self._trace = trace
        self._label = label

        self.segments = build_segments(planned.root)
        # Pre-execution invariant gate (warn by default, strict in tests).
        # Imported lazily: repro.analysis depends on repro.core.segments.
        from repro.analysis.gate import gate_segments

        gate_segments(planned.root, self.segments, config=self._config)
        self.tracker = WorkTracker(
            num_inputs=[len(s.inputs) for s in self.segments],
            final_segment=self.segments[-1].id,
            clock=clock,
        )
        self.tracker.trace = trace
        # Which estimation strategy runs this query: the explicit submit
        # argument wins, else ProgressConfig.estimator.  The legacy
        # refine_mode ablation knob keeps working by mapping its
        # non-default values onto the matching registered estimator
        # ("optimizer" -> tgn, "extrapolate" -> dne) — a bad mode must
        # still raise here even when an explicit estimator overrides it.
        mode_estimator = estimator_for_refine_mode(self._progress_cfg.refine_mode)
        name = estimator if estimator is not None else self._progress_cfg.estimator
        if estimator is None and name == "paper" and mode_estimator != "paper":
            name = mode_estimator
        self.estimator_name = name
        self.estimator = make_estimator(
            name, self.segments, self.tracker,
            EstimatorContext(history=history),
        )
        self._speed = make_speed_estimator(
            self._progress_cfg.speed_estimator,
            self._progress_cfg.speed_window,
            self._progress_cfg.decay_alpha,
        )
        #: The optimizer's initial total cost, in U (pages) — what a trivial
        #: optimizer-based indicator would use for its whole life.
        self.initial_cost_pages = (
            initial_total_cost_bytes(self.segments) / self._page_size
        )

        self.started_at = clock.now
        self.reports: list[ProgressReport] = []
        self._finalized = False
        #: Monitoring failures absorbed at the degrade boundary.
        self.degraded_count = 0
        #: Re-entrancy guard: a report tick must never nest inside another
        #: (several indicators share one clock under the scheduler, and a
        #: refinement pass touches shared tracker state).
        self._sampling = False
        #: Last seen estimate source per (segment, input) and last deciding
        #: dominant input per segment — for trace transition events only.
        self._last_sources: dict[tuple[int, int], str] = {}
        self._last_rows: dict[tuple[int, int], float] = {}
        self._last_dominant: dict[int, Optional[int]] = {}

        if trace is not None:
            trace.emit(
                QueryStarted(
                    t=clock.now,
                    label=label,
                    num_segments=len(self.segments),
                    initial_cost_pages=self.initial_cost_pages,
                    segments=tuple(
                        SegmentMeta(
                            id=s.id,
                            label=s.label,
                            final=s.final,
                            inputs=tuple(
                                (i.kind, i.label, i.dominant, i.child_segment)
                                for i in s.inputs
                            ),
                            est_output_rows=s.est_output_rows,
                            est_cost_bytes=s.initial_cost_bytes(),
                        )
                        for s in self.segments
                    ),
                )
            )

        interval = self._progress_cfg.speed_sample_interval
        self._speed.record(clock.now, 0.0)
        self._speed_ticker = clock.add_ticker(interval, self._sample_speed)
        self._report_ticker = clock.add_ticker(
            self._progress_cfg.update_interval, self._sample_report
        )

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` or :meth:`abort` already ran.

        Terminal-transition paths (scheduler, service) check this before
        aborting so an indicator is never finalized twice — the
        exactly-once contract the chaos harness verifies.
        """
        return self._finalized

    # ------------------------------------------------------------------
    # ticker callbacks

    def _sample_speed(self, t: float) -> None:
        try:
            done_pages = self.tracker.total_done_bytes / self._page_size
            self._speed.record(t, done_pages)
            if self._trace is not None:
                self._trace.emit(TickerFired(
                    t=t, name="speed",
                    interval=self._progress_cfg.speed_sample_interval,
                ))
                self._trace.emit(SpeedSampled(t=t, cumulative_pages=done_pages))
                self._trace.emit(SpeedEstimated(
                    t=t, estimator=self._speed.kind,
                    pages_per_sec=self._speed.speed(),
                ))
        except Exception as exc:  # noqa: REPRO007 - degrade boundary: a
            # broken speed sample is dropped; the query must not notice.
            self._note_degraded(t, phase="speed", fallback="skip", error=exc)

    def _sample_report(self, t: float) -> None:
        if self._sampling:
            return
        self._sampling = True
        try:
            if self._trace is not None:
                self._trace.emit(TickerFired(
                    t=t, name="report", interval=self._progress_cfg.update_interval
                ))
            self.reports.append(self._safe_record(t, finished=False))
            if self._on_report is not None:
                try:
                    self._on_report(self.reports[-1])
                except Exception as exc:  # noqa: REPRO007 - degrade
                    # boundary: a broken user callback must not unwind
                    # the query the ticker fired inside of.
                    self._note_degraded(
                        t, phase="on_report", fallback="skip", error=exc
                    )
        except Exception as exc:  # noqa: REPRO007 - outermost degrade
            # boundary: even a failure in the fallback path itself is
            # absorbed; this tick is simply lost.
            self._note_degraded(t, phase="report", fallback="skip", error=exc)
        finally:
            self._sampling = False

    # ------------------------------------------------------------------
    # reporting

    def _build_report(
        self, t: float, snapshot: EstimateSnapshot, finished: bool
    ) -> ProgressReport:
        elapsed = t - self.started_at
        speed = self._speed.speed()
        if elapsed < self._progress_cfg.warmup:
            speed = None  # the indicator "watches" before first estimate
        remaining = snapshot.remaining_seconds(self._page_size, speed)
        done, total, _ = snapshot.pages(self._page_size)
        return ProgressReport(
            time=t,
            elapsed=elapsed,
            done_pages=done,
            est_cost_pages=total,
            fraction_done=snapshot.fraction_done,
            speed_pages_per_sec=speed,
            est_remaining_seconds=remaining,
            current_segment=snapshot.current_segment,
            finished=finished,
            estimator=self.estimator.provenance,
        )

    def _safe_record(self, t: float, finished: bool) -> ProgressReport:
        """One refinement pass behind the degrade boundary.

        Any ``Exception`` out of the snapshot / provenance / report path
        is absorbed and a fallback report served instead — the query the
        ticker fired inside of must never see monitoring errors.
        """
        try:
            return self._record_report(t, finished)
        except Exception as exc:  # noqa: REPRO007 - degrade boundary
            report = self._degrade(t, finished, phase="refine", error=exc)
            try:
                self._emit_report(t, report)
            except Exception:  # noqa: REPRO007 - last-ditch: tracing the
                # fallback report must not endanger the query either.
                pass
            return report

    def _degrade(
        self, t: float, finished: bool, phase: str, error: Exception
    ) -> ProgressReport:
        """Serve a fallback report after a monitoring failure.

        Preference order: the last good report (re-stamped to the current
        instant), else the optimizer's initial estimate with whatever the
        raw work counters say — the same information a plain
        optimizer-cost indicator would have.
        """
        last = next(
            (r for r in reversed(self.reports) if not r.degraded), None
        )
        if last is not None:
            fallback = "last_report"
            report = replace(
                last, time=t, elapsed=t - self.started_at,
                finished=finished, degraded=True,
            )
        else:
            fallback = "optimizer"
            done = self.tracker.total_done_bytes / self._page_size
            total = max(self.initial_cost_pages, done)
            report = ProgressReport(
                time=t,
                elapsed=t - self.started_at,
                done_pages=done,
                est_cost_pages=total,
                fraction_done=done / total if total > 0 else 0.0,
                speed_pages_per_sec=None,
                est_remaining_seconds=None,
                current_segment=None,
                finished=finished,
                degraded=True,
            )
        self._note_degraded(t, phase=phase, fallback=fallback, error=error)
        return report

    def _note_degraded(
        self, t: float, phase: str, fallback: str, error: Exception
    ) -> None:
        """Count one absorbed monitoring failure and (best-effort) trace it."""
        self.degraded_count += 1
        if self._trace is not None:
            try:
                self._trace.emit(IndicatorDegraded(
                    t=t, phase=phase, fallback=fallback, error=repr(error),
                ))
            except Exception:  # noqa: REPRO007 - last-ditch: even tracing
                # the degradation must not endanger the query.
                pass

    def _record_report(self, t: float, finished: bool) -> ProgressReport:
        """One refinement pass: trace provenance, then build the report."""
        snapshot = self.estimator.snapshot()
        if self._trace is not None:
            self._emit_refinement(t, snapshot)
        report = self._build_report(t, snapshot, finished)
        self._emit_report(t, report)
        self._emit_candidates(t)
        return report

    def _emit_report(self, t: float, report: ProgressReport) -> None:
        """Trace one displayed report (fresh or degraded fallback).

        Degraded fallbacks are emitted too — the trace must record exactly
        what the indicator displayed, and the accuracy scorer relies on the
        ``degraded`` flag to exclude them from error metrics.
        """
        if self._trace is None:
            return
        self._trace.emit(ReportEmitted(
            t=t,
            elapsed=report.elapsed,
            done_pages=report.done_pages,
            est_cost_pages=report.est_cost_pages,
            fraction_done=report.fraction_done,
            speed_pages_per_sec=report.speed_pages_per_sec,
            est_remaining_seconds=report.est_remaining_seconds,
            current_segment=report.current_segment,
            finished=report.finished,
            degraded=report.degraded,
            estimator=report.estimator,
        ))

    def _emit_candidates(self, t: float) -> None:
        """Trace every racing candidate's estimate (ensemble runs only).

        One :class:`CandidateEstimated` per candidate per report tick —
        the per-estimator audit and the leaderboard's per-estimator
        columns are scored entirely from this stream.  Remaining-time
        uses the same speed/warmup rule as the displayed report, so the
        candidates differ only by their cost estimates.
        """
        if self._trace is None:
            return
        candidates = self.estimator.candidate_estimates()
        if not candidates:
            return
        elapsed = t - self.started_at
        speed = self._speed.speed()
        if elapsed < self._progress_cfg.warmup:
            speed = None
        for cand in candidates:
            done = cand.done_bytes / self._page_size
            total = cand.est_total_bytes / self._page_size
            remaining = None
            if speed is not None and speed > 0:
                remaining = max(total - done, 0.0) / speed
            self._trace.emit(CandidateEstimated(
                t=t,
                estimator=cand.name,
                elapsed=elapsed,
                done_pages=done,
                est_cost_pages=total,
                fraction_done=cand.fraction_done,
                est_remaining_seconds=remaining,
                selected=cand.selected,
                score=cand.score,
            ))

    def _emit_refinement(self, t: float, snapshot: EstimateSnapshot) -> None:
        """Emit the per-tick §4.5 provenance and §4.3 transitions."""
        trace = self._trace
        assert trace is not None
        segment_traces: list[_SegmentTrace] = []
        for est in snapshot.segments:
            seg_id = est.spec.id
            input_traces: list[_InputTrace] = []
            for inp in est.inputs:
                key = (seg_id, inp.index)
                previous = self._last_sources.get(key)
                if previous is not None and previous != inp.source:
                    trace.emit(CardinalityRefined(
                        t=t,
                        segment_id=seg_id,
                        input_index=inp.index,
                        label=inp.label,
                        source_from=previous,
                        source_to=inp.source,
                        est_rows_from=self._last_rows.get(key, 0.0),
                        est_rows_to=inp.est_rows,
                    ))
                self._last_sources[key] = inp.source
                self._last_rows[key] = inp.est_rows
                input_traces.append(_InputTrace(
                    index=inp.index,
                    label=inp.label,
                    dominant=inp.dominant,
                    q=inp.progress,
                    rows_read=inp.rows_read,
                    est_rows=inp.est_rows,
                    source=inp.source,
                ))
            if est.status == "running":
                previous_dom = self._last_dominant.get(seg_id)
                if (
                    est.dominant_input is not None
                    and previous_dom is not None
                    and previous_dom != est.dominant_input
                ):
                    trace.emit(DominantSwitched(
                        t=t,
                        segment_id=seg_id,
                        from_input=previous_dom,
                        to_input=est.dominant_input,
                    ))
                if est.dominant_input is not None:
                    self._last_dominant[seg_id] = est.dominant_input
            segment_traces.append(_SegmentTrace(
                segment_id=seg_id,
                status=est.status,
                p=est.p,
                e1=est.e1,
                e2=est.e2,
                estimate=est.est_output_rows,
                dominant_input=est.dominant_input,
                est_cost_bytes=est.est_cost_bytes,
                done_bytes=est.done_bytes,
                inputs=tuple(input_traces),
            ))
        trace.emit(RefinementTick(
            t=t,
            segments=tuple(segment_traces),
            est_total_bytes=snapshot.est_total_bytes,
            done_bytes=snapshot.done_bytes,
            current_segment=snapshot.current_segment,
        ))

    def report(self, at: Optional[float] = None, finished: bool = False) -> ProgressReport:
        """Build a report from the current refinement snapshot.

        Behind the same degrade boundary as the periodic ticks: a broken
        refinement yields a fallback report, never an exception.
        """
        t = self._clock.now if at is None else at
        try:
            return self._build_report(t, self.estimator.snapshot(), finished)
        except Exception as exc:  # noqa: REPRO007 - degrade boundary
            return self._degrade(t, finished, phase="report", error=exc)

    def snapshot(self) -> EstimateSnapshot:
        """Expose the raw refinement snapshot (tests, dashboards)."""
        return self.estimator.snapshot()

    def describe_segments(self) -> str:
        """Per-segment progress table (the "looking inside" view)."""
        from repro.core.breakdown import render_breakdown, segment_progress

        rows = segment_progress(self.snapshot(), self._page_size, self.tracker)
        return render_breakdown(rows)

    def finalize(self) -> ProgressLog:
        """Stop sampling and return the full progress history."""
        if self._finalized:
            raise ProgressError("indicator already finalized")
        self._finalized = True
        self._speed_ticker.cancel()
        self._report_ticker.cancel()
        final = self._safe_record(self._clock.now, finished=True)
        self.reports.append(final)
        try:
            # Let the estimator learn from the completed run (the history
            # estimator feeds actual cardinalities back into its store).
            # Only on clean completion — abort() skips this on purpose:
            # interrupted counters are not ground truth.
            self.estimator.on_finish()
        except Exception as exc:  # noqa: REPRO007 - degrade boundary:
            # failed learning must not break query completion.
            self._note_degraded(
                self._clock.now, phase="on_finish", fallback="skip", error=exc
            )
        if self._trace is not None:
            self._trace.emit(QueryFinished(
                t=self._clock.now,
                elapsed=self._clock.now - self.started_at,
                done_pages=self.tracker.total_done_bytes / self._page_size,
                actual_cost_pages=final.est_cost_pages,
            ))
        return ProgressLog(
            reports=list(self.reports),
            started_at=self.started_at,
            finished_at=self._clock.now,
            initial_cost_pages=self.initial_cost_pages,
        )

    def abort(
        self,
        reason: str = "cancelled",
        error: Optional[BaseException] = None,
    ) -> ProgressLog:
        """Stop sampling on an abnormal end; the query never finished.

        Unlike :meth:`finalize`, the last report keeps ``finished=False``
        (the work counters stay wherever the unwound executor left
        them), and the trace records the terminal event matching
        ``reason`` — :class:`QueryCancelled`, :class:`QueryTimedOut`
        (``"timeout"``), :class:`QueryFailed` (``"failed"``) or
        :class:`QueryShed` (``"shed"``, the service's load-shedding
        eviction) — rather than ``QueryFinished``: the audit must not
        treat the final snapshot as ground truth.
        """
        if reason not in ("cancelled", "timeout", "failed", "shed"):
            raise ProgressError(f"unknown abort reason {reason!r}")
        if self._finalized:
            raise ProgressError("indicator already finalized")
        self._finalized = True
        self._speed_ticker.cancel()
        self._report_ticker.cancel()
        final = self._safe_record(self._clock.now, finished=False)
        self.reports.append(final)
        if self._trace is not None:
            now = self._clock.now
            elapsed = now - self.started_at
            done_pages = self.tracker.total_done_bytes / self._page_size
            if reason == "timeout":
                self._trace.emit(QueryTimedOut(
                    t=now, elapsed=elapsed, done_pages=done_pages,
                    fraction_done=final.fraction_done,
                ))
            elif reason == "shed":
                self._trace.emit(QueryShed(
                    t=now, elapsed=elapsed, done_pages=done_pages,
                    fraction_done=final.fraction_done,
                    reason="<unknown>" if error is None else str(error),
                ))
            elif reason == "failed":
                self._trace.emit(QueryFailed(
                    t=now, elapsed=elapsed, done_pages=done_pages,
                    fraction_done=final.fraction_done,
                    error="<unknown>" if error is None else repr(error),
                ))
            else:
                self._trace.emit(QueryCancelled(
                    t=now, elapsed=elapsed, done_pages=done_pages,
                    fraction_done=final.fraction_done,
                ))
        return ProgressLog(
            reports=list(self.reports),
            started_at=self.started_at,
            finished_at=self._clock.now,
            initial_cost_pages=self.initial_cost_pages,
        )
