"""The progress indicator facade.

Attach one to a planned query before execution::

    indicator = ProgressIndicator(planned, clock, config)
    ctx = ExecContext(clock, disk, pool, config, tracker=indicator.tracker)
    run_query(planned, ctx)
    log = indicator.finalize()

While the query runs, two virtual-clock tickers drive the indicator:

* a fine-grained one (default every 1 s) feeding the speed estimator with
  cumulative-work samples, and
* the user-facing one (default every 10 s, the paper's pacing) taking a
  full refinement snapshot and emitting a :class:`ProgressReport`.

Goals from Section 3: continuously revised estimates (every report
re-runs the Section 4.5 refinement), acceptable pacing (periodic ticks),
minimal overhead (counters are a handful of float adds per page/tuple;
refinement runs only at tick time).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import SystemConfig
from repro.core.history import ProgressLog
from repro.core.refine import EstimateSnapshot, ProgressEstimator
from repro.core.report import ProgressReport
from repro.core.segments import build_segments, initial_total_cost_bytes
from repro.core.speed import make_speed_estimator
from repro.errors import ProgressError
from repro.executor.work import WorkTracker
from repro.planner.optimizer import PlannedQuery
from repro.sim.clock import VirtualClock


class ProgressIndicator:
    """Monitors one query execution on a virtual clock."""

    def __init__(
        self,
        planned: PlannedQuery,
        clock: VirtualClock,
        config: Optional[SystemConfig] = None,
        on_report: Optional[Callable[[ProgressReport], None]] = None,
    ) -> None:
        self._config = config or planned.config
        self._progress_cfg = self._config.progress
        self._page_size = self._config.page_size
        self._clock = clock
        self._on_report = on_report

        self.segments = build_segments(planned.root)
        # Pre-execution invariant gate (warn by default, strict in tests).
        # Imported lazily: repro.analysis depends on repro.core.segments.
        from repro.analysis.gate import gate_segments

        gate_segments(planned.root, self.segments, config=self._config)
        self.tracker = WorkTracker(
            num_inputs=[len(s.inputs) for s in self.segments],
            final_segment=self.segments[-1].id,
            clock=clock,
        )
        self.estimator = ProgressEstimator(
            self.segments, self.tracker, refine_mode=self._progress_cfg.refine_mode
        )
        self._speed = make_speed_estimator(
            self._progress_cfg.speed_estimator,
            self._progress_cfg.speed_window,
            self._progress_cfg.decay_alpha,
        )
        #: The optimizer's initial total cost, in U (pages) — what a trivial
        #: optimizer-based indicator would use for its whole life.
        self.initial_cost_pages = (
            initial_total_cost_bytes(self.segments) / self._page_size
        )

        self.started_at = clock.now
        self.reports: list[ProgressReport] = []
        self._finalized = False

        interval = self._progress_cfg.speed_sample_interval
        self._speed.record(clock.now, 0.0)
        self._speed_ticker = clock.add_ticker(interval, self._sample_speed)
        self._report_ticker = clock.add_ticker(
            self._progress_cfg.update_interval, self._sample_report
        )

    # ------------------------------------------------------------------
    # ticker callbacks

    def _sample_speed(self, t: float) -> None:
        self._speed.record(t, self.tracker.total_done_bytes / self._page_size)

    def _sample_report(self, t: float) -> None:
        self.reports.append(self.report(at=t))
        if self._on_report is not None:
            self._on_report(self.reports[-1])

    # ------------------------------------------------------------------
    # reporting

    def report(self, at: Optional[float] = None, finished: bool = False) -> ProgressReport:
        """Build a report from the current refinement snapshot."""
        t = self._clock.now if at is None else at
        snapshot = self.estimator.snapshot()
        elapsed = t - self.started_at

        speed = self._speed.speed()
        if elapsed < self._progress_cfg.warmup:
            speed = None  # the indicator "watches" before first estimate
        remaining = None
        if speed is not None and speed > 0:
            _done, _total, remaining_pages = snapshot.pages(self._page_size)
            remaining = remaining_pages / speed

        done, total, _ = snapshot.pages(self._page_size)
        return ProgressReport(
            time=t,
            elapsed=elapsed,
            done_pages=done,
            est_cost_pages=total,
            fraction_done=snapshot.fraction_done,
            speed_pages_per_sec=speed,
            est_remaining_seconds=remaining,
            current_segment=snapshot.current_segment,
            finished=finished,
        )

    def snapshot(self) -> EstimateSnapshot:
        """Expose the raw refinement snapshot (tests, dashboards)."""
        return self.estimator.snapshot()

    def describe_segments(self) -> str:
        """Per-segment progress table (the "looking inside" view)."""
        from repro.core.breakdown import render_breakdown, segment_progress

        rows = segment_progress(self.snapshot(), self._page_size, self.tracker)
        return render_breakdown(rows)

    def finalize(self) -> ProgressLog:
        """Stop sampling and return the full progress history."""
        if self._finalized:
            raise ProgressError("indicator already finalized")
        self._finalized = True
        self._speed_ticker.cancel()
        self._report_ticker.cancel()
        final = self.report(finished=True)
        self.reports.append(final)
        return ProgressLog(
            reports=list(self.reports),
            started_at=self.started_at,
            finished_at=self._clock.now,
            initial_cost_pages=self.initial_cost_pages,
        )
