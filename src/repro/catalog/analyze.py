"""ANALYZE: the statistics collection program of Section 5.1.

A full cost-free scan of the heap (statistics collection happens before the
experiment clock starts, like the paper running PostgreSQL's collector
before each test).  Distinct counts are exact at this engine's scales; a
real system would sample, but the optimizer consumes only the resulting
numbers, so exactness does not change any downstream behaviour the paper
depends on — the interesting estimation *errors* come from default
selectivities and correlation, not from sampling noise.
"""

from __future__ import annotations

from repro.catalog.catalog import Table
from repro.catalog.statistics import ColumnStatistics, Histogram, TableStatistics


def analyze_table(table: Table, histogram_buckets: int = 20) -> TableStatistics:
    """Scan ``table`` and attach fresh :class:`TableStatistics` to it."""
    heap = table.heap
    schema = heap.schema
    ncols = len(schema)
    values: list[list] = [[] for _ in range(ncols)]
    nulls = [0] * ncols
    row_count = 0
    for row in heap.iter_rows():
        row_count += 1
        for i in range(ncols):
            v = row[i]
            if v is None:
                nulls[i] += 1
            else:
                values[i].append(v)

    columns: dict[str, ColumnStatistics] = {}
    for i, col in enumerate(schema.columns):
        col_values = values[i]
        null_fraction = nulls[i] / row_count if row_count else 0.0
        if col_values:
            distinct = len(set(col_values))
            width_sum = sum(col.type.width(v) for v in col_values)
            width_sum += nulls[i] * col.type.width(None)
            stats = ColumnStatistics(
                name=col.name,
                num_distinct=distinct,
                null_fraction=null_fraction,
                min_value=min(col_values),
                max_value=max(col_values),
                histogram=Histogram.from_values(col_values, histogram_buckets),
                avg_width=width_sum / row_count,
            )
        else:
            stats = ColumnStatistics(
                name=col.name,
                num_distinct=0,
                null_fraction=null_fraction,
                avg_width=col.type.width(None),
            )
        columns[col.name] = stats

    avg_width = heap.avg_tuple_width()
    table.statistics = TableStatistics(
        row_count=row_count, avg_width=avg_width, columns=columns
    )
    return table.statistics
