"""Catalog and statistics: table metadata and ANALYZE results.

The paper's experiments run "the PostgreSQL statistics collection program on
all the five relations" before every test (Section 5.1).  This package is
that program: :func:`~repro.catalog.analyze.analyze_table` scans a heap and
records row counts, average widths, per-column distinct counts and
equi-depth histograms, which the optimizer consumes for its initial
estimates — the estimates the progress indicator starts from and then
corrects at run time.
"""

from repro.catalog.analyze import analyze_table
from repro.catalog.catalog import Catalog, Table
from repro.catalog.statistics import ColumnStatistics, Histogram, TableStatistics

__all__ = [
    "Catalog",
    "Table",
    "TableStatistics",
    "ColumnStatistics",
    "Histogram",
    "analyze_table",
]
