"""The system catalog: named tables, their heaps, indexes and statistics."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import CatalogError
from repro.storage.disk import SimulatedDisk
from repro.storage.heap import HeapFile
from repro.storage.index import BTreeIndex
from repro.storage.schema import Schema

from repro.catalog.statistics import TableStatistics


class Table:
    """A base relation: heap storage plus optional indexes and statistics."""

    def __init__(self, name: str, heap: HeapFile):
        self.name = name
        self.heap = heap
        #: Indexes keyed by the indexed column name.
        self.indexes: dict[str, BTreeIndex] = {}
        #: Populated by ANALYZE; None means "never analyzed".
        self.statistics: Optional[TableStatistics] = None

    @property
    def schema(self) -> Schema:
        return self.heap.schema

    @property
    def num_tuples(self) -> int:
        return self.heap.num_tuples

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    def index_on(self, column: str) -> Optional[BTreeIndex]:
        """The index on ``column``, or None if the column is unindexed."""
        return self.indexes.get(column)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, tuples={self.num_tuples}, pages={self.num_pages})"


class Catalog:
    """All tables known to one database instance."""

    def __init__(self, disk: SimulatedDisk, page_size: int):
        self._disk = disk
        self._page_size = page_size
        self._tables: dict[str, Table] = {}

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create an empty table; fails if the name exists."""
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        heap = HeapFile(name, schema, self._disk, self._page_size)
        table = Table(key, heap)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and release its heap storage."""
        table = self.get_table(name)
        table.heap.drop()
        del self._tables[name.lower()]

    def get_table(self, name: str) -> Table:
        """Look a table up by (case-insensitive) name; raises CatalogError."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name.lower() in self._tables

    def tables(self) -> Iterable[Table]:
        """All tables in creation order."""
        return self._tables.values()

    def create_index(self, table_name: str, column: str, name: Optional[str] = None) -> BTreeIndex:
        """Build a B-tree index on one column of an existing table."""
        table = self.get_table(table_name)
        if not table.schema.has_column(column):
            raise CatalogError(f"table {table_name!r} has no column {column!r}")
        if column in table.indexes:
            raise CatalogError(f"index on {table_name}.{column} already exists")
        index = BTreeIndex(
            name or f"{table.name}_{column}_idx", table.heap, column, self._page_size
        )
        table.indexes[column] = index
        return index
