"""Statistics objects produced by ANALYZE and consumed by the optimizer."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


class Histogram:
    """An equi-depth histogram over the non-null values of one column.

    ``bounds`` holds ``num_buckets + 1`` boundary values; each bucket holds
    (approximately) the same number of rows.  ``fraction_below`` linearly
    interpolates inside numeric buckets, mirroring PostgreSQL's treatment
    of its own equi-depth histograms.
    """

    def __init__(self, bounds: Sequence[Any]):
        if len(bounds) < 2:
            raise ValueError("histogram needs at least two bounds")
        self.bounds = list(bounds)

    @classmethod
    def from_values(cls, values: Sequence[Any], num_buckets: int) -> Optional["Histogram"]:
        """Build from raw values; returns None when there is nothing to bin."""
        data = sorted(v for v in values if v is not None)
        if not data:
            return None
        buckets = max(1, min(num_buckets, len(data)))
        bounds = [data[0]]
        for i in range(1, buckets):
            bounds.append(data[(i * len(data)) // buckets])
        bounds.append(data[-1])
        return cls(bounds)

    @property
    def num_buckets(self) -> int:
        return len(self.bounds) - 1

    def fraction_below(self, value: Any, inclusive: bool = False) -> float:
        """Estimated fraction of values ``< value`` (``<=`` when inclusive).

        Interpolation inside a bucket is linear for numeric bounds and
        bucket-granular otherwise.
        """
        bounds = self.bounds
        if inclusive:
            idx = bisect.bisect_right(bounds, value)
        else:
            idx = bisect.bisect_left(bounds, value)
        if idx == 0:
            return 0.0
        if idx >= len(bounds):
            return 1.0
        lo, hi = bounds[idx - 1], bounds[idx]
        within = 0.0
        if isinstance(lo, (int, float)) and isinstance(hi, (int, float)) and hi > lo:
            within = min(1.0, max(0.0, (value - lo) / (hi - lo)))
        return ((idx - 1) + within) / self.num_buckets

    def __repr__(self) -> str:
        return f"Histogram({self.num_buckets} buckets, [{self.bounds[0]!r}..{self.bounds[-1]!r}])"


@dataclass
class ColumnStatistics:
    """ANALYZE output for one column."""

    name: str
    num_distinct: int
    null_fraction: float
    min_value: Any = None
    max_value: Any = None
    histogram: Optional[Histogram] = None
    #: Mean stored width of this column's values in bytes.
    avg_width: float = 4.0

    def selectivity_eq(self, value: Any) -> float:
        """Estimated fraction of rows with column = value."""
        if value is None:
            return self.null_fraction
        if self.num_distinct <= 0:
            return 0.0
        out_of_range = (
            self.min_value is not None
            and self.max_value is not None
            and isinstance(value, type(self.min_value))
            and not (self.min_value <= value <= self.max_value)
        )
        if out_of_range:
            return 0.0
        return (1.0 - self.null_fraction) / self.num_distinct

    def selectivity_cmp(self, op: str, value: Any) -> float:
        """Estimated fraction of rows satisfying ``column <op> value``."""
        if value is None:
            return 0.0
        nonnull = 1.0 - self.null_fraction
        if op == "=":
            return self.selectivity_eq(value)
        if op in ("<>", "!="):
            return max(0.0, nonnull - self.selectivity_eq(value))
        if self.histogram is None:
            # No distribution information: fall back to a moderate guess.
            return nonnull / 3.0
        below_exc = self.histogram.fraction_below(value, inclusive=False)
        below_inc = self.histogram.fraction_below(value, inclusive=True)
        if op == "<":
            frac = below_exc
        elif op == "<=":
            frac = below_inc
        elif op == ">":
            frac = 1.0 - below_inc
        elif op == ">=":
            frac = 1.0 - below_exc
        else:
            raise ValueError(f"unsupported comparison operator: {op!r}")
        return min(1.0, max(0.0, frac)) * nonnull


@dataclass
class TableStatistics:
    """ANALYZE output for one table."""

    row_count: int
    avg_width: float
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> Optional[ColumnStatistics]:
        """Statistics of one column, or None if it was never analyzed."""
        return self.columns.get(name)

    def total_bytes(self) -> float:
        """Estimated total table size in bytes (rows x average width)."""
        return self.row_count * self.avg_width
