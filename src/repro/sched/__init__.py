"""Cooperative multi-query scheduling on one shared virtual clock.

The executor yields :data:`~repro.executor.base.PULSE` markers at
bounded-work boundaries; this package turns those markers into a
scheduler: N in-flight queries interleave in work quanta on one
:class:`~repro.database.Database`, each with its own progress indicator,
progress log and trace stream, while contention for the shared clock and
buffer pool produces the speed dips the paper induced synthetically.

Entry points:

* :class:`CooperativeScheduler` — submit/step/run/cancel.
* :mod:`repro.sched.policy` — round-robin, priority and weighted
  fair-share policies.
* ``python -m repro.sched.demo`` — a runnable smoke demo.

The thread-based :class:`repro.core.concurrent.ConcurrentWorkload`
predates this package and remains for the clock-gate experiments; new
code should use the scheduler (or the :class:`repro.api.Session` facade
on top of it).
"""

from repro.sched.policy import (
    PriorityPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    WeightedFairPolicy,
    make_policy,
)
from repro.sched.scheduler import DEFAULT_QUANTUM_PAGES, CooperativeScheduler
from repro.sched.task import (
    CANCELLED,
    DONE_STATES,
    FAILED,
    FINISHED,
    PENDING,
    RUNNABLE_STATES,
    RUNNING,
    SHED,
    SUSPENDED,
    TIMED_OUT,
    QueryTask,
    SliceRecord,
)

__all__ = [
    "CANCELLED",
    "DEFAULT_QUANTUM_PAGES",
    "DONE_STATES",
    "FAILED",
    "FINISHED",
    "PENDING",
    "RUNNABLE_STATES",
    "RUNNING",
    "SHED",
    "SUSPENDED",
    "TIMED_OUT",
    "CooperativeScheduler",
    "PriorityPolicy",
    "QueryTask",
    "RoundRobinPolicy",
    "SchedulingPolicy",
    "SliceRecord",
    "WeightedFairPolicy",
    "make_policy",
]
