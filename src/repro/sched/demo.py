"""Runnable scheduler smoke demo: ``python -m repro.sched.demo``.

Loads a small TPC-R instance, submits several of the paper's queries to
one :class:`~repro.sched.CooperativeScheduler`, runs them interleaved,
and prints the per-query outcome plus interleaving evidence (slice
counts and overlapping virtual-time spans).  CI runs this at concurrency
4 as the concurrency smoke test.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.exporters import chrome_trace_concurrent, overlapping_query_spans
from repro.sched.scheduler import DEFAULT_QUANTUM_PAGES, CooperativeScheduler
from repro.workloads.queries import PAPER_QUERIES
from repro.workloads.tpcr import build_database

#: Submission order for the demo: scan-heavy and join-heavy mixed.
_DEMO_ROTATION = ["Q1", "Q2", "Q3", "Q4"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sched.demo",
        description="Cooperative multi-query scheduler smoke demo.",
    )
    parser.add_argument(
        "--queries", type=int, default=4,
        help="number of concurrent queries to submit (default 4)",
    )
    parser.add_argument(
        "--policy", choices=["round_robin", "priority"], default="round_robin",
        help="scheduling policy (default round_robin)",
    )
    parser.add_argument(
        "--quantum", type=int, default=DEFAULT_QUANTUM_PAGES,
        help=f"slice budget in pages of U (default {DEFAULT_QUANTUM_PAGES})",
    )
    parser.add_argument(
        "--scale", type=float, default=0.004,
        help="TPC-R scale factor (default 0.004, a few seconds of work)",
    )
    args = parser.parse_args(argv)
    if args.queries < 1:
        parser.error("--queries must be >= 1")

    db = build_database(scale=args.scale, subset_rows=40)
    sched = CooperativeScheduler(db, policy=args.policy, quantum_pages=args.quantum)

    for i in range(args.queries):
        qname = _DEMO_ROTATION[i % len(_DEMO_ROTATION)]
        sched.submit(
            PAPER_QUERIES[qname],
            name=f"{qname.lower()}-{i + 1}",
            trace=True,
            keep_rows=False,
            priority=(i % 2 if args.policy == "priority" else 0),
        )

    tasks = sched.run()

    print(
        f"scheduler: {len(tasks)} queries, policy={sched.policy.name}, "
        f"quantum={sched.quantum_pages} U, {len(sched.slices)} slices, "
        f"clock={db.clock.now:.1f}s virtual"
    )
    failed = 0
    for task in tasks:
        final = task.log.final() if task.log is not None else None
        pct = f"{100.0 * final.fraction_done:5.1f}%" if final else "  n/a "
        io = db.disk.owner_counters(task.name)
        print(
            f"  {task.name:8s} {task.state:9s} {pct} "
            f"rows={task.row_count:7d} slices={len(task.slices):4d} "
            f"reads={io['seq_reads'] + io['random_reads']:5d}"
        )
        if task.state != "finished":
            failed += 1

    doc = chrome_trace_concurrent({
        t.name: list(t.trace_bus.events) for t in tasks if t.trace_bus is not None
    })
    overlaps = overlapping_query_spans(doc)
    print(f"overlapping query spans: {overlaps}")

    if failed:
        print(f"FAIL: {failed} task(s) did not finish", file=sys.stderr)
        return 1
    if len(tasks) > 1 and overlaps == 0:
        print("FAIL: no overlapping query spans (no interleaving)", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
