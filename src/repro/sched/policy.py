"""Scheduling policies: which runnable task gets the next slice.

Policies are pure functions of task state — no randomness, no wall
clock — so a workload replayed with the same submissions and the same
policy produces the identical interleaving (the determinism tests rely
on this).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ProgressError
from repro.sched.task import QueryTask


class SchedulingPolicy:
    """Strategy interface: pick the next task from the runnable set."""

    name = "policy"

    def choose(self, runnable: Sequence[QueryTask]) -> QueryTask:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Fair rotation: the least-recently-sliced runnable task runs next.

    Ties (several tasks never sliced) break on submission order, so the
    very first rotation is first-submitted-first-served.
    """

    name = "round_robin"

    def choose(self, runnable: Sequence[QueryTask]) -> QueryTask:
        return min(runnable, key=lambda t: (t.last_sliced, t.seq))


class PriorityPolicy(SchedulingPolicy):
    """Strict priorities with round-robin inside each priority class.

    Higher ``priority`` always preempts lower at slice boundaries; equal
    priorities share slices fairly.  A long-running low-priority query
    therefore starves while higher-priority work exists — which is the
    point: its progress indicator keeps reporting, and its estimated
    remaining time grows, making the starvation *visible* (the paper's
    Section 6 load-management motivation).
    """

    name = "priority"

    def choose(self, runnable: Sequence[QueryTask]) -> QueryTask:
        top = max(t.priority for t in runnable)
        return min(
            (t for t in runnable if t.priority == top),
            key=lambda t: (t.last_sliced, t.seq),
        )


class WeightedFairPolicy(SchedulingPolicy):
    """Weighted fair sharing of U across tenants (the service layer's
    fair-share accounting, paper §6).

    Classic weighted-fair-queueing on the work unit U: every slice's
    pages are charged to the task's tenant (``tenant_ref.consumed_pages``,
    maintained by the scheduler), and the next slice goes to the runnable
    task whose tenant has the smallest *virtual time* — consumed U
    divided by tenant weight.  Tenants therefore converge to U shares
    proportional to their weights while they stay backlogged, regardless
    of how many queries each has in flight.

    Two refinements keep it useful standalone:

    * a task with no tenant (submitted outside the service) is its own
      tenant of weight 1 — its ``charged_pages`` is its virtual time —
      so the policy degrades to per-query fairness;
    * shedding demotions double a task's virtual time per demotion
      (halved effective weight): a query predicted to miss its deadline
      yields its slices to ones that can still make it, without being
      starved forever.

    Ties (same virtual time — e.g. several queries of one tenant) break
    round-robin on ``(last_sliced, seq)``, exactly like the base policy,
    so the choice stays deterministic.
    """

    name = "weighted_fair"

    def choose(self, runnable: Sequence[QueryTask]) -> QueryTask:
        def virtual_time(t: QueryTask) -> tuple[float, int, int]:
            ref = t.tenant_ref
            if ref is not None:
                consumed = ref.consumed_pages
                weight = ref.weight if ref.weight > 0 else 1e-9
            else:
                consumed = t.charged_pages
                weight = 1.0
            if t.demotions:
                weight /= 2.0 ** t.demotions
            return (consumed / weight, t.last_sliced, t.seq)

        return min(runnable, key=virtual_time)


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    PriorityPolicy.name: PriorityPolicy,
    WeightedFairPolicy.name: WeightedFairPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by name ("round_robin", "priority" or
    "weighted_fair")."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ProgressError(
            f"unknown scheduling policy {name!r}; "
            f"expected one of {sorted(_POLICIES)}"
        ) from None
    return cls()
