"""Scheduling policies: which runnable task gets the next slice.

Policies are pure functions of task state — no randomness, no wall
clock — so a workload replayed with the same submissions and the same
policy produces the identical interleaving (the determinism tests rely
on this).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ProgressError
from repro.sched.task import QueryTask


class SchedulingPolicy:
    """Strategy interface: pick the next task from the runnable set."""

    name = "policy"

    def choose(self, runnable: Sequence[QueryTask]) -> QueryTask:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Fair rotation: the least-recently-sliced runnable task runs next.

    Ties (several tasks never sliced) break on submission order, so the
    very first rotation is first-submitted-first-served.
    """

    name = "round_robin"

    def choose(self, runnable: Sequence[QueryTask]) -> QueryTask:
        return min(runnable, key=lambda t: (t.last_sliced, t.seq))


class PriorityPolicy(SchedulingPolicy):
    """Strict priorities with round-robin inside each priority class.

    Higher ``priority`` always preempts lower at slice boundaries; equal
    priorities share slices fairly.  A long-running low-priority query
    therefore starves while higher-priority work exists — which is the
    point: its progress indicator keeps reporting, and its estimated
    remaining time grows, making the starvation *visible* (the paper's
    Section 6 load-management motivation).
    """

    name = "priority"

    def choose(self, runnable: Sequence[QueryTask]) -> QueryTask:
        top = max(t.priority for t in runnable)
        return min(
            (t for t in runnable if t.priority == top),
            key=lambda t: (t.last_sliced, t.seq),
        )


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    PriorityPolicy.name: PriorityPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by name ("round_robin" or "priority")."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ProgressError(
            f"unknown scheduling policy {name!r}; "
            f"expected one of {sorted(_POLICIES)}"
        ) from None
    return cls()
