"""Per-query task state for the cooperative scheduler.

A :class:`QueryTask` is one in-flight query: its plan, its (optional)
progress indicator and trace stream, the suspended executor coroutine,
and the history of scheduler slices it has received.  All timestamps are
virtual-clock instants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.core.history import ProgressLog
from repro.core.indicator import ProgressIndicator
from repro.core.report import ProgressReport
from repro.executor.runtime import QueryResult
from repro.obs.bus import SealedTrace, TraceBus
from repro.planner.optimizer import PlannedQuery

#: Task lifecycle states.
PENDING = "pending"       #: submitted, never sliced yet
RUNNING = "running"       #: currently holding the (single) execution slice
SUSPENDED = "suspended"   #: mid-query, waiting for its next slice
FINISHED = "finished"     #: ran to completion
CANCELLED = "cancelled"   #: cancelled before completion
FAILED = "failed"         #: raised out of the executor
TIMED_OUT = "timed_out"   #: exceeded its statement timeout / deadline
SHED = "shed"             #: evicted by the service's load-shedding policy

#: States from which a task can still receive slices.
RUNNABLE_STATES = frozenset({PENDING, SUSPENDED})
#: Terminal states — every task ends in exactly one of these.
DONE_STATES = frozenset({FINISHED, CANCELLED, FAILED, TIMED_OUT, SHED})


@dataclass(frozen=True)
class SliceRecord:
    """One scheduler slice granted to one task (the interleaving log)."""

    #: Global slice sequence number (0-based, scheduler-wide).
    seq: int
    task: str
    started_at: float
    ended_at: float
    #: PULSE markers consumed during the slice.
    pulses: int
    #: Work progress in U (pages) the task's tracker advanced during the
    #: slice; 0.0 for unmonitored tasks.
    pages: float
    #: Why the slice ended: "quantum", "finished", "failed", "timeout".
    reason: str


class QueryTask:
    """One in-flight query owned by a :class:`~repro.sched.CooperativeScheduler`."""

    def __init__(
        self,
        name: str,
        sql: str,
        planned: PlannedQuery,
        gen: Iterator[tuple],
        priority: int = 0,
        indicator: Optional[ProgressIndicator] = None,
        trace: Optional[TraceBus] = None,
        keep_rows: bool = True,
        max_rows: Optional[int] = None,
        seq: int = 0,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.name = name
        self.sql = sql
        self.planned = planned
        self.gen = gen
        self.priority = priority
        self.indicator = indicator
        self.trace_bus = trace
        self.keep_rows = keep_rows
        self.max_rows = max_rows
        #: Submission order; ties in scheduling policies break on this.
        self.seq = seq
        #: Statement timeout in virtual seconds, measured from the task's
        #: first slice; converted to an absolute deadline when it starts.
        self.timeout = timeout
        #: Absolute virtual-clock deadline; the scheduler's watchdog moves
        #: the task to TIMED_OUT once the clock passes it.
        self.deadline = deadline

        self.state = PENDING
        #: DBA load-management block (paper §6): a blocked task keeps its
        #: state but receives no slices until resumed.
        self.blocked = False
        #: Fair-share accounting: tenant name and the tenant registry
        #: entry (an object with ``weight`` and ``consumed_pages``; see
        #: :mod:`repro.service.tenant`).  ``None`` outside the service.
        self.tenant: str = "default"
        self.tenant_ref: Optional[Any] = None
        #: U (pages; pulse-equivalents when unmonitored) charged to this
        #: task across all its slices — the scheduler maintains it so
        #: fair-share policies never rescan the slice log.
        self.charged_pages: float = 0.0
        #: Shedding-policy demotions: each halves the task's effective
        #: fair-share weight (graded deprioritization before eviction).
        self.demotions = 0
        self.rows: list[tuple] = []
        self.row_count = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.slices: list[SliceRecord] = []
        #: Global slice seq of this task's most recent slice (-1 = never);
        #: round-robin picks the least recently run task.
        self.last_sliced = -1
        self.log: Optional[ProgressLog] = None
        self.error: Optional[BaseException] = None
        self.result: Optional[QueryResult] = None
        self._sealed: Optional[SealedTrace] = None

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in DONE_STATES

    @property
    def runnable(self) -> bool:
        return self.state in RUNNABLE_STATES and not self.blocked

    def progress(self) -> Optional[ProgressReport]:
        """The indicator's current report (None for unmonitored tasks)."""
        if self.indicator is None:
            return None
        return self.indicator.report()

    def sealed_trace(self) -> Optional[SealedTrace]:
        """Read-only view of this task's trace stream, if traced.

        While the task is in flight the seal is a snapshot; once the task
        is done the sealed view is cached and stable.
        """
        if self.trace_bus is None:
            return None
        if self.done:
            if self._sealed is None:
                self._sealed = self.trace_bus.seal()
            return self._sealed
        return self.trace_bus.seal()

    def __repr__(self) -> str:
        return (
            f"QueryTask({self.name!r}, state={self.state}, "
            f"slices={len(self.slices)}, rows={self.row_count})"
        )
