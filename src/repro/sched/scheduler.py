"""The cooperative multi-query scheduler.

Interleaves N in-flight queries on one :class:`~repro.database.Database`
— one shared virtual clock, buffer pool and disk — by resuming each
query's executor coroutine for a bounded *slice* of work, then suspending
it at the next PULSE marker (see :mod:`repro.executor.base`).

A slice's budget is the **quantum**, measured in pages of U: a monitored
task is suspended once its own work tracker advanced ``quantum_pages``
since the slice began; unmonitored tasks fall back to counting pulses
(one pulse ≈ one page-equivalent of work).  Which task runs next is the
:mod:`policy's <repro.sched.policy>` call; everything is deterministic,
so the same submissions under the same policy replay the identical
interleaving.

This is where the paper's Section 4.6 "system load" stops being a
synthetic :class:`~repro.sim.load.InterferenceWindow` and becomes real
contention: while query A holds a slice, the shared clock advances, so
query B's speed samples observe stalled work — its indicator reports a
speed dip *because A ran*, not because anyone scripted one.  Likewise
the buffer pool: A's reads evict B's pages, so B pays misses it would
not pay alone.

Per-slice bookkeeping routes shared-resource observability to the right
query: the active task's TraceBus is installed on the disk and buffer
pool (so PageRead/BufferAccess events land in *its* stream), and the
disk's I/O owner label is set to the task name (per-owner counters).

Robustness (the :mod:`repro.fault` layer's contract) lives here too:

* **Containment** — an ``Exception`` escaping one task's executor (e.g.
  an injected :class:`~repro.errors.TransientIOError` whose retry budget
  ran out) fails *that task only*: its state becomes FAILED, its
  coroutine is closed so operator ``finally`` blocks release pins and
  temp files, its indicator is aborted, and the scheduler keeps slicing
  the other queries.  ``KeyboardInterrupt``/``SystemExit`` still
  propagate after the same unwind.
* **Watchdog** — ``submit(timeout=...)`` (relative, from first slice) or
  ``submit(deadline=...)`` (absolute virtual time) arms a per-task
  deadline; the task is moved to TIMED_OUT either mid-slice at the next
  PULSE or, while suspended, by the deadline sweep in :meth:`step`.

Every task therefore ends in exactly one terminal state: FINISHED,
FAILED, CANCELLED, TIMED_OUT or SHED (the service's load-shedding
policy evicted it — see :mod:`repro.service`).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.indicator import ProgressIndicator
from repro.database import Database
from repro.errors import ProgressError, QueryShedError, QueryTimeoutError
from repro.executor.base import PULSE, ExecContext
from repro.executor.batch import Batch
from repro.executor.runtime import QueryResult, execute
from repro.obs.bus import TraceBus
from repro.planner.optimizer import PlannedQuery
from repro.sched.policy import SchedulingPolicy, make_policy
from repro.sched.task import (
    CANCELLED,
    FAILED,
    FINISHED,
    RUNNING,
    SHED,
    SUSPENDED,
    TIMED_OUT,
    QueryTask,
    SliceRecord,
)

#: Default slice budget: pages of U per slice.
DEFAULT_QUANTUM_PAGES = 4


class CooperativeScheduler:
    """Slices many in-flight queries over one shared Database."""

    def __init__(
        self,
        db: Database,
        policy: Union[str, SchedulingPolicy] = "round_robin",
        quantum_pages: int = DEFAULT_QUANTUM_PAGES,
    ) -> None:
        if quantum_pages <= 0:
            raise ProgressError("quantum_pages must be positive")
        self.db = db
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.quantum_pages = quantum_pages
        self.tasks: dict[str, QueryTask] = {}
        #: Non-terminal tasks only, in submission order.  The watchdog
        #: sweep and the runnable scan iterate this instead of ``tasks``,
        #: so a step costs O(in-flight), not O(everything ever submitted)
        #: — the difference between thousands of drained queries being
        #: free and each one taxing every later slice.
        self._active: dict[str, QueryTask] = {}
        #: Every slice granted, in order — the interleaving log the
        #: determinism tests compare across runs.
        self.slices: list[SliceRecord] = []
        #: Called exactly once per task, at its terminal transition —
        #: however the task got there (finish, fail, cancel, timeout,
        #: shed).  The service layer hooks this to settle per-tenant
        #: in-flight cost without rescanning the task table.
        self.on_retire: Optional[Callable[[QueryTask], None]] = None
        self._page_size = db.config.page_size
        self._seq = 0

    # ------------------------------------------------------------------
    # submission

    def submit(
        self,
        query: Union[str, PlannedQuery],
        name: Optional[str] = None,
        monitor: bool = True,
        trace: Union[None, bool, TraceBus] = None,
        priority: int = 0,
        keep_rows: bool = True,
        max_rows: Optional[int] = None,
        on_report=None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        estimator: Optional[str] = None,
    ) -> QueryTask:
        """Register a query as an in-flight task (no work happens yet).

        ``query`` is SQL text or an already-prepared plan.  ``monitor``
        attaches a per-task :class:`ProgressIndicator` (``on_report``,
        if given, observes each of its periodic reports; ``estimator``
        picks the registered estimation strategy for this query,
        defaulting to ``ProgressConfig.estimator``).  ``trace`` is a
        :class:`TraceBus` to record into, ``True`` to create one, or
        ``None`` to follow the config/env default (``REPRO_TRACE``).

        ``timeout`` is a statement timeout in virtual seconds, measured
        from the task's first slice; ``deadline`` is an absolute
        virtual-clock instant.  Either arms the watchdog: past it, the
        task is unwound to the TIMED_OUT state and
        :class:`~repro.errors.QueryTimeoutError` is raised by
        ``result()``.
        """
        if timeout is not None and timeout <= 0:
            raise ProgressError("timeout must be positive")
        if isinstance(query, PlannedQuery):
            planned, sql = query, "<planned>"
        else:
            sql = query
            planned = self.db.prepare(sql)
        if name is None:
            name = f"q{len(self.tasks) + 1}"
        if name in self.tasks:
            raise ProgressError(f"task {name!r} already submitted")

        bus = self._resolve_trace(trace)
        indicator: Optional[ProgressIndicator] = None
        if monitor:
            indicator = ProgressIndicator(
                planned, self.db.clock, self.db.config,
                on_report=on_report, trace=bus, label=name,
                estimator=estimator, history=self.db.history_store,
            )
        else:
            self.db._gate_unmonitored(planned, label=name)
        ctx = ExecContext(
            self.db.clock,
            self.db.disk,
            self.db.buffer_pool,
            self.db.config,
            tracker=None if indicator is None else indicator.tracker,
            trace=bus,
        )
        task = QueryTask(
            name=name,
            sql=sql,
            planned=planned,
            gen=execute(planned, ctx),
            priority=priority,
            indicator=indicator,
            trace=bus,
            keep_rows=keep_rows,
            max_rows=max_rows,
            seq=len(self.tasks),
            timeout=timeout,
            deadline=deadline,
        )
        self.tasks[name] = task
        self._active[name] = task
        return task

    def _resolve_trace(
        self, trace: Union[None, bool, TraceBus]
    ) -> Optional[TraceBus]:
        if isinstance(trace, TraceBus):
            return trace
        if trace is True:
            return TraceBus()
        if trace is False:
            return None
        from repro.obs import resolve_trace_enabled

        return TraceBus() if resolve_trace_enabled(self.db.config) else None

    # ------------------------------------------------------------------
    # driving

    @property
    def runnable(self) -> list[QueryTask]:
        """Tasks that can receive a slice, in submission order."""
        return [t for t in self._active.values() if t.runnable]

    def step(self) -> Optional[QueryTask]:
        """Grant one slice to the policy's pick; None if nothing runnable.

        Before picking, the watchdog sweep times out any suspended task
        whose deadline the shared clock has already passed (time spent in
        *other* queries' slices counts against a statement timeout —
        that is what makes it a wall-clock deadline, not a CPU budget).
        """
        self._expire_deadlines()
        runnable = self.runnable
        if not runnable:
            return None
        task = self.policy.choose(runnable)
        self._run_slice(task)
        return task

    def _expire_deadlines(self) -> None:
        now = self.db.clock.now
        # Snapshot: _timeout() retires tasks from the active index.
        for task in list(self._active.values()):
            if (
                task.deadline is not None
                and not task.done
                and task.state != RUNNING
                and now >= task.deadline
            ):
                self._timeout(task)

    def run(self) -> list[QueryTask]:
        """Slice until every task reached a terminal state."""
        while self.step() is not None:
            pass
        return list(self.tasks.values())

    def run_until(self, task: QueryTask) -> QueryTask:
        """Slice (all tasks, per policy) until ``task`` is done.

        Other in-flight tasks keep making progress — that is the
        cooperative model: waiting on one query's result pumps the whole
        workload.
        """
        if task.name not in self.tasks:
            raise ProgressError(f"unknown task {task.name!r}")
        while not task.done:
            if self.step() is None:
                # The watchdog sweep inside step() may have timed the
                # target out without granting anyone a slice.
                if task.done:
                    break
                # e.g. the target task is suspended
                raise ProgressError(
                    f"task {task.name!r} cannot finish: nothing runnable"
                )
        return task

    def suspend(self, task: Union[str, QueryTask]) -> QueryTask:
        """Block a task from receiving slices (DBA load management, §6).

        The task keeps all mid-query state — pins, runs, indicator — and
        the shared clock keeps moving while others run, so its indicator
        honestly reports the blocked time.  :meth:`resume` lifts the block.
        """
        task = self._lookup(task)
        task.blocked = True
        return task

    def resume(self, task: Union[str, QueryTask]) -> QueryTask:
        """Lift a :meth:`suspend` block; the task is schedulable again."""
        task = self._lookup(task)
        task.blocked = False
        return task

    def _lookup(self, task: Union[str, QueryTask]) -> QueryTask:
        if isinstance(task, str):
            try:
                return self.tasks[task]
            except KeyError:
                raise ProgressError(f"unknown task {task!r}") from None
        return task

    def cancel(self, task: Union[str, QueryTask]) -> QueryTask:
        """Cancel an in-flight task.

        Closing the suspended coroutine unwinds the operator tree's
        ``finally`` blocks mid-segment — buffer pins are released, temp
        files dropped — and the indicator is aborted: its last report
        keeps ``finished=False`` and the trace records ``QueryCancelled``.
        """
        task = self._lookup(task)
        if task.done:
            return task
        if task.state == RUNNING:  # pragma: no cover - single-threaded guard
            raise ProgressError(f"task {task.name!r} is mid-slice")
        self._terminate(task, CANCELLED, abort_reason="cancelled")
        return task

    def shed(
        self, task: Union[str, QueryTask], reason: str = "deadline"
    ) -> QueryTask:
        """Evict an in-flight task (service load-shedding, paper §6).

        Same cooperative unwind as :meth:`cancel` — pins release, temp
        files drop, the indicator's last report keeps ``finished=False``
        — but the terminal state, stored error and trace event all say
        *shed*: the system gave up on this query to protect the rest of
        the workload, the user didn't.  Idempotent on terminal tasks.
        """
        task = self._lookup(task)
        if task.done:
            return task
        if task.state == RUNNING:  # pragma: no cover - single-threaded guard
            raise ProgressError(f"task {task.name!r} is mid-slice")
        elapsed = (
            0.0
            if task.started_at is None
            else self.db.clock.now - task.started_at
        )
        error = QueryShedError(
            f"query {task.name!r} was shed by the load-shedding policy "
            f"({reason}; elapsed {elapsed:.3f}s)"
        )
        self._terminate(task, SHED, abort_reason="shed", error=error)
        return task

    # ------------------------------------------------------------------
    # slice mechanics

    def _run_slice(self, task: QueryTask) -> None:
        clock = self.db.clock
        disk = self.db.disk
        pool = self.db.buffer_pool
        started = clock.now
        if task.started_at is None:
            task.started_at = started
            if task.timeout is not None and task.deadline is None:
                task.deadline = started + task.timeout
        start_pages = self._done_pages(task)
        pulses = 0
        reason = "quantum"
        keep = task.keep_rows
        cap = task.max_rows
        rows = task.rows  # never rebound; hoisted out of the hot loop

        task.state = RUNNING
        prev_owner = disk.set_owner(task.name)
        prev_traces = None
        if task.trace_bus is not None:
            prev_traces = (
                disk.set_trace(task.trace_bus),
                pool.set_trace(task.trace_bus),
            )
        try:
            while True:
                try:
                    item = next(task.gen)
                except StopIteration:
                    reason = "finished"
                    self._finish(task)
                    break
                if item is PULSE:
                    pulses += 1
                    if task.deadline is not None and clock.now >= task.deadline:
                        reason = "timeout"
                        self._timeout(task)
                        break
                    if self._quantum_spent(task, start_pages, pulses):
                        task.state = SUSPENDED
                        break
                elif type(item) is Batch:
                    brows = item.rows()
                    task.row_count += len(brows)
                    if keep:
                        if cap is None:
                            rows.extend(brows)
                        elif len(rows) < cap:
                            rows.extend(brows[: cap - len(rows)])
                else:
                    task.row_count += 1
                    if keep and (cap is None or len(rows) < cap):
                        rows.append(item)
        except Exception as exc:  # noqa: REPRO007 - containment boundary:
            # one query's failure (e.g. an injected I/O fault past its
            # retry budget) must not take down its siblings; the error is
            # stored and re-raised by QueryHandle.result().
            reason = "failed"
            self._fail(task, exc)
        except BaseException as exc:
            # Non-Exception escapes (KeyboardInterrupt, SystemExit) still
            # unwind the task cleanly, then propagate to the caller.
            reason = "failed"
            self._fail(task, exc)
            raise
        finally:
            disk.set_owner(prev_owner)
            if prev_traces is not None:
                disk.set_trace(prev_traces[0])
                pool.set_trace(prev_traces[1])
            record = SliceRecord(
                seq=self._seq,
                task=task.name,
                started_at=started,
                ended_at=clock.now,
                pulses=pulses,
                pages=self._done_pages(task) - start_pages,
                reason=reason,
            )
            task.last_sliced = self._seq
            self._seq += 1
            task.slices.append(record)
            self.slices.append(record)
            # Fair-share accounting: charge the slice's U to the task
            # (and its tenant, when the service attached one).  Pulses
            # stand in for pages on unmonitored tasks, mirroring the
            # quantum rule above.
            used = record.pages if record.pages > 0 else float(pulses)
            task.charged_pages += used
            ref = task.tenant_ref
            if ref is not None:
                ref.consumed_pages += used

    def _terminate(
        self,
        task: QueryTask,
        state: str,
        abort_reason: str,
        error: Optional[BaseException] = None,
    ) -> None:
        """Move a task to an abnormal terminal state, unwinding exactly once.

        The state flips *before* the coroutine is closed, so re-entrant
        termination attempts (a watchdog sweep and a service eviction
        targeting the same task in one step, or a user ``cancel()`` after
        either) observe ``task.done`` and back off.  The indicator abort
        runs in a ``finally`` — even an operator ``finally`` block that
        raises mid-close cannot leave a zombie task with a live ticker —
        and is itself guarded so an already-finalized indicator is never
        aborted twice.
        """
        task.state = state
        task.error = error
        task.finished_at = self.db.clock.now
        self._active.pop(task.name, None)
        try:
            task.gen.close()
        finally:
            if task.indicator is not None and not task.indicator.finalized:
                task.log = task.indicator.abort(
                    reason=abort_reason, error=error
                )
            if self.on_retire is not None:
                self.on_retire(task)

    def _fail(self, task: QueryTask, error: Optional[BaseException]) -> None:
        """Move a task to FAILED: unwind the coroutine (operator
        ``finally`` blocks release pins and drop temp files), store the
        error for ``result()``, abort the indicator."""
        self._terminate(task, FAILED, abort_reason="failed", error=error)

    def _timeout(self, task: QueryTask) -> None:
        """Move a task to TIMED_OUT: same unwind as cancellation, but the
        terminal state, stored error and trace event all say timeout."""
        elapsed = (
            0.0
            if task.started_at is None
            else self.db.clock.now - task.started_at
        )
        error = QueryTimeoutError(
            f"query {task.name!r} exceeded its deadline "
            f"(elapsed {elapsed:.3f}s)"
        )
        self._terminate(task, TIMED_OUT, abort_reason="timeout", error=error)

    def _finish(self, task: QueryTask) -> None:
        clock = self.db.clock
        task.state = FINISHED
        task.finished_at = clock.now
        self._active.pop(task.name, None)
        assert task.started_at is not None
        task.result = QueryResult(
            rows=task.rows,
            names=task.planned.output_names,
            elapsed=task.finished_at - task.started_at,
            started_at=task.started_at,
            finished_at=task.finished_at,
            row_count=task.row_count,
        )
        if task.indicator is not None:
            task.log = task.indicator.finalize()
        if self.on_retire is not None:
            self.on_retire(task)

    def _done_pages(self, task: QueryTask) -> float:
        if task.indicator is None:
            return 0.0
        return task.indicator.tracker.total_done_bytes / self._page_size

    def _quantum_spent(self, task: QueryTask, start_pages: float, pulses: int) -> bool:
        if task.indicator is not None:
            if self._done_pages(task) - start_pages >= self.quantum_pages:
                return True
        # Unmonitored fallback (and a backstop for monitored phases whose
        # pulses outpace tracked bytes): one pulse ≈ one page of work.
        return pulses >= self.quantum_pages
