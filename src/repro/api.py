"""The stable session API: ``Database.connect() -> Session -> QueryHandle``.

One contract for single-query and concurrent execution::

    db = tpcr.build_database(scale=0.01)
    session = db.connect()
    handle = session.submit("select * from lineitem")
    print(handle.progress())          # a ProgressReport, any time
    result = handle.result()          # drives the workload to this
                                      # query's completion
    print(handle.trace())             # sealed, read-only trace view

Several ``submit`` calls before the first ``result()`` run *interleaved*
on the shared virtual clock and buffer pool — waiting on any one handle
pumps the whole workload through the session's cooperative scheduler
(:mod:`repro.sched`).  A :class:`QueryHandle` subsumes the three legacy
return shapes: the plain :class:`~repro.executor.runtime.QueryResult`
(``.result()``), the :class:`~repro.database.MonitoredResult` bundle
(``.monitored()``), and the trace stream (``.trace()``, sealed).

The old ``Database.execute`` / ``execute_with_progress`` /
``run_planned_with_progress`` facade remains as deprecated shims over
this surface (lint rule REPRO006 keeps new callers out).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from repro.core.history import ProgressLog
from repro.core.report import ProgressReport
from repro.errors import ProgressError
from repro.executor.runtime import QueryResult
from repro.obs.bus import SealedTrace, TraceBus
from repro.planner.optimizer import PlannedQuery
from repro.sched.scheduler import DEFAULT_QUANTUM_PAGES
from repro.sched.task import CANCELLED, FAILED, SHED, TIMED_OUT, QueryTask

if TYPE_CHECKING:  # pragma: no cover - circular at import time only
    from repro.database import Database, MonitoredResult


class QueryHandle:
    """One submitted query: progress, result, cancellation, trace."""

    def __init__(self, session: "Session", task: QueryTask) -> None:
        self._session = session
        self._task = task

    # ------------------------------------------------------------------
    # identity

    @property
    def name(self) -> str:
        return self._task.name

    @property
    def state(self) -> str:
        """Lifecycle state (see :mod:`repro.sched.task` constants)."""
        return self._task.state

    @property
    def done(self) -> bool:
        return self._task.done

    @property
    def task(self) -> QueryTask:
        """The underlying scheduler task (escape hatch for tests/tools)."""
        return self._task

    # ------------------------------------------------------------------
    # the contract

    def progress(self) -> Optional[ProgressReport]:
        """The indicator's current report; None for unmonitored queries.

        Valid at any time: before the first slice, mid-flight, and after
        completion (where it reports the final state).
        """
        return self._task.progress()

    def result(self) -> QueryResult:
        """Drive the session until this query completes; return its result.

        Other in-flight queries advance too (cooperative interleaving).
        Raises the original executor error for a failed query,
        :class:`~repro.errors.QueryTimeoutError` for a timed-out one,
        :class:`~repro.errors.QueryShedError` for one evicted by the
        service's load-shedding policy, and :class:`ProgressError` for a
        cancelled one.
        """
        task = self._task
        if not task.done:
            self._session.service.run_until(task)
        if task.state in (FAILED, TIMED_OUT, SHED):
            assert task.error is not None
            raise task.error
        if task.state == CANCELLED:
            raise ProgressError(f"query {task.name!r} was cancelled")
        assert task.result is not None
        return task.result

    def cancel(self) -> Optional[ProgressLog]:
        """Cancel the query; returns its progress log (None if unmonitored).

        Idempotent.  Mid-segment state is unwound cooperatively: buffer
        pins release, temp files drop, and the final report keeps
        ``finished=False``.
        """
        self._session.scheduler.cancel(self._task)
        return self._task.log

    def trace(self) -> Optional[SealedTrace]:
        """Sealed, read-only view of this query's trace stream."""
        return self._task.sealed_trace()

    @property
    def log(self) -> Optional[ProgressLog]:
        """The full progress history once the query is done, else None."""
        return self._task.log

    def monitored(self) -> "MonitoredResult":
        """Bridge to the legacy :class:`MonitoredResult` bundle.

        Drives the query to completion first (like ``.result()``); only
        valid for monitored queries.
        """
        from repro.database import MonitoredResult

        if self._task.indicator is None:
            raise ProgressError(
                f"query {self._task.name!r} was submitted with monitor=False"
            )
        result = self.result()
        assert self._task.log is not None
        return MonitoredResult(
            result=result,
            log=self._task.log,
            indicator=self._task.indicator,
            trace=self.trace(),
        )

    def __repr__(self) -> str:
        return f"QueryHandle({self._task.name!r}, state={self._task.state})"


class Session:
    """A connection-like handle for submitting queries to one Database.

    Queries submitted through one session share its cooperative
    scheduler: they interleave in bounded work quanta on the database's
    single virtual clock.  Separate sessions on the same database are
    independent schedulers (their queries do not interleave with each
    other — submit through one session for a concurrent workload).

    Every session fronts a :class:`~repro.service.QueryService`, so all
    submissions pass through admission control.  The default
    :class:`~repro.config.ServiceConfig` is fully permissive (no limits,
    shedding off) and changes nothing; configure limits via
    ``SystemConfig.with_service(...)`` and this facade honors them —
    ``submit`` then blocks until the service admits the statement
    (pumping the in-flight workload, classic synchronous-connection
    semantics) and raises
    :class:`~repro.errors.AdmissionRejectedError` when the admission
    queue is full.  For non-blocking submission and per-tenant control,
    use :meth:`repro.database.Database.service` directly.
    """

    def __init__(
        self,
        db: "Database",
        policy: str = "round_robin",
        quantum_pages: int = DEFAULT_QUANTUM_PAGES,
    ) -> None:
        from repro.service.service import QueryService

        self.db = db
        self.service = QueryService(
            db, policy=policy, quantum_pages=quantum_pages
        )
        self.scheduler = self.service.scheduler

    # ------------------------------------------------------------------

    def submit(
        self,
        query: Union[str, PlannedQuery],
        *,
        tenant: str = "default",
        name: Optional[str] = None,
        monitor: bool = True,
        trace: Union[None, bool, TraceBus] = None,
        priority: int = 0,
        keep_rows: bool = True,
        max_rows: Optional[int] = None,
        on_report=None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        estimator: Optional[str] = None,
    ) -> QueryHandle:
        """Submit a query (SQL text or a prepared plan) for execution.

        No work happens until the session is driven — by this or any
        other handle's ``.result()``, or by :meth:`run`.

        ``tenant`` attributes the query for the service layer's
        admission accounting and fair share (irrelevant under the
        permissive default config).

        ``estimator`` names the progress-estimation strategy for this
        query ("paper", "dne", "tgn", "history", "ensemble", or any name
        registered via :func:`repro.estimators.register_estimator`);
        ``None`` follows ``ProgressConfig.estimator``.

        ``timeout`` (virtual seconds from the query's first slice) or
        ``deadline`` (absolute virtual-clock instant) arm the scheduler's
        watchdog; past it the query is unwound and ``.result()`` raises
        :class:`~repro.errors.QueryTimeoutError`.
        """
        sh = self.service.submit(
            query,
            tenant=tenant,
            name=name,
            monitor=monitor,
            trace=trace,
            priority=priority,
            keep_rows=keep_rows,
            max_rows=max_rows,
            on_report=on_report,
            timeout=timeout,
            deadline=deadline,
            estimator=estimator,
        )
        if sh.rejection is not None:
            raise sh.rejection
        task = sh.task
        if task is None:
            # Queued: block until the service admits the statement,
            # pumping the in-flight workload meanwhile.  Unreachable
            # under the permissive default ServiceConfig.
            task = self.service._run_until_admitted(sh)
        return QueryHandle(self, task)

    def execute(
        self,
        sql: str,
        *,
        monitor: bool = False,
        keep_rows: bool = True,
        max_rows: Optional[int] = None,
    ) -> QueryResult:
        """Convenience: submit one query and drive it to completion."""
        return self.submit(
            sql, monitor=monitor, keep_rows=keep_rows, max_rows=max_rows
        ).result()

    def run(self) -> list[QueryHandle]:
        """Drive every in-flight query to a terminal state."""
        self.service.run()
        return [QueryHandle(self, t) for t in self.scheduler.tasks.values()]

    def step(self) -> Optional[QueryHandle]:
        """Grant exactly one scheduler slice (fine-grained driving)."""
        task = self.service.step()
        return None if task is None else QueryHandle(self, task)

    @property
    def handles(self) -> list[QueryHandle]:
        """Handles for every query submitted to this session, in order."""
        return [QueryHandle(self, t) for t in self.scheduler.tasks.values()]

    def __repr__(self) -> str:
        tasks = self.scheduler.tasks
        done = sum(1 for t in tasks.values() if t.done)
        return f"Session({len(tasks)} queries, {done} done)"
