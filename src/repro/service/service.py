"""The multi-tenant query service front-end.

:class:`QueryService` is the overload-robust layer the paper's §6 load
management gestures at, built on the progress indicator's estimates:

* **Admission control** — every submission is costed with the
  optimizer's initial estimate (the same number the indicator starts
  from) and gated on per-tenant budgets and service-wide saturation
  before any scheduler task exists.  Outcomes are explicit: admitted,
  queued (bounded admission queue), or rejected
  (:class:`~repro.errors.AdmissionRejectedError`).
* **Load shedding** — at slice boundaries the
  :class:`~repro.service.shedding.SheddingPolicy` consumes each query's
  own remaining-time estimate; queries persistently predicted to miss
  their deadline are demoted and eventually evicted (terminal ``shed``
  state), freeing capacity for queries that can still make it.
* **Fair share** — slices are charged in U to each query's tenant and
  the ``weighted_fair`` policy converges backlogged tenants to U shares
  proportional to their weights.

The service *owns* its :class:`CooperativeScheduler` — constructing one
directly is reserved to this package and :mod:`repro.sched` itself (lint
rule REPRO011), so every production query path goes through admission
accounting.  :class:`repro.api.Session` is a thin facade over a service
whose default config is fully permissive.

Everything runs on the database's virtual clock: a saturation benchmark
with thousands of in-flight queries is deterministic and replayable.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from repro.config import ServiceConfig
from repro.core.history import ProgressLog
from repro.core.report import ProgressReport
from repro.core.segments import build_segments, initial_total_cost_bytes
from repro.database import Database
from repro.errors import AdmissionRejectedError, ProgressError
from repro.executor.runtime import QueryResult
from repro.obs.bus import SealedTrace, TraceBus
from repro.obs.events import AdmissionDecided, TenantThrottled
from repro.planner.optimizer import PlannedQuery
from repro.sched.scheduler import DEFAULT_QUANTUM_PAGES, CooperativeScheduler
from repro.sched.task import CANCELLED, FAILED, SHED, TIMED_OUT, QueryTask
from repro.service.admission import (
    ADMISSION_REJECTED,
    ADMITTED,
    QUEUED,
    AdmissionController,
)
from repro.service.shedding import DEPRIORITIZE, EVICT, SheddingPolicy
from repro.service.tenant import Tenant, TenantRegistry


class ServiceHandle:
    """One submission's lifecycle: admission outcome, task, result.

    Unlike :class:`repro.api.QueryHandle`, a service handle exists even
    when no scheduler task does (queued or rejected submissions) —
    ``outcome`` says which, and ``task`` is ``None`` until admission.
    """

    def __init__(
        self,
        service: "QueryService",
        name: str,
        tenant: str,
        predicted_cost_pages: float,
        submitted_at: float,
    ) -> None:
        self._service = service
        self.name = name
        self.tenant = tenant
        #: The optimizer's initial cost estimate the admission decision
        #: was gated on, in pages of U.
        self.predicted_cost_pages = predicted_cost_pages
        self.submitted_at = submitted_at
        #: Admission outcome: "admitted", "queued" or "rejected".
        #: Queued submissions flip to "admitted" when capacity frees up.
        self.outcome: str = QUEUED
        #: The scheduler task, once admitted.
        self.task: Optional[QueryTask] = None
        self.rejection: Optional[AdmissionRejectedError] = None
        self._cancelled_in_queue = False

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Lifecycle state; adds "queued"/"rejected" ahead of the task
        states of :mod:`repro.sched.task`."""
        if self.outcome == ADMISSION_REJECTED:
            return ADMISSION_REJECTED
        if self._cancelled_in_queue:
            return CANCELLED
        if self.task is None:
            return QUEUED
        return self.task.state

    @property
    def done(self) -> bool:
        """True once no further execution can happen for this submission."""
        if self.outcome == ADMISSION_REJECTED or self._cancelled_in_queue:
            return True
        return self.task is not None and self.task.done

    def progress(self) -> Optional[ProgressReport]:
        """The indicator's current report; None before admission or for
        unmonitored queries."""
        return None if self.task is None else self.task.progress()

    def first_report_time(self) -> Optional[float]:
        """Virtual instant of the first user-visible progress report
        (None until one exists) — the submit-to-first-report latency
        numerator in the saturation benchmark."""
        task = self.task
        if task is None or task.indicator is None:
            return None
        reports = task.indicator.reports
        return reports[0].time if reports else None

    def result(self) -> QueryResult:
        """Drive the service until this query completes; return its rows.

        Raises :class:`AdmissionRejectedError` for a rejected
        submission, the stored error for failed / timed-out / shed
        queries, and :class:`ProgressError` for a cancelled one.  A
        queued submission is pumped until admitted and then to
        completion (other queries advance too — cooperative model).
        """
        if self.rejection is not None:
            raise self.rejection
        if self._cancelled_in_queue:
            raise ProgressError(f"query {self.name!r} was cancelled")
        task = self._service._run_until_handle(self)
        if task.state in (FAILED, TIMED_OUT, SHED):
            assert task.error is not None
            raise task.error
        if task.state == CANCELLED:
            raise ProgressError(f"query {task.name!r} was cancelled")
        assert task.result is not None
        return task.result

    def cancel(self) -> Optional[ProgressLog]:
        """Cancel the submission, admitted or still queued.  Idempotent."""
        self._service._cancel_handle(self)
        return None if self.task is None else self.task.log

    def trace(self) -> Optional[SealedTrace]:
        """Sealed view of the query's trace stream (None until admitted)."""
        return None if self.task is None else self.task.sealed_trace()

    def __repr__(self) -> str:
        return f"ServiceHandle({self.name!r}, state={self.state})"


class _Pending:
    """A queued submission: everything needed to admit it later."""

    __slots__ = ("handle", "planned", "sql", "tenant_obj", "kwargs")

    def __init__(
        self,
        handle: ServiceHandle,
        planned: PlannedQuery,
        sql: str,
        tenant_obj: Tenant,
        kwargs: dict,
    ) -> None:
        self.handle = handle
        self.planned = planned
        self.sql = sql
        self.tenant_obj = tenant_obj
        self.kwargs = kwargs


class QueryService:
    """Admission control + load shedding + fair share over one scheduler."""

    def __init__(
        self,
        db: Database,
        config: Optional[ServiceConfig] = None,
        policy: str = "weighted_fair",
        quantum_pages: int = DEFAULT_QUANTUM_PAGES,
        trace: Union[None, bool, TraceBus] = None,
    ) -> None:
        self.db = db
        self.config = db.config.service if config is None else config
        self.scheduler = CooperativeScheduler(
            db, policy=policy, quantum_pages=quantum_pages
        )
        self.scheduler.on_retire = self._on_retire
        self.tenants = TenantRegistry(
            default_weight=self.config.default_tenant_weight,
            default_cost_budget_pages=self.config.tenant_cost_budget_pages,
        )
        self.admission = AdmissionController(self.config)
        self.shedding = SheddingPolicy(
            self.config, db.config.page_size, db.config.progress.warmup
        )
        #: Bounded admission queue (bound enforced by the controller).
        self.queue: deque[_Pending] = deque()
        #: Service-level trace stream: admission / throttle decisions.
        #: (Per-query events land in each task's own bus, as always.)
        self.trace = self._resolve_trace(trace)
        #: Lifecycle tallies across all submissions.
        self.counters: dict[str, int] = {
            "submitted": 0,
            "admitted": 0,
            "queued": 0,
            "rejected": 0,
            "finished": 0,
            "failed": 0,
            "cancelled": 0,
            "timed_out": 0,
            "shed": 0,
            "deprioritized": 0,
        }
        self._handles: dict[str, ServiceHandle] = {}
        self._inflight = 0
        self._page_size = db.config.page_size

    def _resolve_trace(
        self, trace: Union[None, bool, TraceBus]
    ) -> Optional[TraceBus]:
        if isinstance(trace, TraceBus):
            return trace
        if trace is True:
            return TraceBus()
        if trace is False:
            return None
        from repro.obs import resolve_trace_enabled

        return TraceBus() if resolve_trace_enabled(self.db.config) else None

    # ------------------------------------------------------------------
    # tenants

    def register_tenant(
        self,
        name: str,
        weight: Optional[float] = None,
        cost_budget_pages: Optional[float] = None,
    ) -> Tenant:
        """Set a tenant's fair-share weight and/or admission budget.

        Unregistered tenants spring into existence on first submit with
        the configured defaults; registration is only needed to differ
        from them.
        """
        return self.tenants.register(
            name, weight=weight, cost_budget_pages=cost_budget_pages
        )

    @property
    def inflight(self) -> int:
        """Admitted, not-yet-terminal query count."""
        return self._inflight

    @property
    def handles(self) -> list[ServiceHandle]:
        """Every submission's handle, in submission order."""
        return list(self._handles.values())

    # ------------------------------------------------------------------
    # submission

    def submit(
        self,
        query: Union[str, PlannedQuery],
        *,
        tenant: str = "default",
        name: Optional[str] = None,
        monitor: bool = True,
        trace: Union[None, bool, TraceBus] = None,
        priority: int = 0,
        keep_rows: bool = True,
        max_rows: Optional[int] = None,
        on_report=None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        estimator: Optional[str] = None,
    ) -> ServiceHandle:
        """Submit a query on behalf of ``tenant``; never raises on load.

        The admission verdict is on the returned handle: ``outcome`` is
        "admitted" (a scheduler task exists, ``handle.task``), "queued"
        (waiting for capacity — admitted automatically as the workload
        drains) or "rejected" (admission queue full;
        ``handle.result()`` raises
        :class:`~repro.errors.AdmissionRejectedError`).

        Execution kwargs are those of
        :meth:`CooperativeScheduler.submit`.
        """
        if isinstance(query, PlannedQuery):
            planned, sql = query, "<planned>"
        else:
            sql = query
            planned = self.db.prepare(sql)
        if name is None:
            name = f"q{len(self._handles) + 1}"
        if name in self._handles:
            raise ProgressError(f"task {name!r} already submitted")

        tenant_obj = self.tenants.get(tenant)
        predicted = (
            initial_total_cost_bytes(build_segments(planned.root))
            / self._page_size
        )
        now = self.db.clock.now
        handle = ServiceHandle(self, name, tenant, predicted, now)
        self._handles[name] = handle
        self.counters["submitted"] += 1

        decision = self.admission.decide(
            tenant_obj, predicted, self._inflight, len(self.queue)
        )
        kwargs = dict(
            monitor=monitor,
            trace=trace,
            priority=priority,
            keep_rows=keep_rows,
            max_rows=max_rows,
            on_report=on_report,
            timeout=timeout,
            deadline=deadline,
            estimator=estimator,
        )
        self._emit_admission(handle, decision.outcome, decision.reason)
        if decision.outcome == ADMITTED:
            self._admit(handle, planned, sql, tenant_obj, kwargs)
        elif decision.outcome == QUEUED:
            handle.outcome = QUEUED
            tenant_obj.queued += 1
            self.counters["queued"] += 1
            self.queue.append(
                _Pending(handle, planned, sql, tenant_obj, kwargs)
            )
            if decision.tenant_throttled:
                self._emit_throttled(handle, tenant_obj)
        else:
            handle.outcome = ADMISSION_REJECTED
            handle.rejection = AdmissionRejectedError(
                f"query {name!r} (tenant {tenant!r}) rejected: "
                f"{decision.reason}"
            )
            tenant_obj.rejected += 1
            self.counters["rejected"] += 1
        return handle

    def _admit(
        self,
        handle: ServiceHandle,
        planned: PlannedQuery,
        sql: str,
        tenant_obj: Tenant,
        kwargs: dict,
    ) -> None:
        task = self.scheduler.submit(planned, name=handle.name, **kwargs)
        task.sql = sql
        task.tenant = tenant_obj.name
        task.tenant_ref = tenant_obj
        handle.task = task
        handle.outcome = ADMITTED
        tenant_obj.admitted += 1
        tenant_obj.inflight += 1
        tenant_obj.inflight_cost_pages += handle.predicted_cost_pages
        self._inflight += 1
        self.counters["admitted"] += 1

    def _emit_admission(
        self, handle: ServiceHandle, outcome: str, reason: str
    ) -> None:
        if self.trace is None:
            return
        self.trace.emit(
            AdmissionDecided(
                t=self.db.clock.now,
                tenant=handle.tenant,
                query=handle.name,
                outcome=outcome,
                reason=reason,
                predicted_cost_pages=handle.predicted_cost_pages,
                inflight=self._inflight,
                queued=len(self.queue),
            )
        )

    def _emit_throttled(
        self, handle: ServiceHandle, tenant_obj: Tenant
    ) -> None:
        if self.trace is None:
            return
        budget = tenant_obj.cost_budget_pages
        self.trace.emit(
            TenantThrottled(
                t=self.db.clock.now,
                tenant=tenant_obj.name,
                query=handle.name,
                inflight_cost_pages=tenant_obj.inflight_cost_pages,
                budget_pages=0.0 if budget is None else budget,
                queued=len(self.queue),
            )
        )

    # ------------------------------------------------------------------
    # driving

    def step(self) -> Optional[QueryTask]:
        """Admit what capacity allows, grant one slice, run the policy
        check on the sliced query; None when nothing is runnable."""
        self._drain_queue()
        task = self.scheduler.step()
        if (
            task is not None
            and self.config.shedding
            and task.deadline is not None
        ):
            self._policy_check(task)
        return task

    def run(self) -> list[ServiceHandle]:
        """Drive until nothing is runnable (all admitted work terminal)."""
        while self.step() is not None:
            pass
        return self.handles

    def run_until(self, task: QueryTask) -> QueryTask:
        """Service-aware :meth:`CooperativeScheduler.run_until`: pumping
        one query's result still drains the admission queue and runs the
        shedding loop for the whole workload."""
        if task.name not in self.scheduler.tasks:
            raise ProgressError(f"unknown task {task.name!r}")
        while not task.done:
            if self.step() is None:
                if task.done:
                    break
                raise ProgressError(
                    f"task {task.name!r} cannot finish: nothing runnable"
                )
        return task

    def _run_until_admitted(self, handle: ServiceHandle) -> QueryTask:
        """Pump the workload until a queued submission is admitted."""
        while handle.task is None:
            if self.step() is None:
                raise ProgressError(
                    f"query {handle.name!r} cannot be admitted: "
                    f"nothing runnable to free capacity"
                )
        return handle.task

    def _run_until_handle(self, handle: ServiceHandle) -> QueryTask:
        return self.run_until(self._run_until_admitted(handle))

    def _drain_queue(self) -> None:
        """Admit queued submissions in order as capacity allows.

        Tenant-throttled entries are skipped (a later tenant's query may
        still fit); the first *global* saturation verdict stops the scan
        — nothing behind it could admit either, which keeps the common
        saturated case O(1).
        """
        if not self.queue:
            return
        remaining: deque[_Pending] = deque()
        while self.queue:
            pending = self.queue.popleft()
            handle = pending.handle
            if handle._cancelled_in_queue:
                continue
            # queued=0: the queue-full rejection is for *new* arrivals;
            # re-evaluation of already-queued work never rejects.
            decision = self.admission.decide(
                pending.tenant_obj,
                handle.predicted_cost_pages,
                self._inflight,
                0,
            )
            if decision.outcome == ADMITTED:
                self._emit_admission(handle, ADMITTED, "promoted from queue")
                self._admit(
                    handle,
                    pending.planned,
                    pending.sql,
                    pending.tenant_obj,
                    pending.kwargs,
                )
            elif decision.tenant_throttled:
                remaining.append(pending)  # others may still fit
            else:
                remaining.append(pending)
                remaining.extend(self.queue)  # global saturation: stop
                self.queue.clear()
        self.queue = remaining

    def _policy_check(self, task: QueryTask) -> None:
        decision = self.shedding.evaluate(task, self.db.clock.now)
        if decision.action == DEPRIORITIZE:
            task.demotions += 1
            self.counters["deprioritized"] += 1
        elif decision.action == EVICT:
            self.scheduler.shed(task, reason=decision.reason)

    # ------------------------------------------------------------------
    # retirement

    def _on_retire(self, task: QueryTask) -> None:
        """Scheduler hook: settle accounting exactly once per task,
        however it reached its terminal state."""
        self.shedding.forget(task.name)
        handle = self._handles.get(task.name)
        if handle is None or handle.task is not task:
            # Submitted around the service (tests driving the scheduler
            # directly) — nothing to settle.
            return
        self._inflight -= 1
        self.counters[task.state] = self.counters.get(task.state, 0) + 1
        ref = task.tenant_ref
        if ref is not None:
            ref.inflight -= 1
            ref.inflight_cost_pages = max(
                0.0, ref.inflight_cost_pages - handle.predicted_cost_pages
            )
            if task.state == SHED:
                ref.shed += 1
        # Capacity freed: queued submissions may admit right now, so a
        # caller pumping only step() sees promotions without extra calls.
        self._drain_queue()

    def _cancel_handle(self, handle: ServiceHandle) -> None:
        if handle.task is not None:
            self.scheduler.cancel(handle.task)
            return
        if handle.outcome == QUEUED and not handle._cancelled_in_queue:
            handle._cancelled_in_queue = True
            self.counters["cancelled"] += 1
            # Lazy removal: _drain_queue drops cancelled entries.

    def __repr__(self) -> str:
        return (
            f"QueryService({self.counters['submitted']} submitted, "
            f"{self._inflight} in flight, {len(self.queue)} queued)"
        )
