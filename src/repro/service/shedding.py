"""The load-shedding policy loop: evict queries predicted to miss.

The paper's §6 imagines a DBA watching progress indicators and killing
the long-running queries that block everyone else; this module automates
the decision.  At slice boundaries the service asks, for every
deadline-bearing query: *given your own remaining-time estimate, will
you make it?*  A query persistently predicted to miss is first demoted
(its fair-share weight halves, yielding slices to queries that can still
make their deadlines) and then evicted (terminal ``shed`` state) —
degrade before dying, and free capacity early instead of burning it on a
lost cause until the watchdog fires at the deadline.

Robust-to-its-own-inputs, because estimator error is worst exactly under
the contention that triggers shedding (König et al., PAPERS.md):

* **Hysteresis** — one bad estimate does nothing.  A query is flagged
  only while its predicted overrun exceeds ``shed_overrun_fraction`` of
  its deadline budget, needs ``shed_after`` consecutive flagged checks
  to be evicted, and recovers (strikes cleared, demotion lifted) only
  when the overrun falls below ``shed_recover_fraction`` — estimates
  oscillating in the band between the two thresholds change nothing.
* **Degrade, don't die** — when the indicator reports ``degraded=True``
  (or has no remaining-time estimate yet), the policy falls back to the
  optimizer's initial cost and the observed average speed, the same
  information a plain optimizer-cost indicator would have; with no
  usable estimate at all it takes **no action** (never shed on missing
  data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import ServiceConfig
from repro.sched.task import QueryTask

#: Policy verdicts for one check of one query.
KEEP = "keep"
DEPRIORITIZE = "deprioritize"
EVICT = "evict"


@dataclass
class ShedDecision:
    """One policy check's verdict on one query."""

    action: str
    reason: str = ""
    #: Predicted overrun past the deadline in virtual seconds (None when
    #: no usable estimate existed).
    overrun: Optional[float] = None
    #: Where the remaining-time estimate came from: "indicator" (a fresh
    #: non-degraded report) or "optimizer" (the degrade fallback).
    source: str = "none"


@dataclass
class _TaskShedState:
    strikes: int = 0
    demoted: bool = False
    last_checked: float = field(default=float("-inf"))


class SheddingPolicy:
    """Per-query strike accounting over remaining-time estimates."""

    def __init__(
        self, config: ServiceConfig, page_size: int, warmup: float
    ) -> None:
        self._config = config
        self._page_size = page_size
        self._warmup = warmup
        self._state: dict[str, _TaskShedState] = {}

    def forget(self, name: str) -> None:
        """Drop per-query state once a task is retired."""
        self._state.pop(name, None)

    # ------------------------------------------------------------------

    def _predicted_remaining(
        self, task: QueryTask, now: float
    ) -> tuple[Optional[float], str]:
        """Estimated virtual seconds of work left, and its provenance.

        Prefers the indicator's last *non-degraded* report (aged by the
        time since it was emitted); degraded or absent, falls back to
        the optimizer's initial cost against the observed average speed.
        ``(None, "none")`` when there is no usable estimate — warmup, a
        never-sliced query, or an unmonitored one.
        """
        indicator = task.indicator
        if indicator is None or task.started_at is None:
            return None, "none"
        last = indicator.reports[-1] if indicator.reports else None
        if (
            last is not None
            and not last.degraded
            and last.est_remaining_seconds is not None
        ):
            aged = max(0.0, last.est_remaining_seconds - (now - last.time))
            return aged, "indicator"
        elapsed = now - task.started_at
        if elapsed <= self._warmup:
            return None, "none"
        done = indicator.tracker.total_done_bytes / self._page_size
        if done <= 0:
            return None, "none"
        speed = done / elapsed
        remaining_pages = max(indicator.initial_cost_pages - done, 0.0)
        return remaining_pages / speed, "optimizer"

    def evaluate(self, task: QueryTask, now: float) -> ShedDecision:
        """One policy check; mutates only this policy's strike state.

        The caller applies the verdict (demote / evict) — evaluation is
        side-effect free on the task except for lifting demotions on
        recovery.
        """
        cfg = self._config
        if task.deadline is None or task.done:
            return ShedDecision(KEEP)
        state = self._state.get(task.name)
        if state is None:
            state = self._state[task.name] = _TaskShedState()
        if now - state.last_checked < cfg.policy_interval:
            return ShedDecision(KEEP)
        state.last_checked = now

        remaining, source = self._predicted_remaining(task, now)
        if remaining is None:
            return ShedDecision(KEEP)  # no estimate -> no action
        started = task.started_at if task.started_at is not None else now
        budget = max(task.deadline - started, 1e-9)
        overrun = (now + remaining) - task.deadline

        if overrun > cfg.shed_overrun_fraction * budget:
            state.strikes += 1
        elif overrun < cfg.shed_recover_fraction * budget:
            state.strikes = 0
            if state.demoted:  # recovery lifts the demotion
                state.demoted = False
                task.demotions = 0
        # else: inside the hysteresis band — strikes unchanged.

        if state.strikes >= cfg.shed_after:
            return ShedDecision(
                EVICT,
                reason=(
                    f"predicted to miss deadline by {overrun:.1f}s "
                    f"({state.strikes} consecutive checks, "
                    f"estimate source: {source})"
                ),
                overrun=overrun,
                source=source,
            )
        if state.strikes >= cfg.deprioritize_after and not state.demoted:
            state.demoted = True
            return ShedDecision(
                DEPRIORITIZE,
                reason=(
                    f"predicted to miss deadline by {overrun:.1f}s "
                    f"(estimate source: {source})"
                ),
                overrun=overrun,
                source=source,
            )
        return ShedDecision(KEEP, overrun=overrun, source=source)
