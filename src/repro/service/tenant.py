"""Per-tenant accounting for the multi-tenant query service.

A :class:`Tenant` is one customer of the service: a fair-share weight,
an optional admission budget, and live counters — the U its queries have
consumed (maintained by the scheduler's slice accounting), the predicted
cost of its currently admitted queries (maintained by the service's
admit/retire bookkeeping), and outcome tallies.

The registry is deliberately permissive: tenants spring into existence
on first reference with the configured defaults, so a caller never has
to pre-register before submitting.  Explicit registration
(:meth:`TenantRegistry.register`) sets weight and budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ProgressError


@dataclass
class Tenant:
    """One tenant's fair-share weight, budget, and live accounting."""

    name: str
    #: Fair-share weight: under the ``weighted_fair`` policy, backlogged
    #: tenants converge to U shares proportional to their weights.
    weight: float = 1.0
    #: Admission budget: max summed *predicted* cost (U pages) of this
    #: tenant's concurrently admitted queries; ``None`` = unlimited.
    cost_budget_pages: Optional[float] = None

    #: Total U (pages) charged to this tenant's queries across all
    #: scheduler slices — the quantity fair-share converges on.
    consumed_pages: float = 0.0
    #: Summed predicted cost of admitted, not-yet-retired queries.
    inflight_cost_pages: float = 0.0
    #: Currently admitted, not-yet-retired query count.
    inflight: int = 0

    # Outcome tallies (queries, not policy checks).
    admitted: int = 0
    queued: int = 0
    rejected: int = 0
    shed: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ProgressError(
                f"tenant {self.name!r}: weight must be positive"
            )


@dataclass
class TenantRegistry:
    """Name -> :class:`Tenant`, auto-creating with configured defaults."""

    default_weight: float = 1.0
    default_cost_budget_pages: Optional[float] = None
    _tenants: dict[str, Tenant] = field(default_factory=dict)

    def register(
        self,
        name: str,
        weight: Optional[float] = None,
        cost_budget_pages: Optional[float] = None,
    ) -> Tenant:
        """Create or update a tenant's weight/budget (counters survive)."""
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = Tenant(
                name=name,
                weight=self.default_weight if weight is None else weight,
                cost_budget_pages=(
                    self.default_cost_budget_pages
                    if cost_budget_pages is None
                    else cost_budget_pages
                ),
            )
            self._tenants[name] = tenant
        else:
            if weight is not None:
                if weight <= 0:
                    raise ProgressError(
                        f"tenant {name!r}: weight must be positive"
                    )
                tenant.weight = weight
            if cost_budget_pages is not None:
                tenant.cost_budget_pages = cost_budget_pages
        return tenant

    def get(self, name: str) -> Tenant:
        """The tenant, auto-created with defaults on first reference."""
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = Tenant(
                name=name,
                weight=self.default_weight,
                cost_budget_pages=self.default_cost_budget_pages,
            )
            self._tenants[name] = tenant
        return tenant

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants
