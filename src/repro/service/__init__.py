"""Overload-robust multi-tenant query service (paper §6, automated).

The paper closes by arguing a progress indicator is more than a UI
widget: its remaining-time estimates are an input to *load management*.
This package takes that seriously and builds the service layer on top of
the cooperative scheduler:

* :class:`QueryService` — the front-end: admission control on predicted
  cost vs per-tenant budgets and service saturation, a bounded admission
  queue, a load-shedding policy loop driven by each query's own
  remaining-time estimate, and per-tenant weighted fair-share accounting.
* :class:`ServiceHandle` — one submission's lifecycle: explicit
  admitted / queued / rejected outcome, then the usual progress /
  result / cancel surface.
* :class:`~repro.service.tenant.Tenant` /
  :class:`~repro.service.tenant.TenantRegistry` — fair-share weights,
  budgets and live accounting.
* :class:`~repro.service.admission.AdmissionController` and
  :class:`~repro.service.shedding.SheddingPolicy` — the two pure
  decision cores, separately testable.

Knobs live on :class:`repro.config.ServiceConfig`
(``SystemConfig.with_service(...)``); the defaults are fully permissive,
which is how :class:`repro.api.Session` stays a zero-surprise facade.
The service owns its scheduler — lint rule REPRO011 keeps direct
``CooperativeScheduler()`` construction inside this package and
:mod:`repro.sched`.
"""

from repro.service.admission import (
    ADMISSION_REJECTED,
    ADMITTED,
    QUEUED,
    AdmissionController,
    AdmissionDecision,
)
from repro.service.service import QueryService, ServiceHandle
from repro.service.shedding import (
    DEPRIORITIZE,
    EVICT,
    KEEP,
    ShedDecision,
    SheddingPolicy,
)
from repro.service.tenant import Tenant, TenantRegistry

__all__ = [
    "ADMISSION_REJECTED",
    "ADMITTED",
    "DEPRIORITIZE",
    "EVICT",
    "KEEP",
    "QUEUED",
    "AdmissionController",
    "AdmissionDecision",
    "QueryService",
    "ServiceHandle",
    "ShedDecision",
    "SheddingPolicy",
    "Tenant",
    "TenantRegistry",
]
