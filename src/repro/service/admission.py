"""The admission controller: gate submissions on cost, budget, saturation.

Every submission gets exactly one of three outcomes, decided *before*
any scheduler task exists:

* :data:`ADMITTED` — a task is created now and starts competing for
  slices;
* :data:`QUEUED` — the service is saturated (``max_inflight``) or the
  tenant is over its cost budget; the submission waits in the bounded
  admission queue and is re-evaluated as capacity frees up;
* :data:`ADMISSION_REJECTED` — the admission queue itself is full; the
  submission is refused outright (``AdmissionRejectedError``), with no
  task ever created.

The gate input is the optimizer's *initial* cost estimate — the same
number the progress indicator starts from (``initial_cost_pages``) —
because at admission time nothing has executed yet; mid-flight
corrections are the shedding loop's job (:mod:`repro.service.shedding`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import ServiceConfig
from repro.service.tenant import Tenant

#: Admission outcomes (the ``AdmissionDecided.outcome`` vocabulary).
ADMITTED = "admitted"
QUEUED = "queued"
ADMISSION_REJECTED = "rejected"


@dataclass(frozen=True)
class AdmissionDecision:
    """One submission's verdict and the reason it was reached."""

    outcome: str
    reason: str
    #: True when the queue/throttle was specifically the tenant's cost
    #: budget (drives the ``tenant_throttled`` trace event).
    tenant_throttled: bool = False


class AdmissionController:
    """Pure decision logic: no side effects, fed live counts by the service."""

    def __init__(self, config: ServiceConfig) -> None:
        self._config = config

    def decide(
        self,
        tenant: Tenant,
        predicted_cost_pages: float,
        inflight: int,
        queued: int,
    ) -> AdmissionDecision:
        """Rule on one submission given the service's current saturation.

        ``inflight`` is the number of admitted, not-yet-terminal tasks;
        ``queued`` is the current admission-queue depth (the submission
        being decided not included).
        """
        cfg = self._config
        verdict: Optional[AdmissionDecision] = None
        if cfg.max_inflight is not None and inflight >= cfg.max_inflight:
            verdict = AdmissionDecision(
                QUEUED,
                f"saturated ({inflight} in flight, "
                f"limit {cfg.max_inflight})",
            )
        budget = tenant.cost_budget_pages
        if (
            verdict is None
            and budget is not None
            # A single query predicted to exceed the whole budget is
            # admitted while the tenant has nothing else in flight —
            # queueing it could never succeed (the budget check would
            # fail forever) and the budget bounds *concurrent* predicted
            # cost, not query size.
            and tenant.inflight_cost_pages > 0
            and tenant.inflight_cost_pages + predicted_cost_pages > budget
        ):
            verdict = AdmissionDecision(
                QUEUED,
                f"tenant {tenant.name!r} over cost budget "
                f"({tenant.inflight_cost_pages:.0f} + "
                f"{predicted_cost_pages:.0f} > {budget:.0f} pages)",
                tenant_throttled=True,
            )
        if verdict is None:
            return AdmissionDecision(ADMITTED, "capacity available")
        # The submission must wait — but the waiting room is bounded:
        # a full queue turns the wait into an outright rejection.
        if queued >= cfg.admission_queue_limit:
            return AdmissionDecision(
                ADMISSION_REJECTED,
                f"admission queue full ({queued} waiting, "
                f"limit {cfg.admission_queue_limit}; {verdict.reason})",
            )
        return verdict
