"""Metrics: counters, gauges, histograms, and per-segment span accounting.

The :class:`MetricsRegistry` is a flat namespace of instruments; the
:class:`MetricsCollector` is a TraceBus subscriber that populates one from
the event stream, so metrics need no extra instrumentation points — the
trace *is* the source of truth.

Span accounting answers the paper's §6 performance-tuning question
("where the time goes"): for every segment, the virtual seconds between
its first and last reported byte, split into **self** time (not covered
by a producing child segment's span) and child time, plus the U-bytes it
processed itself versus its whole subtree.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Union

from repro.obs.events import (
    BufferAccess,
    CardinalityRefined,
    DominantSwitched,
    ExtraPass,
    PageRead,
    PageWritten,
    QueryFinished,
    QueryStarted,
    ReportEmitted,
    SegmentFinished,
    SegmentStarted,
    SpeedEstimated,
    TraceEvent,
)

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: Optional[float]) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram with cumulative bucket counts."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} bounds must be sorted")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: Number) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0 < q <= 1) from the buckets.

        Linear interpolation inside the bucket containing the target
        rank, the standard Prometheus-style estimate: exact only at
        bucket boundaries, deterministic everywhere.  The first bucket
        interpolates from 0 (all bounds are non-negative in practice);
        the open-ended last bucket is clamped to its lower bound.
        Returns None for an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if cumulative + bucket_count >= rank and bucket_count > 0:
                within = (rank - cumulative) / bucket_count
                if i >= len(self.bounds):  # open-ended overflow bucket
                    return self.bounds[-1] if self.bounds else None
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                return lower + within * (self.bounds[i] - lower)
            cumulative += bucket_count
        return self.bounds[-1] if self.bounds else None


class MetricsRegistry:
    """Flat name -> instrument registry with a text dump."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, bounds: tuple[float, ...]) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, bounds)
        return inst

    def render(self) -> str:
        """Flat text dump: one ``name value`` line, sorted by name."""
        lines: list[str] = []
        for name in sorted(self._counters):
            lines.append(f"{name} {_fmt(self._counters[name].value)}")
        for name in sorted(self._gauges):
            value = self._gauges[name].value
            lines.append(f"{name} {'nan' if value is None else _fmt(value)}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            lower: Optional[float] = None
            for bound, count in zip(hist.bounds, hist.bucket_counts):
                low = "" if lower is None else _fmt(lower)
                lines.append(f"{name}{{bucket={low}..{_fmt(bound)}}} {count}")
                lower = bound
            lines.append(f"{name}{{bucket={_fmt(lower)}..}} {hist.bucket_counts[-1]}")
            lines.append(f"{name}_count {hist.count}")
            lines.append(f"{name}_sum {_fmt(hist.total)}")
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                lines.append(f"{name}_{label} {_fmt(hist.quantile(q))}")
        return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "nan"
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


# ----------------------------------------------------------------------
# span accounting


@dataclass
class SegmentSpan:
    """Virtual-time and U-byte accounting for one segment."""

    segment_id: int
    label: str
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    self_bytes: float = 0.0
    subtree_bytes: float = 0.0
    #: Seconds of the span not overlapped by a producing child's span.
    self_seconds: float = 0.0
    child_seconds: float = 0.0

    @property
    def duration(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def compute_spans(events: list[TraceEvent]) -> list[SegmentSpan]:
    """Per-segment span accounting from a recorded event stream.

    Self time is the segment's span minus the parts overlapped by the
    spans of the child segments feeding its inputs (a consumer that
    starts while its producer still runs is doing the producer's work in
    a pipelined sense).  Byte totals come from ``SegmentFinished``.
    """
    spans: dict[int, SegmentSpan] = {}
    children: dict[int, list[int]] = {}
    for event in events:
        if isinstance(event, QueryStarted):
            for meta in event.segments:
                spans[meta.id] = SegmentSpan(segment_id=meta.id, label=meta.label)
                children[meta.id] = [
                    child for (_kind, _label, _dom, child) in meta.inputs
                    if child is not None
                ]
        elif isinstance(event, SegmentStarted):
            span = spans.setdefault(
                event.segment_id,
                SegmentSpan(event.segment_id, f"segment {event.segment_id}"),
            )
            if span.started_at is None:
                span.started_at = event.t
        elif isinstance(event, SegmentFinished):
            span = spans.setdefault(
                event.segment_id,
                SegmentSpan(event.segment_id, f"segment {event.segment_id}"),
            )
            if span.started_at is None:
                span.started_at = event.t
            span.finished_at = event.t
            span.self_bytes = event.done_bytes

    ordered = [spans[k] for k in sorted(spans)]
    for span in ordered:
        if span.started_at is None or span.finished_at is None:
            continue
        child_overlap = 0.0
        subtree = span.self_bytes
        for child_id in children.get(span.segment_id, []):
            child = spans.get(child_id)
            if child is None:
                continue
            subtree += child.subtree_bytes
            if child.started_at is not None and child.finished_at is not None:
                child_overlap += _overlap(
                    span.started_at, span.finished_at,
                    child.started_at, child.finished_at,
                )
        span.child_seconds = child_overlap
        span.self_seconds = max(0.0, span.duration - child_overlap)
        span.subtree_bytes = subtree
    return ordered


def render_spans(spans: list[SegmentSpan], page_size: int) -> str:
    """Aligned per-segment span table (the "where the time goes" view)."""
    header = (
        f"{'seg':>3}  {'label':<32} {'start':>8} {'finish':>8} "
        f"{'total s':>8} {'self s':>8} {'self U':>9} {'subtree U':>10}"
    )
    lines = [header, "-" * len(header)]
    for span in spans:
        start = "-" if span.started_at is None else f"{span.started_at:8.1f}"
        finish = "-" if span.finished_at is None else f"{span.finished_at:8.1f}"
        lines.append(
            f"{span.segment_id:>3}  {span.label[:32]:<32} {start:>8} {finish:>8} "
            f"{span.duration:8.1f} {span.self_seconds:8.1f} "
            f"{span.self_bytes / page_size:9.1f} {span.subtree_bytes / page_size:10.1f}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the collector


#: Percent-done histogram boundaries (deciles).
_PERCENT_BOUNDS = tuple(float(b) for b in range(10, 100, 10))
#: Speed histogram boundaries in U/s (log-ish spacing).
_SPEED_BOUNDS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


class MetricsCollector:
    """TraceBus subscriber that aggregates events into a registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def handle(self, event: TraceEvent) -> None:
        reg = self.registry
        reg.counter(f"events.{event.kind}").inc()
        if isinstance(event, PageRead):
            kind = "seq" if event.sequential else "random"
            reg.counter(f"io.reads.{kind}").inc()
        elif isinstance(event, PageWritten):
            reg.counter("io.writes").inc()
        elif isinstance(event, BufferAccess):
            reg.counter("buffer.hits" if event.hit else "buffer.misses").inc()
        elif isinstance(event, SegmentStarted):
            reg.counter("segments.started").inc()
        elif isinstance(event, SegmentFinished):
            reg.counter("segments.finished").inc()
            reg.counter("work.segment_bytes").inc(event.done_bytes)
        elif isinstance(event, ExtraPass):
            reg.counter("work.extra_pass_bytes").inc(event.nbytes)
        elif isinstance(event, CardinalityRefined):
            reg.counter("refine.cardinality_transitions").inc()
        elif isinstance(event, DominantSwitched):
            reg.counter("refine.dominant_switches").inc()
        elif isinstance(event, SpeedEstimated):
            reg.gauge("speed.pages_per_sec").set(event.pages_per_sec)
            if event.pages_per_sec is not None:
                reg.histogram("speed.distribution", _SPEED_BOUNDS).observe(
                    event.pages_per_sec
                )
        elif isinstance(event, ReportEmitted):
            reg.counter("reports.emitted").inc()
            reg.gauge("progress.fraction_done").set(event.fraction_done)
            reg.gauge("progress.est_cost_pages").set(event.est_cost_pages)
            reg.gauge("progress.done_pages").set(event.done_pages)
            reg.histogram("progress.percent_done", _PERCENT_BOUNDS).observe(
                100.0 * event.fraction_done
            )
        elif isinstance(event, QueryFinished):
            reg.gauge("query.elapsed_seconds").set(event.elapsed)
            reg.gauge("query.actual_cost_pages").set(event.actual_cost_pages)

    # Convenience: collect a whole recorded stream at once.
    def collect(self, events: list[TraceEvent]) -> MetricsRegistry:
        for event in events:
            self.handle(event)
        return self.registry
