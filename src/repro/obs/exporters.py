"""Trace exporters: JSONL event logs and Chrome ``trace_event`` JSON.

Three output formats:

* **JSONL** — one event dict per line, lossless (``read_jsonl`` inverts
  it exactly).  The estimator-accuracy audit replays these files.
* **Chrome trace** — a ``{"traceEvents": [...]}`` document loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev, keyed on **virtual
  time** (1 virtual second = 1 trace second; the viewer shows µs).
  Segments become complete ("X") spans on their own rows, refinement
  provenance becomes instant ("i") events, and progress/speed/cost become
  counter ("C") tracks.
* **metrics text** — :meth:`repro.obs.metrics.MetricsRegistry.render`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, TextIO, Union

from repro.obs.events import (
    CardinalityRefined,
    DominantSwitched,
    ExtraPass,
    QueryFinished,
    QueryStarted,
    ReportEmitted,
    SpeedEstimated,
    TraceEvent,
    event_from_dict,
)
from repro.obs.metrics import compute_spans

#: Virtual seconds -> Chrome trace microseconds.
_US = 1_000_000.0


# ----------------------------------------------------------------------
# JSONL


def write_jsonl(events: list[TraceEvent], target: Union[str, Path, TextIO]) -> int:
    """Write one JSON object per line; returns the number of lines."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fp:
            return write_jsonl(events, fp)
    for event in events:
        target.write(json.dumps(event.to_dict(), sort_keys=True))
        target.write("\n")
    return len(events)


def read_jsonl(source: Union[str, Path, TextIO]) -> list[TraceEvent]:
    """Parse a JSONL trace back into typed events (audit replay path)."""
    if isinstance(source, (str, Path)):
        with open(source, encoding="utf-8") as fp:
            return read_jsonl(fp)
    events = []
    for line in source:
        line = line.strip()
        if line:
            events.append(event_from_dict(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Chrome trace_event


def _span(name: str, cat: str, start: float, dur: float, tid: int,
          args: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": name, "cat": cat, "ph": "X", "pid": 1, "tid": tid,
        "ts": start * _US, "dur": dur * _US,
    }
    if args:
        out["args"] = args
    return out


def _instant(name: str, cat: str, t: float, tid: int,
             args: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    out: dict[str, Any] = {
        "name": name, "cat": cat, "ph": "i", "s": "t", "pid": 1, "tid": tid,
        "ts": t * _US,
    }
    if args:
        out["args"] = args
    return out


def _counter(name: str, t: float, value: float) -> dict[str, Any]:
    return {
        "name": name, "cat": "progress", "ph": "C", "pid": 1, "tid": 0,
        "ts": t * _US, "args": {"value": value},
    }


def chrome_trace(events: list[TraceEvent]) -> dict[str, Any]:
    """Convert a recorded event stream to a Chrome trace document."""
    started: Optional[QueryStarted] = None
    finished: Optional[QueryFinished] = None
    for event in events:
        if isinstance(event, QueryStarted):
            started = event
        elif isinstance(event, QueryFinished):
            finished = event

    trace_events: list[dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "repro progress indicator (virtual time)"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "query"}},
    ]

    labels: dict[int, str] = {}
    if started is not None:
        for meta in started.segments:
            labels[meta.id] = meta.label
            trace_events.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": meta.id + 1,
                 "args": {"name": f"segment {meta.id}: {meta.label}"}}
            )

    # The root span covers the whole query's virtual duration.
    if started is not None and finished is not None:
        trace_events.append(_span(
            started.label, "query", started.t, finished.elapsed, tid=0,
            args={
                "initial_cost_pages": started.initial_cost_pages,
                "actual_cost_pages": finished.actual_cost_pages,
                "segments": started.num_segments,
            },
        ))

    for span in compute_spans(events):
        if span.started_at is None or span.finished_at is None:
            continue
        trace_events.append(_span(
            labels.get(span.segment_id, span.label), "segment",
            span.started_at, span.duration, tid=span.segment_id + 1,
            args={
                "self_seconds": span.self_seconds,
                "self_bytes": span.self_bytes,
                "subtree_bytes": span.subtree_bytes,
            },
        ))

    for event in events:
        if isinstance(event, ReportEmitted):
            trace_events.append(_counter("percent done", event.t,
                                         100.0 * event.fraction_done))
            trace_events.append(_counter("est cost (U)", event.t,
                                         event.est_cost_pages))
        elif isinstance(event, SpeedEstimated):
            if event.pages_per_sec is not None:
                trace_events.append(_counter("speed (U/s)", event.t,
                                             event.pages_per_sec))
        elif isinstance(event, CardinalityRefined):
            trace_events.append(_instant(
                f"refine {event.label}: {event.source_from}->{event.source_to}",
                "refine", event.t, event.segment_id + 1,
                args={"est_rows_from": event.est_rows_from,
                      "est_rows_to": event.est_rows_to},
            ))
        elif isinstance(event, DominantSwitched):
            trace_events.append(_instant(
                f"dominant input -> {event.to_input}", "refine",
                event.t, event.segment_id + 1,
                args={"from": event.from_input, "to": event.to_input},
            ))
        elif isinstance(event, ExtraPass):
            trace_events.append(_instant(
                "extra pass", "work", event.t, event.segment_id + 1,
                args={"nbytes": event.nbytes},
            ))

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def chrome_trace_concurrent(
    streams: "dict[str, list[TraceEvent]]",
) -> dict[str, Any]:
    """Merge per-query event streams into one multi-process Chrome trace.

    ``streams`` maps a query label to that query's recorded events (each
    in-flight query under :mod:`repro.sched` keeps its own stream).  Every
    query becomes its own trace *process* (pid), so the viewer stacks the
    queries vertically and concurrent execution shows up as overlapping
    segment spans on the shared virtual-time axis.

    Single-query exports should keep using :func:`chrome_trace`; its
    output format is unchanged (and golden-tested).
    """
    merged: list[dict[str, Any]] = []
    for pid, (label, events) in enumerate(streams.items(), start=1):
        doc = chrome_trace(events)
        for entry in doc["traceEvents"]:
            entry = dict(entry)
            entry["pid"] = pid
            if entry.get("ph") == "M" and entry.get("name") == "process_name":
                entry = dict(entry)
                entry["args"] = {"name": f"{label} (virtual time)"}
            merged.append(entry)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


def overlapping_query_spans(doc: dict[str, Any]) -> int:
    """Count pairs of root query spans (from different pids) that overlap
    in virtual time — the acceptance signal that queries truly ran
    interleaved rather than back to back."""
    roots = [
        (e["ts"], e["ts"] + e["dur"], e.get("pid"))
        for e in doc.get("traceEvents", [])
        if e.get("ph") == "X" and e.get("cat") == "query"
    ]
    overlaps = 0
    for i, (lo_a, hi_a, pid_a) in enumerate(roots):
        for lo_b, hi_b, pid_b in roots[i + 1:]:
            if pid_a != pid_b and lo_a < hi_b and lo_b < hi_a:
                overlaps += 1
    return overlaps


def write_chrome_trace(events: list[TraceEvent],
                       target: Union[str, Path, TextIO]) -> dict[str, Any]:
    """Write the Chrome trace JSON; returns the document."""
    doc = chrome_trace(events)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fp:
            json.dump(doc, fp, indent=1, sort_keys=True)
    else:
        json.dump(doc, target, indent=1, sort_keys=True)
    return doc


def span_coverage(doc: dict[str, Any]) -> float:
    """Fraction of the root query span covered by the union of all spans.

    The root span itself participates, so a well-formed trace reports
    1.0; the value dips below 1.0 only if the root span is missing
    (query never finished) — the CLI surfaces this as a sanity check.
    """
    spans = [
        (e["ts"], e["ts"] + e["dur"])
        for e in doc.get("traceEvents", [])
        if e.get("ph") == "X"
    ]
    roots = [
        (e["ts"], e["ts"] + e["dur"])
        for e in doc.get("traceEvents", [])
        if e.get("ph") == "X" and e.get("cat") == "query"
    ]
    if not roots:
        return 0.0
    lo, hi = roots[0]
    if hi <= lo:
        return 1.0
    covered = 0.0
    cursor = lo
    for start, end in sorted(spans):
        start, end = max(start, cursor), min(end, hi)
        if end > start:
            covered += end - start
            cursor = end
    return covered / (hi - lo)
