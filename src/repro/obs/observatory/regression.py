"""The per-PR accuracy regression gate.

``python -m repro.obs leaderboard --check`` runs the tier-1 grid, then
compares the fresh aggregates against the committed baseline
(``benchmarks/results/leaderboard_baseline.json``) with this module.  A
gated aggregate that worsens past its tolerance fails the gate (exit
code 1 in the CLI), giving every estimator-ensemble or re-optimization
PR an automatic accuracy trial.

Gate rules:

* Each gated aggregate has a direction.  For lower-is-better metrics the
  limit is ``baseline * (1 + tolerance) + slack``; for higher-is-better
  (coverage) it is ``baseline * (1 - tolerance) - slack``.  The small
  absolute ``slack`` keeps near-zero baselines from rejecting noise-free
  improvements' neighbours (e.g. a progress error of 0.002 vs. 0.0019).
* ``monotonicity_violations`` gates absolutely: with the committed
  baseline at zero, any new violation fails regardless of tolerance.
* Every cell named in the baseline must be present in the current run —
  a grid that silently shrank is a coverage regression, not a win.
* Aggregates present in the baseline but absent from the current run
  fail; new aggregates in the current run are ignored (forward
  compatible).

The estimator redesign adds a second, within-run gate
(:func:`check_selector`): when the board raced the ensemble, the
selector's displayed stream must be at least as accurate as the paper
baseline candidate on the headline metrics — an online selector that
loses to its own default candidate is a defect, not a tuning question.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.observatory.leaderboard import Leaderboard

DEFAULT_TOLERANCE = 0.05

#: metric -> (direction, absolute slack).  Directions: "lower" = lower is
#: better, "higher" = higher is better.
GATED_AGGREGATES: dict[str, tuple[str, float]] = {
    "qerror_geomean": ("lower", 0.02),
    "qerror_p50": ("lower", 0.02),
    "qerror_p95": ("lower", 0.05),
    "qerror_p99": ("lower", 0.05),
    "progress_err_mean": ("lower", 0.002),
    "progress_err_max": ("lower", 0.005),
    "tt10_mean": ("lower", 0.01),
    "monotonicity_violations": ("lower", 0.0),
    "coverage": ("higher", 0.0),
}


@dataclass(frozen=True)
class AggregateCheck:
    """One gated aggregate compared against the baseline."""

    metric: str
    direction: str
    baseline: float
    current: float
    limit: float
    ok: bool


@dataclass(frozen=True)
class RegressionReport:
    """The gate's full verdict."""

    checks: tuple[AggregateCheck, ...]
    #: Baseline cells absent from the current run.
    missing_cells: tuple[str, ...]
    #: Baseline aggregates absent from the current run.
    missing_aggregates: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return (
            all(c.ok for c in self.checks)
            and not self.missing_cells
            and not self.missing_aggregates
        )

    def render(self) -> str:
        header = (
            f"{'aggregate':<24} {'baseline':>10} {'current':>10} "
            f"{'limit':>10}  verdict"
        )
        lines = [header, "-" * len(header)]
        for c in self.checks:
            verdict = "ok" if c.ok else "REGRESSED"
            lines.append(
                f"{c.metric:<24} {c.baseline:>10.4g} {c.current:>10.4g} "
                f"{c.limit:>10.4g}  {verdict}"
            )
        for name in self.missing_aggregates:
            lines.append(f"{name:<24} {'?':>10} {'missing':>10} {'':>10}  "
                         "REGRESSED")
        if self.missing_cells:
            lines.append(
                f"missing cells ({len(self.missing_cells)}): "
                + ", ".join(self.missing_cells)
            )
        lines.append("")
        lines.append("gate: PASS" if self.ok else "gate: FAIL")
        return "\n".join(lines)


#: Metrics on which the ensemble selector must not lose to the paper
#: candidate (within-run comparison; see :func:`check_selector`).
SELECTOR_GATED_METRICS = ("qerror_geomean", "progress_err_mean")

#: Absolute slack for the selector-vs-paper comparison: equality passes
#: (the selector riding the paper candidate throughout is a valid
#: outcome), and only a real accuracy loss beyond float noise fails.
SELECTOR_SLACK = 1e-9


@dataclass(frozen=True)
class SelectorCheck:
    """Selector-vs-paper on one metric (lower is better for both)."""

    metric: str
    paper: float
    selector: float
    ok: bool


@dataclass(frozen=True)
class SelectorReport:
    """The within-run selector gate's verdict."""

    checks: tuple[SelectorCheck, ...]
    #: True when the board carried no candidate columns to compare (a
    #: non-ensemble run); the gate is then vacuous, not failed.
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def render(self) -> str:
        if self.skipped:
            return "selector gate: skipped (no candidate streams in this run)"
        header = (
            f"{'metric':<24} {'paper':>12} {'selector':>12}  verdict"
        )
        lines = [header, "-" * len(header)]
        for c in self.checks:
            verdict = "ok" if c.ok else "LOSES TO PAPER"
            lines.append(
                f"{c.metric:<24} {c.paper:>12.6g} {c.selector:>12.6g}  "
                f"{verdict}"
            )
        lines.append("")
        lines.append("selector gate: PASS" if self.ok else "selector gate: FAIL")
        return "\n".join(lines)


def check_selector(current: Leaderboard) -> SelectorReport:
    """Gate the selector's stream against its own paper candidate.

    Compares the board's top-level aggregates (the displayed stream —
    the selector's choices when run with the ensemble) to the ``paper``
    candidate column on :data:`SELECTOR_GATED_METRICS`.  Ties pass;
    skipped (vacuously ok) when the run has no ``paper`` column.
    """
    paper = current.estimators.get("paper")
    if paper is None:
        return SelectorReport(checks=(), skipped=True)
    checks = []
    for metric in SELECTOR_GATED_METRICS:
        if metric not in paper or metric not in current.aggregates:
            continue
        base = float(paper[metric])
        cur = float(current.aggregates[metric])
        checks.append(SelectorCheck(
            metric=metric, paper=base, selector=cur,
            ok=cur <= base + SELECTOR_SLACK,
        ))
    return SelectorReport(checks=tuple(checks))


def check_regression(
    baseline: Leaderboard,
    current: Leaderboard,
    tolerance: float = DEFAULT_TOLERANCE,
) -> RegressionReport:
    """Compare a fresh run against the committed baseline."""
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    checks: list[AggregateCheck] = []
    missing_aggregates: list[str] = []
    for metric, (direction, slack) in GATED_AGGREGATES.items():
        if metric not in baseline.aggregates:
            continue  # older baseline without this aggregate: nothing to gate
        base = float(baseline.aggregates[metric])
        if metric not in current.aggregates:
            missing_aggregates.append(metric)
            continue
        cur = float(current.aggregates[metric])
        if direction == "lower":
            limit = base * (1.0 + tolerance) + slack
            ok = cur <= limit
        else:
            limit = base * (1.0 - tolerance) - slack
            ok = cur >= limit
        checks.append(AggregateCheck(
            metric=metric, direction=direction,
            baseline=base, current=cur, limit=limit, ok=ok,
        ))
    current_names = {c.name for c in current.cells}
    missing_cells = tuple(
        c.name for c in baseline.cells if c.name not in current_names
    )
    return RegressionReport(
        checks=tuple(checks),
        missing_cells=missing_cells,
        missing_aggregates=tuple(missing_aggregates),
    )
