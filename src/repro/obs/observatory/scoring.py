"""Per-query progress-accuracy scoring, replayed from a sealed trace.

This module commits to *exact* metric definitions (documented in
``docs/observability.md``); the leaderboard, the regression gate, and the
tests all rely on them.  All inputs come from one query's recorded trace
events — the same replay machinery as :mod:`repro.obs.audit`, extended
from one error column to a full score card.

**Ground truth.**  The trace's own ``query_finished`` event: total
elapsed virtual time ``T`` and the exact total cost.  Queries that end in
``query_cancelled``, ``query_timed_out``, or ``query_failed`` have no
ground truth and are *excluded from accuracy scoring* but counted in the
leaderboard's coverage statistics.

**Report eligibility.**  Reports with ``degraded=True`` (fallbacks served
from behind the degrade-don't-die boundary) are excluded from every error
metric but counted in ``reports_degraded``.  Reports whose
``est_remaining_seconds`` is None (warm-up) participate only in the
progress-error and monotonicity metrics.

**Metrics** (for a finished query with reports at elapsed ``t_i``,
estimates ``est_i``, actual remaining ``act_i = max(T - t_i, 0)``):

* *q-error* — ``q_i = max(est_i', act_i') / min(est_i', act_i')`` where
  ``x' = max(x, QERROR_FLOOR_SECONDS)`` floors both operands (the floor
  keeps the tail of a run, where actual remaining approaches zero, from
  dividing by ~0).  Aggregated per query as the geometric mean and max.
* *progress error* — ``|fraction_done_i - t_i / T|``, the absolute
  deviation of the displayed completed fraction from true linear
  progress; aggregated as mean and max (fraction units, 0..1).
* *monotonicity violations* — the number of consecutive eligible report
  pairs where ``fraction_done`` decreases by more than 1e-9 (the paper's
  indicator is monotone by construction; a violation is an estimator
  defect).
* *time-to-within-10%* — the earliest elapsed fraction ``t*/T`` such
  that every estimate at ``t >= t*`` satisfies
  ``|est - act| <= max(0.1 * T, QERROR_FLOOR_SECONDS)``; 1.0 when no
  such suffix exists (or the query emitted no estimates).  Lower is
  better: 0.1 means the indicator locked on after 10% of the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.obs.events import (
    CandidateEstimated,
    QueryCancelled,
    QueryFailed,
    QueryFinished,
    QueryTimedOut,
    ReportEmitted,
    TraceEvent,
)

#: Floor, in virtual seconds, applied to both operands of the q-error
#: ratio and to the within-10% band.
QERROR_FLOOR_SECONDS = 1.0

#: fraction_done decreases larger than this are monotonicity violations.
MONOTONICITY_EPSILON = 1e-9


@dataclass(frozen=True)
class QueryScore:
    """The score card of one traced query run."""

    #: Terminal state observed in the trace: "finished", "cancelled",
    #: "timed_out", "failed", or "unterminated" (no terminal event).
    terminal: str
    #: True when the run produced accuracy metrics (terminal == finished
    #: and at least one eligible report).
    scored: bool

    # -- coverage ------------------------------------------------------
    #: Every report_emitted event seen, eligible or not.
    reports_total: int
    #: Reports excluded as degraded fallbacks.
    reports_degraded: int
    #: Non-degraded reports carrying a remaining-time estimate.
    reports_estimated: int

    # -- accuracy (None unless ``scored``) -----------------------------
    qerror_geomean: Optional[float] = None
    qerror_max: Optional[float] = None
    progress_err_mean: Optional[float] = None
    progress_err_max: Optional[float] = None
    monotonicity_violations: Optional[int] = None
    #: Elapsed fraction at which estimates locked within the 10% band.
    time_to_within_10: Optional[float] = None

    # -- run facts -----------------------------------------------------
    elapsed: Optional[float] = None
    actual_cost_pages: Optional[float] = None


def _qerror(est: float, actual: float) -> float:
    est = max(est, QERROR_FLOOR_SECONDS)
    actual = max(actual, QERROR_FLOOR_SECONDS)
    return max(est, actual) / min(est, actual)


def _geomean(values: Iterable[float]) -> float:
    logs = [math.log(v) for v in values]
    return math.exp(sum(logs) / len(logs))


def _terminal_of(events: list[TraceEvent]) -> tuple[str, Optional[QueryFinished]]:
    for event in events:
        if isinstance(event, QueryFinished):
            return ("finished", event)
        if isinstance(event, QueryCancelled):
            return ("cancelled", None)
        if isinstance(event, QueryTimedOut):
            return ("timed_out", None)
        if isinstance(event, QueryFailed):
            return ("failed", None)
    return ("unterminated", None)


def score_events(events: list[TraceEvent]) -> QueryScore:
    """Score one query's recorded trace (see module docstring)."""
    reports = [e for e in events if isinstance(e, ReportEmitted)]
    terminal, finished = _terminal_of(events)
    eligible = [r for r in reports if not r.degraded]
    return _score_stream(terminal, finished, len(reports), eligible)


def score_candidate_events(events: list[TraceEvent]) -> dict[str, QueryScore]:
    """Score each estimator's candidate stream from one query's trace.

    Groups ``candidate_estimated`` events by estimator name and scores
    each stream with exactly the metric definitions above — one
    :class:`QueryScore` per racing candidate, against the same
    ``query_finished`` ground truth as the displayed reports.  Empty for
    traces recorded without the ensemble (no candidate events).
    """
    terminal, finished = _terminal_of(events)
    by_name: dict[str, list[CandidateEstimated]] = {}
    for event in events:
        if isinstance(event, CandidateEstimated):
            by_name.setdefault(event.estimator, []).append(event)
    return {
        name: _score_stream(terminal, finished, len(stream), stream)
        for name, stream in by_name.items()
    }


def _score_stream(
    terminal: str,
    finished: Optional[QueryFinished],
    reports_total: int,
    eligible: "list",
) -> QueryScore:
    """Shared metric core: ``eligible`` is any sample sequence exposing
    ``elapsed``, ``fraction_done`` and ``est_remaining_seconds`` (both
    :class:`ReportEmitted` and :class:`CandidateEstimated` qualify)."""
    estimated = [r for r in eligible if r.est_remaining_seconds is not None]

    coverage = dict(
        reports_total=reports_total,
        reports_degraded=reports_total - len(eligible),
        reports_estimated=len(estimated),
    )
    if terminal != "finished" or finished is None or not eligible:
        return QueryScore(terminal=terminal, scored=False, **coverage)

    total = finished.elapsed
    # q-error over remaining-time estimates
    qerrors = [
        _qerror(r.est_remaining_seconds, max(total - r.elapsed, 0.0))
        for r in estimated
        if r.est_remaining_seconds is not None  # narrowing for type-checkers
    ]
    # absolute progress error vs. true linear progress
    progress_errors = [
        abs(r.fraction_done - (r.elapsed / total if total > 0 else 1.0))
        for r in eligible
    ]
    # monotonicity over consecutive eligible reports
    violations = sum(
        1
        for prev, cur in zip(eligible, eligible[1:])
        if cur.fraction_done < prev.fraction_done - MONOTONICITY_EPSILON
    )
    return QueryScore(
        terminal=terminal,
        scored=True,
        qerror_geomean=_geomean(qerrors) if qerrors else None,
        qerror_max=max(qerrors) if qerrors else None,
        progress_err_mean=sum(progress_errors) / len(progress_errors),
        progress_err_max=max(progress_errors),
        monotonicity_violations=violations,
        time_to_within_10=_time_to_within(estimated, total),
        elapsed=total,
        actual_cost_pages=finished.actual_cost_pages,
        **coverage,
    )


def _time_to_within(estimated: "list", total: float) -> float:
    """Earliest elapsed fraction from which all estimates stay in band."""
    if not estimated or total <= 0:
        return 1.0
    band = max(0.1 * total, QERROR_FLOOR_SECONDS)
    lock_from: Optional[float] = None
    for report in estimated:
        assert report.est_remaining_seconds is not None
        actual = max(total - report.elapsed, 0.0)
        if abs(report.est_remaining_seconds - actual) <= band:
            if lock_from is None:
                lock_from = report.elapsed
        else:
            lock_from = None  # the streak must reach the end of the run
    if lock_from is None:
        return 1.0
    return min(max(lock_from / total, 0.0), 1.0)
