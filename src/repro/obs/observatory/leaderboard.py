"""Run workload-grid variants, score them, persist the leaderboard.

One leaderboard run executes a list of :class:`~repro.workloads.grid.Variant`
cells under the Session API with tracing on — databases are built once
per (scale × skew) dataset cell and restarted (cold buffer pool) between
variants, mirroring the paper's Section 5.1 protocol — and replays each
sealed trace through :mod:`repro.obs.observatory.scoring`.

The persisted form is schema-versioned JSON (``repro.leaderboard/2``),
one file per run under ``benchmarks/results/``, plus the committed
baseline ``leaderboard_baseline.json`` that the per-PR regression gate
(:mod:`repro.obs.observatory.regression`) compares against.  Runs are
deterministic — simulated engine, seeded generators, virtual clock — so
the file is stable and diffable; it deliberately carries no wall-clock
timestamp.

Schema version 2 (the pluggable-estimator redesign): cells run under the
ensemble selector by default, the board records which ``estimator``
submitted the queries, and ``estimators`` holds one aggregate column per
registered candidate, scored from its ``candidate_estimated`` stream with
the identical metric definitions as the displayed reports.  The selector
row is the board's top-level ``aggregates`` (the displayed stream *is*
the selector's choice); the ``paper`` column is the pre-redesign
baseline path, bit-identical by construction.

Aggregates (over *scored* cells; the q-error percentiles come from an
:class:`repro.obs.metrics.Histogram`, the same estimator whose p50/p95/p99
lines the flat metrics exporter emits):

* ``cells_total`` / ``cells_scored`` / ``coverage`` — population counts;
  cells ending in cancelled/timed-out/failed count toward total only.
* ``qerror_geomean`` — geometric mean of per-cell q-error geomeans.
* ``qerror_p50`` / ``qerror_p95`` / ``qerror_p99`` — histogram-estimated
  percentiles of the per-cell q-error geomeans.
* ``qerror_max`` — worst single-report q-error anywhere in the grid.
* ``progress_err_mean`` / ``progress_err_max`` — mean of per-cell means /
  max of per-cell maxes of the absolute progress error.
* ``monotonicity_violations`` — total count across cells.
* ``tt10_mean`` — mean time-to-within-10% elapsed fraction.
* ``reports_total`` / ``reports_degraded`` — coverage of the report
  population, including degraded fallbacks (excluded from error metrics).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Callable, Optional, TextIO, Union

from repro.config import SystemConfig
from repro.database import Database
from repro.obs.bus import TraceBus
from repro.obs.metrics import Histogram
from repro.obs.observatory.scoring import (
    QueryScore,
    score_candidate_events,
    score_events,
)
from repro.workloads.grid import Variant

LEADERBOARD_SCHEMA = "repro.leaderboard/2"

#: The estimator leaderboard runs submit queries with (races every
#: registered candidate and scores each one's stream).
DEFAULT_RUN_ESTIMATOR = "ensemble"

#: The committed baseline the per-PR regression gate compares against.
BASELINE_PATH = Path("benchmarks/results/leaderboard_baseline.json")

#: Histogram bounds for per-cell q-error geomeans.  A q-error is >= 1 by
#: definition, so the leaderboard clamps the histogram's interpolated
#: quantiles (whose first bucket interpolates from 0) back to >= 1.
_QERROR_BOUNDS = (
    1.0, 1.05, 1.1, 1.2, 1.35, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 6.0, 10.0,
    20.0, 50.0, 100.0,
)

#: The grid runs under the experiment memory budget of the paper benches
#: (24-page work_mem makes the bigger joins spill into multi-segment
#: plans, so blocking/multi-stage refinement is exercised, not just scans).
def grid_config() -> SystemConfig:
    return SystemConfig(work_mem_pages=24)


@dataclass(frozen=True)
class LeaderboardCell:
    """One scored grid cell: the variant's axes plus its score card."""

    name: str
    scale: str
    skew: str
    shape: str
    selectivity: str
    terminal: str
    scored: bool
    reports_total: int
    reports_degraded: int
    reports_estimated: int
    qerror_geomean: Optional[float]
    qerror_max: Optional[float]
    progress_err_mean: Optional[float]
    progress_err_max: Optional[float]
    monotonicity_violations: Optional[int]
    time_to_within_10: Optional[float]
    elapsed: Optional[float]
    actual_cost_pages: Optional[float]
    row_count: Optional[int]


@dataclass(frozen=True)
class Leaderboard:
    """One persisted leaderboard run."""

    schema: str
    grid: str
    cells: tuple[LeaderboardCell, ...]
    aggregates: dict[str, float]
    #: Which estimator the cells were submitted with ("ensemble": the
    #: online selector; ``aggregates`` then scores the selector's
    #: displayed stream).
    estimator: str = DEFAULT_RUN_ESTIMATOR
    #: Per-candidate aggregate columns, keyed by estimator name, each
    #: computed with :func:`aggregate_cells` over that candidate's
    #: ``candidate_estimated`` stream.  Empty when the run's estimator
    #: emitted no candidate events (any non-ensemble estimator).
    estimators: dict[str, dict[str, float]] = field(default_factory=dict)

    def cell(self, name: str) -> Optional[LeaderboardCell]:
        return next((c for c in self.cells if c.name == name), None)


# ----------------------------------------------------------------------
# running


def _cell_from_score(
    variant: Variant, score: QueryScore, row_count: Optional[int]
) -> LeaderboardCell:
    return LeaderboardCell(
        name=variant.name,
        scale=variant.scale_key,
        skew=variant.skew,
        shape=variant.shape,
        selectivity=variant.selectivity_key,
        terminal=score.terminal,
        scored=score.scored,
        reports_total=score.reports_total,
        reports_degraded=score.reports_degraded,
        reports_estimated=score.reports_estimated,
        qerror_geomean=score.qerror_geomean,
        qerror_max=score.qerror_max,
        progress_err_mean=score.progress_err_mean,
        progress_err_max=score.progress_err_max,
        monotonicity_violations=score.monotonicity_violations,
        time_to_within_10=score.time_to_within_10,
        elapsed=score.elapsed,
        actual_cost_pages=score.actual_cost_pages,
        row_count=row_count,
    )


def run_leaderboard(
    variants: list[Variant],
    grid_name: str,
    config: Optional[SystemConfig] = None,
    echo: Optional[Callable[[str], None]] = None,
    estimator: str = DEFAULT_RUN_ESTIMATOR,
) -> Leaderboard:
    """Execute and score every variant; return the aggregated board.

    Databases are cached per (scale × skew) dataset cell and restarted
    before each variant, so every query starts on a cold buffer pool.
    A variant whose query raises is still scored from its trace (the
    terminal event records the failure) and counts against coverage.

    ``estimator`` is the submit-time strategy; the default ensemble also
    emits every candidate's estimates, which land in per-estimator
    aggregate columns.  Dataset caching is per invocation, so learned
    history never leaks between runs — two identical calls produce
    byte-identical boards.
    """
    config = config if config is not None else grid_config()
    datasets: dict[tuple[str, str], Database] = {}
    cells: list[LeaderboardCell] = []
    candidate_cells: dict[str, list[LeaderboardCell]] = {}
    for variant in variants:
        db = datasets.get(variant.dataset_key)
        if db is None:
            db = datasets[variant.dataset_key] = variant.build_database(config)
        db.restart()
        trace = TraceBus()
        row_count: Optional[int] = None
        try:
            handle = db.connect().submit(
                variant.sql, name=variant.name, trace=trace, keep_rows=False,
                estimator=estimator,
            )
            row_count = handle.result().row_count
        except Exception:  # noqa: BLE001 - a failing cell is a data point,
            # not a leaderboard abort; whatever the trace recorded (possibly
            # nothing, for a plan-time failure) scores it as unscored.
            pass
        events = list(trace.events)
        score = score_events(events)
        cells.append(_cell_from_score(variant, score, row_count))
        for name, cand_score in score_candidate_events(events).items():
            candidate_cells.setdefault(name, []).append(
                _cell_from_score(variant, cand_score, row_count)
            )
        if echo is not None:
            echo(_cell_line(cells[-1]))
    return Leaderboard(
        schema=LEADERBOARD_SCHEMA,
        grid=grid_name,
        cells=tuple(cells),
        aggregates=aggregate_cells(cells),
        estimator=estimator,
        estimators={
            name: aggregate_cells(cand)
            for name, cand in sorted(candidate_cells.items())
        },
    )


def _cell_line(cell: LeaderboardCell) -> str:
    if not cell.scored:
        return f"{cell.name:<28} {cell.terminal:>10}  (not scored)"
    assert cell.qerror_geomean is not None
    assert cell.progress_err_mean is not None
    assert cell.time_to_within_10 is not None
    return (
        f"{cell.name:<28} qerr {cell.qerror_geomean:6.2f}  "
        f"perr {100 * cell.progress_err_mean:5.1f}%  "
        f"tt10 {cell.time_to_within_10:4.2f}  "
        f"mono {cell.monotonicity_violations}  "
        f"T {cell.elapsed:7.1f}s"
    )


# ----------------------------------------------------------------------
# aggregation


def aggregate_cells(cells: list[LeaderboardCell]) -> dict[str, float]:
    """The committed aggregate definitions (see module docstring)."""
    scored = [c for c in cells if c.scored]
    aggregates: dict[str, float] = {
        "cells_total": float(len(cells)),
        "cells_scored": float(len(scored)),
        "coverage": (len(scored) / len(cells)) if cells else 0.0,
        "reports_total": float(sum(c.reports_total for c in cells)),
        "reports_degraded": float(sum(c.reports_degraded for c in cells)),
    }
    if not scored:
        return {k: round(v, 9) for k, v in aggregates.items()}

    qerror_hist = Histogram("qerror", _QERROR_BOUNDS)
    geomeans: list[float] = []
    for c in scored:
        if c.qerror_geomean is not None:
            geomeans.append(c.qerror_geomean)
            qerror_hist.observe(c.qerror_geomean)
    if geomeans:
        aggregates["qerror_geomean"] = math.exp(
            sum(math.log(g) for g in geomeans) / len(geomeans)
        )
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            quantile = qerror_hist.quantile(q)
            assert quantile is not None
            aggregates[f"qerror_{label}"] = max(1.0, quantile)
        aggregates["qerror_max"] = max(
            c.qerror_max for c in scored if c.qerror_max is not None
        )
    progress_means = [
        c.progress_err_mean for c in scored if c.progress_err_mean is not None
    ]
    aggregates["progress_err_mean"] = sum(progress_means) / len(progress_means)
    aggregates["progress_err_max"] = max(
        c.progress_err_max for c in scored if c.progress_err_max is not None
    )
    aggregates["monotonicity_violations"] = float(sum(
        c.monotonicity_violations or 0 for c in scored
    ))
    tt10 = [
        c.time_to_within_10 for c in scored if c.time_to_within_10 is not None
    ]
    aggregates["tt10_mean"] = sum(tt10) / len(tt10)
    # Round: the values are deterministic, but rounding keeps the committed
    # baseline JSON readable and immune to libm last-bit differences.
    return {k: round(v, 9) for k, v in aggregates.items()}


# ----------------------------------------------------------------------
# persistence


def write_leaderboard(
    board: Leaderboard, target: Union[str, Path, TextIO]
) -> dict:
    """Serialize one leaderboard run to schema-versioned JSON."""
    doc = {
        "schema": board.schema,
        "grid": board.grid,
        "estimator": board.estimator,
        "aggregates": board.aggregates,
        "estimators": board.estimators,
        "cells": [asdict(c) for c in board.cells],
    }
    if hasattr(target, "write"):
        json.dump(doc, target, indent=2, sort_keys=True)  # type: ignore[arg-type]
        target.write("\n")  # type: ignore[union-attr]
    else:
        path = Path(target)  # type: ignore[arg-type]
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return doc


def load_leaderboard(source: Union[str, Path, TextIO]) -> Leaderboard:
    """Load a persisted leaderboard, validating the schema version."""
    if hasattr(source, "read"):
        doc = json.load(source)  # type: ignore[arg-type]
    else:
        with open(source) as fh:  # type: ignore[arg-type]
            doc = json.load(fh)
    schema = doc.get("schema")
    if schema != LEADERBOARD_SCHEMA:
        raise ValueError(
            f"unsupported leaderboard schema {schema!r} "
            f"(expected {LEADERBOARD_SCHEMA!r})"
        )
    cell_fields = {f.name for f in fields(LeaderboardCell)}
    cells = tuple(
        LeaderboardCell(**{k: v for k, v in c.items() if k in cell_fields})
        for c in doc["cells"]
    )
    return Leaderboard(
        schema=schema,
        grid=doc.get("grid", "unknown"),
        cells=cells,
        aggregates=dict(doc["aggregates"]),
        estimator=doc.get("estimator", DEFAULT_RUN_ESTIMATOR),
        estimators={
            name: dict(aggs)
            for name, aggs in doc.get("estimators", {}).items()
        },
    )


#: The headline metrics shown as per-estimator columns by the CLI.
_COLUMN_METRICS = (
    ("qerror_geomean", "qerr_gm"),
    ("qerror_max", "qerr_max"),
    ("progress_err_mean", "perr_mean"),
    ("tt10_mean", "tt10"),
    ("monotonicity_violations", "mono"),
)


def render_aggregates(board: Leaderboard) -> str:
    """Aligned aggregate table for the CLI."""
    lines = [
        f"leaderboard: grid={board.grid} cells={len(board.cells)} "
        f"estimator={board.estimator}"
    ]
    for key in sorted(board.aggregates):
        lines.append(f"  {key:<24} {board.aggregates[key]:.6g}")
    if board.estimators:
        lines.append("")
        lines.append("per-estimator candidate streams "
                     "(selector row = the aggregates above):")
        header = f"  {'estimator':<12}" + "".join(
            f" {short:>10}" for _, short in _COLUMN_METRICS
        )
        lines.append(header)
        rows = [(f"[{board.estimator}]", board.aggregates)]
        rows += sorted(board.estimators.items())
        for name, aggs in rows:
            cols = "".join(
                f" {aggs[metric]:>10.4g}" if metric in aggs else f" {'-':>10}"
                for metric, _ in _COLUMN_METRICS
            )
            lines.append(f"  {name:<12}{cols}")
    return "\n".join(lines)
