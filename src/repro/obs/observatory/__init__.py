"""The progress-accuracy observatory: grid scoring, leaderboards, gates.

Built on the trace machinery of :mod:`repro.obs`: every workload-grid
variant (:mod:`repro.workloads.grid`) executes under the Session API with
tracing on, the sealed trace is replayed into exact per-query accuracy
metrics (:mod:`.scoring`), the per-cell scores aggregate into a
schema-versioned JSON leaderboard persisted under ``benchmarks/results/``
(:mod:`.leaderboard`), and a regression gate compares a fresh run against
the committed baseline (:mod:`.regression`) so every estimator or
re-optimization PR gets an automatic accuracy trial:

    python -m repro.obs leaderboard                  # run tier-1, persist
    python -m repro.obs leaderboard --check          # gate vs. baseline
"""

from repro.obs.observatory.leaderboard import (
    DEFAULT_RUN_ESTIMATOR,
    LEADERBOARD_SCHEMA,
    BASELINE_PATH,
    Leaderboard,
    LeaderboardCell,
    load_leaderboard,
    render_aggregates,
    run_leaderboard,
    write_leaderboard,
)
from repro.obs.observatory.regression import (
    DEFAULT_TOLERANCE,
    SELECTOR_GATED_METRICS,
    AggregateCheck,
    RegressionReport,
    SelectorCheck,
    SelectorReport,
    check_regression,
    check_selector,
)
from repro.obs.observatory.scoring import (
    QERROR_FLOOR_SECONDS,
    QueryScore,
    score_candidate_events,
    score_events,
)

__all__ = [
    "DEFAULT_RUN_ESTIMATOR",
    "LEADERBOARD_SCHEMA",
    "BASELINE_PATH",
    "Leaderboard",
    "LeaderboardCell",
    "load_leaderboard",
    "render_aggregates",
    "run_leaderboard",
    "write_leaderboard",
    "DEFAULT_TOLERANCE",
    "SELECTOR_GATED_METRICS",
    "AggregateCheck",
    "RegressionReport",
    "SelectorCheck",
    "SelectorReport",
    "check_regression",
    "check_selector",
    "QERROR_FLOOR_SECONDS",
    "QueryScore",
    "score_candidate_events",
    "score_events",
]
