"""Observability: tracing, metrics, and the estimator-accuracy audit.

The subsystem explains every estimate the progress indicator emits:

* :class:`TraceBus` (``repro.obs.bus``) — an ordered stream of typed
  events (``repro.obs.events``) stamped with **virtual** time.
* :class:`MetricsRegistry` / :class:`MetricsCollector`
  (``repro.obs.metrics``) — counters, gauges, histograms, and
  per-segment span accounting derived from the event stream.
* Exporters (``repro.obs.exporters``) — JSONL event logs and Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.
* The audit (``repro.obs.audit``) — replays a trace and scores every
  per-tick remaining-time estimate against ground truth.
* A CLI — ``python -m repro.obs {trace,audit,metrics}``.

Tracing is **opt-in**: pass a ``TraceBus`` to
``Database.execute_with_progress(trace=...)``, set
``ProgressConfig.trace_enabled``, or export ``REPRO_TRACE``.  Disabled
(the default), every instrumented call site costs one ``is not None``
test — ``benchmarks/bench_overhead.py`` keeps that claim measured.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.config import SystemConfig
from repro.obs.audit import AuditRow, AuditSummary, audit_events, render_audit
from repro.obs.bus import SealedTrace, TraceBus
from repro.obs.exporters import (
    chrome_trace,
    chrome_trace_concurrent,
    overlapping_query_spans,
    read_jsonl,
    span_coverage,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    MetricsCollector,
    MetricsRegistry,
    compute_spans,
    render_spans,
)

_OFF_VALUES = frozenset({"", "0", "off", "false", "no"})
_ON_VALUES = frozenset({"1", "on", "true", "yes"})


def resolve_trace_enabled(config: Optional[SystemConfig] = None) -> bool:
    """Is tracing on?  ``REPRO_TRACE`` overrides the config flag."""
    env = os.environ.get("REPRO_TRACE")
    if env is None:
        return bool(config is not None and config.progress.trace_enabled)
    return env.strip().lower() not in _OFF_VALUES


def trace_artifact_dir() -> Optional[Path]:
    """Directory trace artifacts should be written to, if any.

    ``REPRO_TRACE`` set to anything other than a plain on/off token is
    taken as a directory path: tracing is enabled *and* the bench harness
    writes ``<name>.trace.jsonl`` / ``<name>.trace.json`` artifacts there.
    """
    env = os.environ.get("REPRO_TRACE")
    if env is None:
        return None
    token = env.strip()
    if token.lower() in _OFF_VALUES or token.lower() in _ON_VALUES:
        return None
    return Path(token)
