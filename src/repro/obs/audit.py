"""Estimator-accuracy audit: replay a trace, score every estimate.

The paper evaluates its indicator by eye (Figures 6, 11, 15, 19: the
estimated remaining time versus the dashed ground-truth line).  The audit
turns that comparison into a table: replay the ``report_emitted`` events
of one recorded trace, use the trace's own ``query_finished`` event as
ground truth, and print the per-tick absolute remaining-time error plus
summary statistics.  Because the trace records exactly what the indicator
displayed, the audit is consistent with the run's :class:`ProgressLog` by
construction — the integration tests assert this.

Traces recorded with the ensemble selector also carry per-candidate
``candidate_estimated`` events; the audit scores each estimator's stream
separately (:class:`EstimatorAudit`) so the table shows which candidate
would have been most accurate in hindsight, next to what the selector
actually served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TraceError
from repro.obs.events import (
    CandidateEstimated,
    QueryFinished,
    ReportEmitted,
    TraceEvent,
)


@dataclass(frozen=True)
class AuditRow:
    """One progress report scored against ground truth."""

    elapsed: float
    percent_done: float
    est_cost_pages: float
    speed_pages_per_sec: Optional[float]
    est_remaining: Optional[float]
    actual_remaining: float

    @property
    def abs_error(self) -> Optional[float]:
        """|estimated - actual| remaining seconds; None while warming up."""
        if self.est_remaining is None:
            return None
        return abs(self.est_remaining - self.actual_remaining)


@dataclass(frozen=True)
class EstimatorAudit:
    """One racing candidate's accuracy over a monitored run."""

    name: str
    #: Candidate estimates recorded (one per report tick).
    reports: int
    #: Ticks at which the selector was serving this candidate.
    selected: int
    #: Mean / max |estimated - actual| remaining seconds over the ticks
    #: that carried an estimate; None when the run never left warm-up.
    mean_abs_error: Optional[float]
    max_abs_error: Optional[float]


@dataclass(frozen=True)
class AuditSummary:
    """Aggregate accuracy of one monitored run."""

    rows: tuple[AuditRow, ...]
    total_elapsed: float
    initial_cost_pages: Optional[float]
    actual_cost_pages: float
    #: Per-candidate accuracy, in first-seen order; empty for traces
    #: recorded without the ensemble (no candidate_estimated events).
    estimators: tuple[EstimatorAudit, ...] = ()

    @property
    def mean_abs_error(self) -> Optional[float]:
        errors = [r.abs_error for r in self.rows if r.abs_error is not None]
        if not errors:
            return None
        return sum(errors) / len(errors)

    @property
    def max_abs_error(self) -> Optional[float]:
        errors = [r.abs_error for r in self.rows if r.abs_error is not None]
        return max(errors) if errors else None


def audit_events(events: list[TraceEvent]) -> AuditSummary:
    """Score every per-tick estimate in a recorded trace."""
    finished: Optional[QueryFinished] = None
    initial_cost: Optional[float] = None
    reports: list[ReportEmitted] = []
    candidates: dict[str, list[CandidateEstimated]] = {}
    for event in events:
        if isinstance(event, ReportEmitted):
            reports.append(event)
        elif isinstance(event, CandidateEstimated):
            candidates.setdefault(event.estimator, []).append(event)
        elif isinstance(event, QueryFinished):
            finished = event
        elif event.kind == "query_started":
            initial_cost = getattr(event, "initial_cost_pages", None)
    if finished is None:
        raise TraceError(
            "trace has no query_finished event; cannot establish ground truth"
        )
    rows = tuple(
        AuditRow(
            elapsed=r.elapsed,
            percent_done=100.0 * r.fraction_done,
            est_cost_pages=r.est_cost_pages,
            speed_pages_per_sec=r.speed_pages_per_sec,
            est_remaining=r.est_remaining_seconds,
            actual_remaining=max(0.0, finished.elapsed - r.elapsed),
        )
        for r in reports
    )
    return AuditSummary(
        rows=rows,
        total_elapsed=finished.elapsed,
        initial_cost_pages=initial_cost,
        actual_cost_pages=finished.actual_cost_pages,
        estimators=tuple(
            _audit_candidate(name, stream, finished.elapsed)
            for name, stream in candidates.items()
        ),
    )


def _audit_candidate(
    name: str, stream: list[CandidateEstimated], total_elapsed: float
) -> EstimatorAudit:
    """Score one candidate's estimates against the run's ground truth."""
    errors = [
        abs(c.est_remaining_seconds - max(0.0, total_elapsed - c.elapsed))
        for c in stream
        if c.est_remaining_seconds is not None
    ]
    return EstimatorAudit(
        name=name,
        reports=len(stream),
        selected=sum(1 for c in stream if c.selected),
        mean_abs_error=sum(errors) / len(errors) if errors else None,
        max_abs_error=max(errors) if errors else None,
    )


def render_audit(summary: AuditSummary) -> str:
    """The per-tick estimate-error table, plus summary lines."""
    header = (
        f"{'t (s)':>8} {'% done':>7} {'cost (U)':>10} {'speed':>8} "
        f"{'est left':>9} {'act left':>9} {'|error|':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in summary.rows:
        speed = ("-" if row.speed_pages_per_sec is None
                 else f"{row.speed_pages_per_sec:8.1f}")
        est = "-" if row.est_remaining is None else f"{row.est_remaining:9.1f}"
        err = "-" if row.abs_error is None else f"{row.abs_error:8.1f}"
        lines.append(
            f"{row.elapsed:8.1f} {row.percent_done:7.1f} "
            f"{row.est_cost_pages:10.1f} {speed:>8} {est:>9} "
            f"{row.actual_remaining:9.1f} {err:>8}"
        )
    lines.append("")
    lines.append(f"query elapsed        : {summary.total_elapsed:10.1f} virtual s")
    if summary.initial_cost_pages is not None:
        lines.append(
            f"optimizer initial cost: {summary.initial_cost_pages:9.1f} U "
            f"(actual {summary.actual_cost_pages:.1f} U)"
        )
    mean_err, max_err = summary.mean_abs_error, summary.max_abs_error
    if mean_err is not None and max_err is not None:
        lines.append(
            f"remaining-time error : mean {mean_err:.1f} s, max {max_err:.1f} s "
            f"over {len(summary.rows)} report(s)"
        )
    else:
        lines.append("remaining-time error : no estimates emitted (warm-up only)")
    if summary.estimators:
        lines.append("")
        lines.append(
            f"{'estimator':<12} {'ticks':>6} {'chosen':>7} "
            f"{'mean |err|':>11} {'max |err|':>10}"
        )
        for est in summary.estimators:
            mean = ("-" if est.mean_abs_error is None
                    else f"{est.mean_abs_error:11.1f}")
            peak = ("-" if est.max_abs_error is None
                    else f"{est.max_abs_error:10.1f}")
            lines.append(
                f"{est.name:<12} {est.reports:>6} {est.selected:>7} "
                f"{mean:>11} {peak:>10}"
            )
    return "\n".join(lines)
