"""``python -m repro.obs`` — run, export, audit, and score from the CLI.

Subcommands:

* ``trace`` — run one monitored query (Q1–Q5 or ad-hoc ``--sql``) with
  tracing on, write the JSONL event log and the Chrome ``trace_event``
  JSON (open it in ``chrome://tracing`` or https://ui.perfetto.dev), and
  print the event census, span coverage, and per-segment span table.
* ``audit`` — replay a trace (fresh run or ``--input trace.jsonl``) and
  print the per-tick |estimated − actual| remaining-time error table.
* ``metrics`` — run one monitored query and print the flat metrics dump.
* ``leaderboard`` — run the workload grid (tier-1 subset by default),
  score every variant's progress accuracy from its sealed trace, persist
  the schema-versioned JSON leaderboard under ``benchmarks/results/``,
  and (with ``--check``) gate against the committed baseline.

Examples::

    python -m repro.obs trace --query q1
    python -m repro.obs trace --sql "select count(*) from lineitem" --out /tmp/t
    python -m repro.obs audit --query q2 --interference io
    python -m repro.obs audit --input traces/q1.trace.jsonl
    python -m repro.obs metrics --query q5
    python -m repro.obs leaderboard --list
    python -m repro.obs leaderboard --grid tier1
    python -m repro.obs leaderboard --check          # the per-PR gate
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.audit import audit_events, render_audit
from repro.obs.bus import TraceBus
from repro.obs.exporters import (
    read_jsonl,
    span_coverage,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsCollector, compute_spans, render_spans


def _build_database(query: Optional[str], scale: float, work_mem: int):
    """The workload database a paper query runs against (Q3 needs the
    correlated generator; everything else uses plain TPC-R)."""
    from repro.config import SystemConfig
    from repro.workloads import correlated, tpcr

    config = SystemConfig(work_mem_pages=work_mem)
    builder = correlated if query == "Q3" else tpcr
    return builder.build_database(scale=scale, config=config)


def _load_profile(kind: str):
    from repro.sim.load import LoadProfile

    if kind == "io":
        return LoadProfile.file_copy(120.0, 400.0, slowdown=3.0)
    if kind == "cpu":
        return LoadProfile.cpu_hog(120.0, slowdown=2.5)
    return None


def _resolve_sql(args: argparse.Namespace) -> Optional[tuple[str, str]]:
    """(name, sql) from --query/--sql; None (with message) on bad input."""
    from repro.workloads import queries

    if args.sql is not None:
        return ("adhoc", args.sql)
    name = args.query.upper()
    if name not in queries.PAPER_QUERIES:
        print(f"unknown query {args.query!r}; choose from Q1..Q5", file=sys.stderr)
        return None
    return (name, queries.PAPER_QUERIES[name])


def _run_traced(args: argparse.Namespace) -> Optional[tuple[str, TraceBus]]:
    """Run the selected query with a fresh TraceBus attached."""
    target = _resolve_sql(args)
    if target is None:
        return None
    name, sql = target
    db = _build_database(name, args.scale, args.work_mem)
    load = _load_profile(args.interference)
    if load is not None:
        db.set_load(load)
    trace = TraceBus()
    db.connect().submit(sql, name=name.lower(), trace=trace, keep_rows=False).result()
    return (name, trace)


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a query with tracing and export JSONL + Chrome trace."""
    run = _run_traced(args)
    if run is None:
        return 2
    name, trace = run
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = name.lower()

    jsonl_path = out_dir / f"{stem}.trace.jsonl"
    n = write_jsonl(trace.events, jsonl_path)
    chrome_path = out_dir / f"{stem}.trace.json"
    doc = write_chrome_trace(trace.events, chrome_path)
    coverage = span_coverage(doc)

    print(f"{name}: {n} events recorded")
    for kind, count in sorted(trace.counts().items()):
        print(f"  {kind:<22} {count:>6}")
    print(f"\nJSONL event log : {jsonl_path}")
    print(f"Chrome trace    : {chrome_path}  (open in chrome://tracing "
          "or https://ui.perfetto.dev)")
    print(f"span coverage   : {coverage * 100:.1f}% of the query's "
          "virtual duration")
    print("\nSegment spans (virtual time):")
    page_size = 8192
    print(render_spans(compute_spans(trace.events), page_size))
    return 0 if coverage >= 1.0 - 1e-9 else 1


def cmd_audit(args: argparse.Namespace) -> int:
    """Audit estimator accuracy from a fresh run or a saved JSONL trace."""
    if args.input is not None:
        events = read_jsonl(args.input)
        name = str(args.input)
    else:
        run = _run_traced(args)
        if run is None:
            return 2
        name, trace = run
        events = trace.events
    print(f"Estimator-accuracy audit: {name}")
    print(render_audit(audit_events(events)))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Run a query with tracing and print the flat metrics dump."""
    run = _run_traced(args)
    if run is None:
        return 2
    name, trace = run
    registry = MetricsCollector().collect(trace.events)
    print(f"Metrics: {name}")
    print(registry.render())
    print("\nSegment spans (virtual time):")
    print(render_spans(compute_spans(trace.events), 8192))
    return 0


def cmd_leaderboard(args: argparse.Namespace) -> int:
    """Run/score the workload grid; optionally gate against the baseline."""
    from repro.obs.observatory import (
        BASELINE_PATH,
        check_regression,
        check_selector,
        load_leaderboard,
        render_aggregates,
        run_leaderboard,
        write_leaderboard,
    )
    from repro.workloads.grid import resolve_grid

    try:
        variants = resolve_grid(args.grid)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.list:
        for v in variants:
            print(f"{v.name:<28} scale={v.scale:<6} {v.sql}")
        print(f"\n{len(variants)} variant(s) in grid {args.grid!r}")
        return 0

    if args.current is not None:
        board = load_leaderboard(args.current)
        print(f"loaded leaderboard: {args.current}")
    else:
        echo = None if args.quiet else print
        board = run_leaderboard(
            variants, args.grid, echo=echo, estimator=args.estimator
        )
        out = args.out
        if out is None:
            out = Path("benchmarks/results") / f"leaderboard_{args.grid}.json"
        write_leaderboard(board, out)
        print(f"\nleaderboard written: {out}")
    print(render_aggregates(board))

    if not args.check:
        return 0
    baseline_path = Path(args.baseline) if args.baseline else BASELINE_PATH
    if not baseline_path.exists():
        print(f"baseline not found: {baseline_path}", file=sys.stderr)
        return 2
    baseline = load_leaderboard(baseline_path)
    report = check_regression(baseline, board, tolerance=args.tolerance)
    print(f"\nregression gate vs {baseline_path} "
          f"(tolerance {args.tolerance:.0%}):")
    print(report.render())
    selector = check_selector(board)
    print(f"\nselector-vs-paper gate (within this run):")
    print(selector.render())
    return 0 if report.ok and selector.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Tracing, metrics, accuracy audits, and the "
                    "workload-grid leaderboard",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--query", default="Q1", help="Q1..Q5 (default Q1)")
        p.add_argument("--sql", default=None,
                       help="trace an ad-hoc SELECT against the TPC-R data")
        p.add_argument("--scale", type=float, default=0.005,
                       help="TPC-R scale factor (default 0.005)")
        p.add_argument("--work-mem", type=int, default=24,
                       help="work_mem in pages (default 24)")
        p.add_argument("--interference", choices=["none", "io", "cpu"],
                       default="none")

    trace = sub.add_parser("trace", help="record a trace and export it")
    common(trace)
    trace.add_argument("--out", default="traces",
                       help="output directory (default: ./traces)")
    trace.set_defaults(func=cmd_trace)

    audit = sub.add_parser("audit", help="per-tick estimate-error table")
    common(audit)
    audit.add_argument("--input", default=None, metavar="TRACE_JSONL",
                       help="audit a saved JSONL trace instead of running")
    audit.set_defaults(func=cmd_audit)

    metrics = sub.add_parser("metrics", help="flat metrics dump for one run")
    common(metrics)
    metrics.set_defaults(func=cmd_metrics)

    board = sub.add_parser(
        "leaderboard",
        help="run + score the workload grid; --check gates vs the baseline",
    )
    board.add_argument("--grid", choices=["tier1", "full"], default="tier1",
                       help="which variant set to run (default tier1)")
    board.add_argument("--estimator", default="ensemble",
                       help="estimator to submit cells with (default "
                            "ensemble: race every registered candidate "
                            "and score each one's stream)")
    board.add_argument("--out", default=None, metavar="JSON",
                       help="output path (default: benchmarks/results/"
                            "leaderboard_<grid>.json)")
    board.add_argument("--check", action="store_true",
                       help="compare against the committed baseline; "
                            "exit 1 on regression")
    board.add_argument("--baseline", default=None, metavar="JSON",
                       help="baseline to gate against (default: "
                            "benchmarks/results/leaderboard_baseline.json)")
    board.add_argument("--current", default=None, metavar="JSON",
                       help="score an already-persisted leaderboard "
                            "instead of running the grid")
    board.add_argument("--tolerance", type=float, default=0.05,
                       help="relative worsening allowed per aggregate "
                            "(default 0.05)")
    board.add_argument("--list", action="store_true",
                       help="list the grid's variants and exit")
    board.add_argument("--quiet", action="store_true",
                       help="suppress per-cell progress lines")
    board.set_defaults(func=cmd_leaderboard)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
