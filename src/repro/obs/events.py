"""Typed trace events: the vocabulary of the observability subsystem.

Every event carries ``t``, the **virtual-clock** instant it describes —
never wall-clock time (lint rule REPRO001 applies to the emitters, and the
audit tooling depends on virtual timestamps being reproducible).  The
taxonomy mirrors the paper's moving parts:

=====================  =====================================================
event                  paper anchor
=====================  =====================================================
QueryStarted           §3 (indicator attaches; optimizer's initial cost)
SegmentStarted/
SegmentFinished        §4.2 (segment lifecycle at blocking boundaries)
RefinementTick         §4.5 (the full ``E = p*E2 + (1-p)*E1`` blend per
                       segment, with p, q per input, and the dominant input)
CardinalityRefined     §4.3 (a base input's estimate source transitioned:
                       optimizer Ne -> running count -> exact)
DominantSwitched       §4.5 (sort-merge p = max(qA, qB): the arg-max side
                       changed)
SpeedSampled/
SpeedEstimated         §4.6 (cumulative-work sample; current speed estimate)
TickerFired            §3 "acceptable pacing" (a periodic ticker ran)
ReportEmitted          Figure 2 (one user-facing progress report)
CandidateEstimated     pluggable estimators: one registered candidate's
                       estimate at a report tick (the ensemble selector
                       races all of them; ``selected`` marks the winner)
BufferAccess           §4.1 (time-per-U between disk-bound and cached poles)
PageRead/PageWritten   §4.1 (disk page transfer counters)
ExtraPass              §4.5 (multi-stage extra pass bytes)
ExecutionStarted/
ExecutionFinished      §5.1 (the monitored run itself)
QueryFinished          §5 (ground truth for the accuracy audit)
QueryTimedOut/
QueryFailed            §3 (terminal outcomes other than completion; the
                       indicator must report honestly on every path)
FaultInjected          robustness: a seeded fault fired (repro.fault)
IoRetried/IoGaveUp     robustness: transient-I/O retry with backoff
IndicatorDegraded      robustness: monitoring failed, query unaffected —
                       the indicator serves its last-good / optimizer
                       fallback estimate ("degrade, don't die")
AdmissionDecided       §6 (service front-end: one submission's admission
                       verdict — admitted, queued, or rejected)
QueryShed              §6 (the load-shedding policy evicted a query its
                       own remaining-time estimate predicted would miss
                       its deadline)
TenantThrottled        §6 (a tenant hit its cost budget; its submission
                       waits in the admission queue)
=====================  =====================================================

Events are frozen dataclasses with a stable ``kind`` string, a lossless
``to_dict`` and a ``event_from_dict`` inverse, so a JSONL trace round-trips
exactly — the estimator-accuracy audit replays traces through these types.

**Schema evolution** (``TRACE_SCHEMA_VERSION``): new event kinds and new
fields may be added, but only with defaults — deserialization fills a
missing field from its dataclass default, so traces recorded under an
older schema (e.g. the committed golden traces) replay unchanged.
Removing or renaming a field, or adding one without a default, is a
breaking change and requires regenerating every committed trace.
"""

from __future__ import annotations

from dataclasses import MISSING, asdict, dataclass, fields
from typing import Any, Optional, Type

#: Bumped on every additive change to the event vocabulary.  Version 2
#: added ``ReportEmitted.estimator`` and the ``candidate_estimated`` kind
#: (the pluggable-estimator redesign); version 3 added the multi-tenant
#: service kinds ``admission_decided`` / ``query_shed`` /
#: ``tenant_throttled``.  Both bumps are additive (new kinds only, new
#: fields only with defaults), so version-1 and version-2 traces still
#: replay through the defaults-fill path in :func:`_rebuild`.
TRACE_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class TraceEvent:
    """Base class: one observation at virtual instant ``t``."""

    t: float

    #: Stable wire name of the event type (overridden per subclass).
    kind = "event"

    def to_dict(self) -> dict[str, Any]:
        """Lossless dict form (JSONL wire format)."""
        out: dict[str, Any] = {"kind": self.kind}
        out.update(asdict(self))
        return out


# ----------------------------------------------------------------------
# query lifecycle


@dataclass(frozen=True)
class SegmentMeta:
    """Static per-segment facts recorded once at query start."""

    id: int
    label: str
    final: bool
    #: (kind, label, dominant, child_segment) per input, in input order.
    inputs: tuple[tuple[str, str, bool, Optional[int]], ...]
    est_output_rows: float
    est_cost_bytes: float


@dataclass(frozen=True)
class QueryStarted(TraceEvent):
    """The indicator attached to a planned query."""

    label: str
    num_segments: int
    initial_cost_pages: float
    segments: tuple[SegmentMeta, ...]

    kind = "query_started"


@dataclass(frozen=True)
class QueryFinished(TraceEvent):
    """The monitored query completed (audit ground truth)."""

    elapsed: float
    done_pages: float
    actual_cost_pages: float

    kind = "query_finished"


@dataclass(frozen=True)
class QueryCancelled(TraceEvent):
    """The monitored query was cancelled before completion.

    The paper's Section 1 motivation — a user deciding whether a query is
    worth waiting for — ends here when the answer is no.  ``fraction_done``
    is the indicator's last estimate at the moment of cancellation.
    """

    elapsed: float
    done_pages: float
    fraction_done: float

    kind = "query_cancelled"


@dataclass(frozen=True)
class QueryTimedOut(TraceEvent):
    """The query exceeded its statement timeout/deadline.

    The scheduler watchdog unwound the operator tree cooperatively; the
    indicator's counters stop wherever execution was interrupted.
    """

    elapsed: float
    done_pages: float
    fraction_done: float

    kind = "query_timed_out"


@dataclass(frozen=True)
class QueryFailed(TraceEvent):
    """The query raised out of the executor (a fatal or unretryable fault).

    ``error`` is the repr of the terminating exception; the failure was
    contained to this query — other in-flight queries keep running.
    """

    elapsed: float
    done_pages: float
    fraction_done: float
    error: str

    kind = "query_failed"


@dataclass(frozen=True)
class ExecutionStarted(TraceEvent):
    """The executor began pulling rows from the plan root."""

    num_subplans: int

    kind = "execution_started"


@dataclass(frozen=True)
class ExecutionFinished(TraceEvent):
    """The executor drained the plan root."""

    rows: int

    kind = "execution_finished"


# ----------------------------------------------------------------------
# segment lifecycle (§4.2)


@dataclass(frozen=True)
class SegmentStarted(TraceEvent):
    """A segment reported its first input/output bytes."""

    segment_id: int

    kind = "segment_started"


@dataclass(frozen=True)
class SegmentFinished(TraceEvent):
    """A segment completed; its counters are now exact."""

    segment_id: int
    done_bytes: float
    output_rows: int

    kind = "segment_finished"


@dataclass(frozen=True)
class ExtraPass(TraceEvent):
    """A multi-stage extra pass re-processed ``nbytes`` (§4.5)."""

    segment_id: int
    nbytes: float

    kind = "extra_pass"


# ----------------------------------------------------------------------
# refinement provenance (§4.3, §4.5)


@dataclass(frozen=True)
class InputTrace:
    """One segment input inside a refinement snapshot."""

    index: int
    label: str
    dominant: bool
    #: This input's processed fraction (the q of §4.5).
    q: float
    rows_read: int
    est_rows: float
    #: Where the estimate comes from: "ne" (optimizer's Ne), "overrun"
    #: (running count exceeded Ne), "exact" (scan finished), "child"
    #: (propagated moving estimate), "child_final" (child segment done).
    source: str


@dataclass(frozen=True)
class SegmentTrace:
    """One segment's full refinement state at a tick."""

    segment_id: int
    status: str
    #: Dominant-input fraction p of §4.5 (max over dominant inputs).
    p: float
    #: The optimizer's re-invoked estimate (upward propagation).
    e1: float
    #: The extrapolated estimate y/p; None while p == 0.
    e2: Optional[float]
    #: The blended output-cardinality estimate E = p*E2 + (1-p)*E1.
    estimate: float
    #: Which input currently decides p, or None before any progress.
    dominant_input: Optional[int]
    est_cost_bytes: float
    done_bytes: float
    inputs: tuple[InputTrace, ...]


@dataclass(frozen=True)
class RefinementTick(TraceEvent):
    """A full §4.5 refinement pass, with per-segment provenance."""

    segments: tuple[SegmentTrace, ...]
    est_total_bytes: float
    done_bytes: float
    current_segment: Optional[int]

    kind = "refinement_tick"


@dataclass(frozen=True)
class CardinalityRefined(TraceEvent):
    """A §4.3 estimate-source transition on one segment input."""

    segment_id: int
    input_index: int
    label: str
    source_from: str
    source_to: str
    est_rows_from: float
    est_rows_to: float

    kind = "cardinality_refined"


@dataclass(frozen=True)
class DominantSwitched(TraceEvent):
    """The input deciding p changed (sort-merge p = max(qA, qB))."""

    segment_id: int
    from_input: Optional[int]
    to_input: int

    kind = "dominant_switched"


# ----------------------------------------------------------------------
# speed monitoring (§4.6) and pacing (§3)


@dataclass(frozen=True)
class TickerFired(TraceEvent):
    """A periodic virtual-clock ticker ran ("speed" or "report")."""

    name: str
    interval: float

    kind = "ticker_fired"


@dataclass(frozen=True)
class SpeedSampled(TraceEvent):
    """One cumulative-work sample fed to the speed estimator."""

    cumulative_pages: float

    kind = "speed_sampled"


@dataclass(frozen=True)
class SpeedEstimated(TraceEvent):
    """The speed estimator's current output after a sample."""

    estimator: str
    pages_per_sec: Optional[float]

    kind = "speed_estimated"


@dataclass(frozen=True)
class ReportEmitted(TraceEvent):
    """One user-facing progress report (the paper's Figure 2 fields).

    ``degraded`` mirrors :attr:`repro.core.report.ProgressReport.degraded`:
    True when this report is a fallback served from behind the
    degrade-don't-die boundary (last good report or optimizer initial
    estimate) rather than a fresh refinement snapshot.  Accuracy scoring
    (:mod:`repro.obs.observatory.scoring`) excludes degraded reports from
    the error metrics but counts them in coverage statistics.

    ``estimator`` is the provenance of the estimate behind this report:
    the producing estimator's registry name, or ``"ensemble:<name>"``
    when the online selector served candidate ``<name>``.  ``None`` on
    pre-redesign (schema v1) traces.
    """

    elapsed: float
    done_pages: float
    est_cost_pages: float
    fraction_done: float
    speed_pages_per_sec: Optional[float]
    est_remaining_seconds: Optional[float]
    current_segment: Optional[int]
    finished: bool
    degraded: bool = False
    estimator: Optional[str] = None

    kind = "report_emitted"


@dataclass(frozen=True)
class CandidateEstimated(TraceEvent):
    """One registered estimator's view of the query at a report tick.

    Emitted once per candidate per report when the indicator runs the
    ensemble selector (or any estimator exposing candidate estimates) —
    the per-estimator accuracy audit and the leaderboard's per-estimator
    columns are scored entirely from these events.  ``selected`` marks
    the candidate whose estimate the selector is currently serving;
    ``score`` is the selector's backtest score (mean absolute log-error
    of this candidate's past predictions on since-finished segments;
    ``None`` before anything finished).
    """

    estimator: str
    elapsed: float
    done_pages: float
    est_cost_pages: float
    fraction_done: float
    est_remaining_seconds: Optional[float]
    selected: bool
    score: Optional[float]

    kind = "candidate_estimated"


# ----------------------------------------------------------------------
# storage (§4.1)


@dataclass(frozen=True)
class BufferAccess(TraceEvent):
    """One buffer-pool page request (hit = served from memory)."""

    file_id: int
    page_no: int
    hit: bool

    kind = "buffer_access"


@dataclass(frozen=True)
class PageRead(TraceEvent):
    """One page read from the simulated disk (I/O time charged)."""

    file_id: int
    page_no: int
    sequential: bool

    kind = "page_read"


@dataclass(frozen=True)
class PageWritten(TraceEvent):
    """One page written to the simulated disk (I/O time charged)."""

    file_id: int
    page_no: int

    kind = "page_written"


# ----------------------------------------------------------------------
# fault injection and recovery (repro.fault)


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """A seeded fault from the active :class:`~repro.fault.FaultPlan` fired.

    ``fault`` is the fault kind ("transient_io", "page_checksum",
    "transient_write", "spill_exhausted"); ``target`` identifies the I/O
    operation it hit.
    """

    fault: str
    file_id: int
    page_no: int

    kind = "fault_injected"


@dataclass(frozen=True)
class IoRetried(TraceEvent):
    """One retry of a transient page I/O, after backoff.

    ``attempt`` counts attempts *used so far including this retry* (the
    original failed attempt is 1, the first retry is 2).  ``backoff`` is
    the virtual seconds waited before this retry.
    """

    fault: str
    file_id: int
    page_no: int
    attempt: int
    backoff: float

    kind = "io_retry"


@dataclass(frozen=True)
class IoGaveUp(TraceEvent):
    """The retry budget for a transient I/O is exhausted.

    The transient error now propagates and terminates the query (the
    scheduler contains it to one task).
    """

    fault: str
    file_id: int
    page_no: int
    attempts: int
    error: str

    kind = "io_gave_up"


@dataclass(frozen=True)
class IndicatorDegraded(TraceEvent):
    """Monitoring raised; the indicator degraded instead of dying.

    ``phase`` is where the exception surfaced ("report", "speed",
    "final"); ``fallback`` is what estimate was served instead
    ("last_good" or "optimizer").  The query itself is never affected.
    """

    phase: str
    fallback: str
    error: str

    kind = "degraded"


# ----------------------------------------------------------------------
# multi-tenant service control loop (repro.service, paper §6 automated)


@dataclass(frozen=True)
class AdmissionDecided(TraceEvent):
    """The admission controller ruled on one submission.

    ``outcome`` is "admitted" (a scheduler task exists now), "queued"
    (waiting in the bounded admission queue for capacity or tenant
    budget) or "rejected" (the queue itself was full — the explicit
    ``ADMISSION_REJECTED`` terminal outcome; no task was ever created).
    ``predicted_cost_pages`` is the optimizer's initial cost estimate
    the decision was gated on; ``inflight``/``queued`` snapshot the
    service's saturation at decision time.
    """

    tenant: str
    query: str
    outcome: str
    reason: str
    predicted_cost_pages: float
    inflight: int
    queued: int

    kind = "admission_decided"


@dataclass(frozen=True)
class QueryShed(TraceEvent):
    """The load-shedding policy evicted a monitored query (§6).

    Emitted by the indicator's abort path, exactly like the other
    terminal events: the counters stop wherever the cooperative unwind
    interrupted execution, and ``fraction_done`` is the last estimate at
    eviction time.  ``reason`` carries the policy's verdict (typically
    the predicted deadline miss that triggered the eviction).
    """

    elapsed: float
    done_pages: float
    fraction_done: float
    reason: str = "deadline"

    kind = "query_shed"


@dataclass(frozen=True)
class TenantThrottled(TraceEvent):
    """A tenant's submission was held back by its cost budget.

    ``inflight_cost_pages`` is the predicted cost of the tenant's
    currently admitted queries; admitting ``query`` would push it past
    ``budget_pages``, so the submission waits in the admission queue
    until the tenant's own queries drain.
    """

    tenant: str
    query: str
    inflight_cost_pages: float
    budget_pages: float
    queued: int

    kind = "tenant_throttled"


# ----------------------------------------------------------------------
# cooperative-execution probes (the static/dynamic pulse cross-check)


@dataclass(frozen=True)
class OperatorInstantiated(TraceEvent):
    """The operator factory built one operator (pulse-probe runs only).

    ``node`` is the probe's build index for the operator's plan node;
    ``children`` are the build indexes of its child operators (children
    are constructed before their parent), so a trace consumer can
    re-derive the operator tree from the event stream alone.
    """

    op: str
    node: int
    children: tuple[int, ...]

    kind = "operator_built"


@dataclass(frozen=True)
class PulseObserved(TraceEvent):
    """A PULSE marker passed one operator's probe wrapper.

    Every wrapper between the originating operator and the driver sees
    the same pulse (innermost first), so an operator's *origin* count is
    ``seen(node) - sum(seen(child) for child in children)`` — which is
    what :mod:`repro.analysis.flow.crosscheck` compares against the
    static may-yield summaries.
    """

    op: str
    node: int

    kind = "pulse"


# ----------------------------------------------------------------------
# wire format

_EVENT_TYPES: tuple[Type[TraceEvent], ...] = (
    QueryStarted,
    QueryFinished,
    QueryCancelled,
    QueryTimedOut,
    QueryFailed,
    FaultInjected,
    IoRetried,
    IoGaveUp,
    IndicatorDegraded,
    ExecutionStarted,
    ExecutionFinished,
    SegmentStarted,
    SegmentFinished,
    ExtraPass,
    RefinementTick,
    CardinalityRefined,
    DominantSwitched,
    TickerFired,
    SpeedSampled,
    SpeedEstimated,
    ReportEmitted,
    CandidateEstimated,
    AdmissionDecided,
    QueryShed,
    TenantThrottled,
    BufferAccess,
    PageRead,
    PageWritten,
    OperatorInstantiated,
    PulseObserved,
)

#: kind string -> event class, for deserialization.
EVENT_KINDS: dict[str, Type[TraceEvent]] = {c.kind: c for c in _EVENT_TYPES}

#: Nested dataclass fields that need reconstruction from lists/dicts.
_NESTED = {
    "query_started": {"segments": SegmentMeta},
    "refinement_tick": {"segments": SegmentTrace},
}
_SEGMENT_TRACE_NESTED = {"inputs": InputTrace}


def _rebuild(cls: type, payload: dict[str, Any]) -> Any:
    """Reconstruct one (possibly nested) trace dataclass from dict form.

    Tolerates fields absent from the payload when the dataclass declares
    a default — the schema-evolution contract above: old traces replay
    under a newer vocabulary.
    """
    kwargs: dict[str, Any] = {}
    for f in fields(cls):
        if f.name not in payload:
            if f.default is not MISSING or f.default_factory is not MISSING:
                continue  # filled from the dataclass default
            raise KeyError(f.name)
        value = payload[f.name]
        if cls is SegmentTrace and f.name in _SEGMENT_TRACE_NESTED:
            inner = _SEGMENT_TRACE_NESTED[f.name]
            value = tuple(_rebuild(inner, v) for v in value)
        elif cls is SegmentMeta and f.name == "inputs":
            value = tuple(tuple(v) for v in value)
        kwargs[f.name] = value
    return cls(**kwargs)


def event_from_dict(payload: dict[str, Any]) -> TraceEvent:
    """Inverse of :meth:`TraceEvent.to_dict` (JSONL replay path)."""
    data = dict(payload)
    kind = data.pop("kind")
    try:
        cls = EVENT_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown trace event kind {kind!r}") from None
    for name, inner in _NESTED.get(kind, {}).items():
        data[name] = tuple(_rebuild(inner, v) for v in data[name])
    if kind == "operator_built":
        data["children"] = tuple(data["children"])
    return cls(**data)
