"""The TraceBus: typed events in, subscribers and a recorded stream out.

Design constraints, in order:

1. **Near-zero disabled cost.**  Tracing is off by default, and "off"
   means *no bus object exists*: every instrumented call site is written
   ``if trace is not None: trace.emit(...)``, so the disabled path is one
   attribute load and an identity test — no event construction, no
   indirection.  ``bench_overhead.py`` measures this.
2. **Virtual time only.**  Events are stamped by their emitters with the
   virtual-clock instant they describe; the bus enforces that the stream
   is non-decreasing in ``t`` (a wall-clock read sneaking in would break
   this immediately under REPRO001 anyway).
3. **Replayability.**  The bus records every event in order; the JSONL
   exporter and the estimator-accuracy audit consume that list.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.errors import TraceError
from repro.obs.events import TraceEvent

#: Tolerance for same-instant events arriving in callback order.
_T_EPSILON = 1e-9

Subscriber = Callable[[TraceEvent], None]


class TraceBus:
    """Ordered, typed event stream for one monitored query execution."""

    __slots__ = ("events", "_subscribers", "_last_t", "_counts")

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._subscribers: list[Subscriber] = []
        self._last_t: Optional[float] = None
        self._counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # emission

    def emit(self, event: TraceEvent) -> None:
        """Append one event and fan it out to subscribers.

        Raises :class:`TraceError` if ``event.t`` runs backwards — every
        emitter stamps events with the virtual clock, so a regression
        means an instrumentation bug, not a data race.
        """
        if self._last_t is not None and event.t < self._last_t - _T_EPSILON:
            raise TraceError(
                f"non-monotonic trace event: {event.kind} at t={event.t} "
                f"after t={self._last_t}"
            )
        self._last_t = event.t if self._last_t is None else max(self._last_t, event.t)
        self.events.append(event)
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
        for subscriber in self._subscribers:
            subscriber(event)

    # ------------------------------------------------------------------
    # consumption

    def subscribe(self, fn: Subscriber) -> Callable[[], None]:
        """Register a live subscriber; returns an unsubscribe callable."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass

        return unsubscribe

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        """Iterate recorded events of one kind, in emission order."""
        return (e for e in self.events if e.kind == kind)

    def counts(self) -> dict[str, int]:
        """Events recorded so far, by kind."""
        return dict(self._counts)

    def seal(self) -> "SealedTrace":
        """Snapshot the stream as a read-only view.

        Results handed to callers (``QueryHandle.trace()``,
        ``MonitoredResult.trace``) expose a sealed view rather than the
        live bus, so a finished query's trace cannot be extended or have
        subscribers attached after the fact.
        """
        return SealedTrace(tuple(self.events), dict(self._counts))

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"TraceBus({len(self.events)} events)"


class SealedTrace:
    """Immutable view of a completed trace stream.

    Quacks like the read side of :class:`TraceBus` (``events``,
    ``of_kind``, ``counts``, ``len``) but has no ``emit`` or
    ``subscribe`` — the stream is closed.
    """

    __slots__ = ("_events", "_counts")

    def __init__(self, events: tuple[TraceEvent, ...], counts: dict[str, int]) -> None:
        self._events = events
        self._counts = counts

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return self._events

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        """Iterate events of one kind, in emission order."""
        return (e for e in self._events if e.kind == kind)

    def counts(self) -> dict[str, int]:
        """Events by kind."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return f"SealedTrace({len(self._events)} events)"
