"""Legacy setup shim (the environment's pip/setuptools lack wheel support)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Toward a Progress Indicator for Database Queries' "
        "(SIGMOD 2004)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
