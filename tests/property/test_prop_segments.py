"""Property-based tests: segmentation invariants over generated queries.

Random select-project-join/aggregate/sort queries are planned and
segmented; the structural invariants the refiner depends on must hold for
every shape the planner can produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.segments import build_segments
from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string


def make_db(work_mem_pages):
    db = Database(config=SystemConfig(work_mem_pages=work_mem_pages))
    db.create_table(
        "r",
        Schema([Column("a", INTEGER), Column("b", INTEGER), Column("s", string(30))]),
        [(i, i % 7, "x" * (i % 20)) for i in range(400)],
    )
    db.create_table(
        "t",
        Schema([Column("a", INTEGER), Column("c", INTEGER)]),
        [(i % 200, i) for i in range(600)],
    )
    db.create_table(
        "u",
        Schema([Column("c", INTEGER), Column("d", INTEGER)]),
        [(i % 300, i * 2) for i in range(300)],
    )
    db.analyze()
    return db


query_shape = st.fixed_dictionaries(
    {
        "joins": st.integers(min_value=0, max_value=2),
        "filter": st.sampled_from(
            [None, "r.b = 3", "r.a < 100", "absolute(r.b) > 0"]
        ),
        "group": st.booleans(),
        "order": st.booleans(),
        "limit": st.sampled_from([None, 0, 5]),
        "work_mem": st.sampled_from([1, 4, 256]),
        "force_merge": st.booleans(),
    }
)


def build_sql(shape):
    tables = ["r"]
    predicates = []
    if shape["joins"] >= 1:
        tables.append("t")
        predicates.append("r.a = t.a")
    if shape["joins"] >= 2:
        tables.append("u")
        predicates.append("t.c = u.c")
    if shape["filter"]:
        predicates.append(shape["filter"])
    if shape["group"]:
        select = "r.b, count(*)"
        suffix = " group by r.b"
        order = " order by r.b" if shape["order"] else ""
    else:
        select = "r.a, r.b"
        suffix = ""
        order = " order by r.a" if shape["order"] else ""
    sql = f"select {select} from {', '.join(tables)}"
    if predicates:
        sql += " where " + " and ".join(predicates)
    sql += suffix + order
    if shape["limit"] is not None:
        sql += f" limit {shape['limit']}"
    return sql


class TestSegmentationInvariants:
    @settings(max_examples=40, deadline=None)
    @given(query_shape)
    def test_structural_invariants(self, shape):
        db = make_db(shape["work_mem"])
        if shape["force_merge"]:
            db.config = db.config.with_planner(enable_hashjoin=False)
        plan = db.prepare(build_sql(shape))
        specs = build_segments(plan.root)

        # Exactly one final segment, and it is the last one.
        finals = [s for s in specs if s.final]
        assert len(finals) == 1
        assert finals[0].id == specs[-1].id

        # Ids are dense and topologically ordered: every child input
        # references a lower id.
        assert [s.id for s in specs] == list(range(len(specs)))
        for spec in specs:
            for inp in spec.inputs:
                if inp.kind == "child":
                    assert inp.child_segment is not None
                    assert inp.child_segment < spec.id
                else:
                    assert inp.child_segment is None

        # Every segment has at least one input and 1 or 2 dominant inputs.
        for spec in specs:
            assert spec.inputs
            dominants = sum(1 for i in spec.inputs if i.dominant)
            assert dominants in (1, 2)

        # card_factor reproduces the optimizer's output estimate.
        for spec in specs:
            product = 1.0
            for i in spec.inputs:
                product *= max(i.est_rows, 1e-9)
            assert abs(spec.card_factor * product - spec.est_output_rows) <= max(
                1e-6, 1e-6 * spec.est_output_rows
            )

        # Initial costs are finite and non-negative.
        for spec in specs:
            assert spec.initial_cost_bytes() >= 0.0

    @settings(max_examples=25, deadline=None)
    @given(query_shape)
    def test_monitored_execution_consistent(self, shape):
        db = make_db(shape["work_mem"])
        if shape["force_merge"]:
            db.config = db.config.with_planner(enable_hashjoin=False)
        sql = build_sql(shape)
        expected = db.execute(sql, keep_rows=True)
        db.restart()
        monitored = db.execute_with_progress(sql, keep_rows=True)
        assert sorted(map(repr, monitored.result.rows)) == sorted(
            map(repr, expected.rows)
        )
        final = monitored.log.final()
        assert final.finished
        # Work done never exceeds the final cost estimate.
        assert final.done_pages <= final.est_cost_pages + 1e-6
