"""Property-based tests: sorting invariants (in-memory and external)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string

rows = st.lists(
    st.tuples(
        st.integers(min_value=-1000, max_value=1000),
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            max_size=12,
        ),
    ),
    max_size=150,
)


def sort_db(data, work_mem_pages=256):
    db = Database(config=SystemConfig(work_mem_pages=work_mem_pages))
    db.create_table(
        "t", Schema([Column("k", INTEGER), Column("s", string(20))]), data
    )
    db.analyze()
    return db


class TestSortProperties:
    @settings(max_examples=40, deadline=None)
    @given(rows)
    def test_output_is_sorted_ascending(self, data):
        db = sort_db(data)
        result = db.execute("select k, s from t order by k")
        keys = [r[0] for r in result.rows]
        assert keys == sorted(keys)

    @settings(max_examples=40, deadline=None)
    @given(rows)
    def test_output_is_permutation_of_input(self, data):
        db = sort_db(data)
        result = db.execute("select k, s from t order by k")
        assert Counter(result.rows) == Counter(data)

    @settings(max_examples=25, deadline=None)
    @given(rows)
    def test_external_sort_equals_in_memory_sort(self, data):
        in_mem = sort_db(data, work_mem_pages=256).execute(
            "select k, s from t order by k, s"
        )
        external = sort_db(data, work_mem_pages=1).execute(
            "select k, s from t order by k, s"
        )
        assert in_mem.rows == external.rows

    @settings(max_examples=25, deadline=None)
    @given(rows)
    def test_descending_is_reverse_of_ascending_keys(self, data):
        db = sort_db(data)
        asc = db.execute("select k from t order by k")
        desc = db.execute("select k from t order by k desc")
        assert [r[0] for r in desc.rows] == sorted(
            (r[0] for r in asc.rows), reverse=True
        )

    @settings(max_examples=25, deadline=None)
    @given(rows, st.integers(min_value=0, max_value=20))
    def test_limit_is_prefix_of_sorted(self, data, n):
        db = sort_db(data)
        full = db.execute("select k, s from t order by k, s")
        limited = db.execute(f"select k, s from t order by k, s limit {n}")
        assert limited.rows == full.rows[:n]

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(min_value=-5, max_value=5)),
                st.text(max_size=3),
            ),
            max_size=60,
        )
    )
    def test_nulls_sort_last(self, data):
        db = sort_db(data)
        result = db.execute("select k from t order by k")
        keys = [r[0] for r in result.rows]
        first_null = next((i for i, k in enumerate(keys) if k is None), len(keys))
        assert all(k is None for k in keys[first_null:])
