"""Property-based tests: progress-indicator invariants on random queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segments import SegmentInput, SegmentSpec
from repro.database import Database
from repro.estimators.refinement import PaperEstimator
from repro.executor.work import WorkTracker
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string


# ----------------------------------------------------------------------
# refinement-formula invariants over random counter states

spec_state = st.tuples(
    st.floats(min_value=1.0, max_value=10_000.0),  # Ne
    st.integers(min_value=0, max_value=20_000),  # rows read x
    st.integers(min_value=0, max_value=20_000),  # outputs y
    st.floats(min_value=0.0, max_value=10.0),  # true selectivity-ish factor
)


def run_refiner(ne, x, y, factor):
    spec = SegmentSpec(
        id=0,
        label="s",
        inputs=[
            SegmentInput(0, "base", "t", est_rows=ne, est_width=40.0, dominant=True)
        ],
        est_output_rows=factor * ne,
        est_output_width=50.0,
        final=True,
        card_factor=factor,
    )
    tracker = WorkTracker([1], final_segment=0)
    if x:
        tracker.input_rows(0, 0, x, x * 40.0)
    if y:
        tracker.output_rows(0, y, y * 50.0)
    return PaperEstimator([spec], tracker).snapshot()


class TestRefinementProperties:
    @given(spec_state)
    def test_output_estimate_at_least_observed(self, state):
        ne, x, y, factor = state
        snap = run_refiner(ne, x, y, factor)
        assert snap.segments[0].est_output_rows >= y - 1e-6

    @given(spec_state)
    def test_p_in_unit_interval(self, state):
        ne, x, y, factor = state
        snap = run_refiner(ne, x, y, factor)
        assert 0.0 <= snap.segments[0].p <= 1.0

    @given(spec_state)
    def test_cost_at_least_done(self, state):
        ne, x, y, factor = state
        snap = run_refiner(ne, x, y, factor)
        seg = snap.segments[0]
        assert seg.est_cost_bytes >= seg.done_bytes - 1e-6

    @given(spec_state)
    def test_fraction_done_in_unit_interval(self, state):
        ne, x, y, factor = state
        snap = run_refiner(ne, x, y, factor)
        assert 0.0 <= snap.fraction_done <= 1.0

    @given(spec_state)
    def test_input_estimate_never_below_reads(self, state):
        ne, x, y, factor = state
        snap = run_refiner(ne, x, y, factor)
        assert snap.segments[0].inputs[0].est_rows >= x


# ----------------------------------------------------------------------
# whole-query invariants over random filtered scans

scan_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50), st.text(max_size=8)),
    min_size=20,
    max_size=400,
)


class TestMonitoredQueryProperties:
    @settings(max_examples=15, deadline=None)
    @given(scan_rows, st.integers(min_value=0, max_value=50))
    def test_scan_progress_invariants(self, data, threshold):
        db = Database()
        db.create_table(
            "t", Schema([Column("k", INTEGER), Column("s", string(16))]), data
        )
        db.analyze()
        monitored = db.execute_with_progress(
            f"select k from t where k < {threshold}", keep_rows=True
        )
        expected = sum(1 for k, _ in data if k < threshold)
        assert monitored.result.row_count == expected

        log = monitored.log
        # Percent-done is monotone and ends at 100 for a pure scan.
        percents = [r.percent_done for r in log]
        assert all(b >= a - 1e-6 for a, b in zip(percents, percents[1:]))
        assert log.final().percent_done == 100.0
        # Done work never exceeds the estimated total.
        for r in log:
            assert r.done_pages <= r.est_cost_pages + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(scan_rows)
    def test_monitoring_does_not_change_results(self, data):
        def build():
            db = Database()
            db.create_table(
                "t", Schema([Column("k", INTEGER), Column("s", string(16))]), data
            )
            db.analyze()
            return db

        plain = build().execute("select k, s from t where k > 10")
        monitored = build().execute_with_progress(
            "select k, s from t where k > 10", keep_rows=True
        )
        assert plain.rows == monitored.result.rows
