"""Property: the estimator redesign did not move a single float.

The pluggable-estimator API redesign (``repro.estimators``) rebuilt the
refinement layer behind an interface, but the ``paper`` estimator's
contract is *bit identity* with the pre-redesign ``core.refine`` path:
estimation is passive (it never charges virtual time), so execution is
identical regardless of estimator, and the paper blend's reports must
match float-for-float.  Pinned here across every tier-1 workload grid
variant on both engines:

* the config-default run *is* the paper estimator (same provenance,
  same ProgressLog);
* the ensemble's displayed stream equals the paper stream report-for-
  report, differing only in the ``estimator`` provenance stamp.  The
  selector opens on the paper candidate and switches only on back-test
  evidence; on this grid that evidence arrives (if at all) on the final
  tick, where every candidate has converged to the exact totals — so
  even a late switch moves no float;
* rows, result order, and per-resource virtual-clock charges are
  identical across estimators (passivity);
* percent-done stays monotone in every stream.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import SystemConfig
from repro.workloads import grid

#: (engine, estimator) -> (dataset_key -> Database); shared module-wide
#: so absolute report timestamps stay pairwise comparable (each cache
#: sees the same query sequence).
_DATABASES: dict[tuple[str, str], dict] = {}


def _database(engine: str, estimator: str, variant: grid.Variant):
    cache = _DATABASES.setdefault((engine, estimator), {})
    db = cache.get(variant.dataset_key)
    if db is None:
        config = SystemConfig().with_progress(engine=engine)
        db = cache[variant.dataset_key] = variant.build_database(config)
    return db


def _run(engine: str, estimator: str, variant: grid.Variant):
    """One monitored run; returns (result, log, charge-delta-by-resource)."""
    db = _database(engine, estimator, variant)
    db.restart()
    before = dict(db.clock.cost_charged)
    handle = db.connect().submit(
        variant.sql,
        name=f"id-{variant.name}-{engine}-{estimator}",
        monitor=True,
        estimator=estimator,
    )
    result = handle.result()
    delta = {
        res: total - before.get(res, 0.0)
        for res, total in db.clock.cost_charged.items()
    }
    return result, handle.log, delta


def _normalized(log):
    """The log's reports with the provenance stamp masked out."""
    return [replace(r, estimator=None) for r in log]


def _assert_paper_identity(engine: str, variant: grid.Variant) -> None:
    paper_result, paper_log, paper_u = _run(engine, "paper", variant)
    ens_result, ens_log, ens_u = _run(engine, "ensemble", variant)

    # Estimation is passive: same rows, same order, same U charges.
    assert ens_result.rows == paper_result.rows
    assert ens_u == paper_u
    assert ens_result.elapsed == paper_result.elapsed

    # Provenance: the paper run stamps "paper"; the ensemble's selector
    # opens on the paper candidate (the first tick has no back-test
    # evidence yet, so ties keep the first-registered candidate).
    assert {r.estimator for r in paper_log} == {"paper"}
    provenances = [r.estimator for r in ens_log]
    assert provenances[0] == "ensemble:paper"
    assert all(p.startswith("ensemble:") for p in provenances)

    # The displayed stream itself: every report, float-for-float.
    assert len(ens_log) == len(paper_log)
    for got, want in zip(_normalized(ens_log), _normalized(paper_log)):
        assert got == want

    # Monotone percent-done in both streams.
    for log in (paper_log, ens_log):
        percents = [r.percent_done for r in log]
        assert all(b >= a for a, b in zip(percents, percents[1:]))


@pytest.mark.parametrize("name", grid.TIER1_NAMES)
def test_tier1_row_engine_paper_identity(name):
    _assert_paper_identity("row", grid.variants_by_name()[name])


@pytest.mark.parametrize("name", grid.TIER1_NAMES)
def test_tier1_batch_engine_paper_identity(name):
    _assert_paper_identity("batch", grid.variants_by_name()[name])


@pytest.mark.parametrize("engine", ["row", "batch"])
def test_default_run_is_the_paper_estimator(engine):
    """``submit()`` with no estimator resolves to the paper baseline."""
    variant = grid.variants_by_name()["xs-uniform-join3-half"]
    config = SystemConfig().with_progress(engine=engine)

    db = grid.build_dataset(*variant.dataset_key, config=config)
    db.restart()
    default_handle = db.connect().submit(variant.sql, name="id-default")
    default_result = default_handle.result()

    db = grid.build_dataset(*variant.dataset_key, config=config)
    db.restart()
    explicit_handle = db.connect().submit(
        variant.sql, name="id-explicit", estimator="paper"
    )
    explicit_result = explicit_handle.result()

    assert default_result.rows == explicit_result.rows
    assert list(default_handle.log) == list(explicit_handle.log)
    assert {r.estimator for r in default_handle.log} == {"paper"}
