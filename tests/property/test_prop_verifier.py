"""Property-based tests: the invariant verifier accepts every plan the
optimizer can produce.

The verifier encodes the structural contract between the segment builder
and the refinement estimator; if any reachable plan shape violated it,
either the builder or the verifier would be wrong.  The generator sweeps
join counts, blocking operators, work_mem (forcing multi-batch joins and
external sorts), merge-join forcing and limits — the same shape space the
segmentation property tests cover.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.invariants import verify_segments
from repro.config import SystemConfig
from repro.core.segments import build_segments
from repro.database import Database
from repro.storage.schema import Column, Schema
from repro.storage.types import INTEGER, string


def make_db(work_mem_pages):
    db = Database(config=SystemConfig(work_mem_pages=work_mem_pages))
    db.create_table(
        "r",
        Schema([Column("a", INTEGER), Column("b", INTEGER), Column("s", string(30))]),
        [(i, i % 7, "x" * (i % 20)) for i in range(400)],
    )
    db.create_table(
        "t",
        Schema([Column("a", INTEGER), Column("c", INTEGER)]),
        [(i % 200, i) for i in range(600)],
    )
    db.create_table(
        "u",
        Schema([Column("c", INTEGER), Column("d", INTEGER)]),
        [(i % 300, i * 2) for i in range(300)],
    )
    db.analyze()
    return db


query_shape = st.fixed_dictionaries(
    {
        "joins": st.integers(min_value=0, max_value=2),
        "filter": st.sampled_from(
            [None, "r.b = 3", "r.a < 100", "absolute(r.b) > 0"]
        ),
        "group": st.booleans(),
        "order": st.booleans(),
        "limit": st.sampled_from([None, 0, 5]),
        "work_mem": st.sampled_from([1, 4, 256]),
        "force_merge": st.booleans(),
    }
)


def build_sql(shape):
    tables = ["r"]
    predicates = []
    if shape["joins"] >= 1:
        tables.append("t")
        predicates.append("r.a = t.a")
    if shape["joins"] >= 2:
        tables.append("u")
        predicates.append("t.c = u.c")
    if shape["filter"]:
        predicates.append(shape["filter"])
    if shape["group"]:
        select = "r.b, count(*)"
        suffix = " group by r.b"
        order = " order by r.b" if shape["order"] else ""
    else:
        select = "r.a, r.b"
        suffix = ""
        order = " order by r.a" if shape["order"] else ""
    sql = f"select {select} from {', '.join(tables)}"
    if predicates:
        sql += " where " + " and ".join(predicates)
    sql += suffix + order
    if shape["limit"] is not None:
        sql += f" limit {shape['limit']}"
    return sql


class TestVerifierAcceptsOptimizerPlans:
    @settings(max_examples=60, deadline=None)
    @given(query_shape)
    def test_every_optimizer_plan_verifies(self, shape):
        db = make_db(shape["work_mem"])
        if shape["force_merge"]:
            db.config = db.config.with_planner(enable_hashjoin=False)
        plan = db.prepare(build_sql(shape))
        specs = build_segments(plan.root)
        violations = verify_segments(plan.root, specs)
        assert violations == [], "\n".join(v.format() for v in violations)

    @settings(max_examples=20, deadline=None)
    @given(query_shape)
    def test_verification_is_idempotent(self, shape):
        """Re-segmenting and re-verifying the same plan stays clean —
        build_segments rewrites annotations deterministically."""
        db = make_db(shape["work_mem"])
        plan = db.prepare(build_sql(shape))
        first = build_segments(plan.root)
        assert verify_segments(plan.root, first) == []
        second = build_segments(plan.root)
        assert verify_segments(plan.root, second) == []
        assert [s.label for s in first] == [s.label for s in second]
